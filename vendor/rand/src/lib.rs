//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the workspace vendors the *subset* of the `rand` 0.8 API it actually
//! uses: [`StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer and float ranges, and [`Rng::gen_bool`].
//!
//! [`StdRng`] here is xoshiro256**, seeded through splitmix64 — a
//! different stream than upstream `rand`'s ChaCha-based `StdRng`, but a
//! high-quality one, and deterministic for a given seed, which is all the
//! simulation requires. Upstream makes no cross-version stream guarantee
//! for `StdRng` either, so no caller may depend on the exact stream.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// splitmix64 step: the standard seeding/mixing function.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256** (Blackman/Vigna).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A type that `gen_range` can sample uniformly from a range of.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`. Panics if `low >= high`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`. Panics if `low > high`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Uniform integer in `[0, bound)` via 128-bit widening multiply
/// (Lemire's method without the rejection step; bias is < 2^-64).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                low.wrapping_add(uniform_below(rng, span) as $t)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A float in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * unit_f64(rng)
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        low + (high - low) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3i32..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
