//! Daily DNS snapshots: what the record collector stores per site.

use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

use remnant_dns::DomainName;
use remnant_sim::SimTime;

/// The records collected for one site on one day: the full A/CNAME chain
/// of its `www` host plus the apex NS set (Sec IV-B.1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteRecords {
    /// Terminal A addresses of the www host (empty if resolution failed).
    pub a: Vec<Ipv4Addr>,
    /// CNAME chain targets observed while resolving the www host.
    pub cnames: Vec<DomainName>,
    /// NS hostnames of the apex.
    pub ns: Vec<DomainName>,
}

impl SiteRecords {
    /// True if nothing resolved for the site.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty() && self.cnames.is_empty() && self.ns.is_empty()
    }
}

/// One collection round over the whole target list.
///
/// Records are indexed by site rank, parallel to the target list that
/// produced the snapshot. Each site's records sit behind an [`Arc`] so a
/// delta-mode collector can carry unchanged sites from round to round as
/// pointer clones (structural sharing) instead of deep copies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsSnapshot {
    /// When the collection ran.
    pub taken_at: SimTime,
    /// Day index within the study (0-based).
    pub day: u32,
    /// Per-site records, by rank.
    pub records: Vec<Arc<SiteRecords>>,
}

impl DnsSnapshot {
    /// Creates an empty snapshot shell.
    pub fn new(taken_at: SimTime, day: u32, capacity: usize) -> Self {
        DnsSnapshot {
            taken_at,
            day,
            records: Vec::with_capacity(capacity),
        }
    }

    /// The records for site `rank`, if collected.
    pub fn site(&self, rank: usize) -> Option<&SiteRecords> {
        self.records.get(rank).map(|r| r.as_ref())
    }

    /// Number of sites with at least one record.
    pub fn resolved_count(&self) -> usize {
        self.records.iter().filter(|r| !r.is_empty()).count()
    }

    /// Serializes the snapshot to its canonical text form.
    ///
    /// The encoding is line-based and versioned; equal snapshots always
    /// produce byte-identical text, which is what the full-vs-delta
    /// equivalence test compares. [`DnsSnapshot::decode`] inverts it
    /// exactly (round-trip identity).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("remnant-snapshot v1\n");
        out.push_str(&format!("taken_at={}\n", self.taken_at.as_secs()));
        out.push_str(&format!("day={}\n", self.day));
        out.push_str(&format!("sites={}\n", self.records.len()));
        for (rank, records) in self.records.iter().enumerate() {
            let a = records
                .a
                .iter()
                .map(Ipv4Addr::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let cnames = records
                .cnames
                .iter()
                .map(DomainName::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let ns = records
                .ns
                .iter()
                .map(DomainName::to_string)
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!("{rank} a={a} cname={cnames} ns={ns}\n"));
        }
        out
    }

    /// Parses a snapshot from its canonical text form.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotDecodeError`] naming the offending line if the
    /// header, a field, an address, or a domain name fails to parse, or if
    /// the site count disagrees with the number of record lines.
    pub fn decode(text: &str) -> Result<Self, SnapshotDecodeError> {
        let err = |line: usize, reason: &str| SnapshotDecodeError {
            line,
            reason: reason.to_string(),
        };
        let mut lines = text.lines().enumerate();
        let (n, header) = lines.next().ok_or_else(|| err(1, "empty input"))?;
        if header != "remnant-snapshot v1" {
            return Err(err(n + 1, "unrecognized header"));
        }
        let mut field = |name: &str| -> Result<u64, SnapshotDecodeError> {
            let (n, line) = lines
                .next()
                .ok_or_else(|| err(0, "truncated header block"))?;
            let value = line
                .strip_prefix(name)
                .and_then(|rest| rest.strip_prefix('='))
                .ok_or_else(|| err(n + 1, "expected `name=value` header field"))?;
            value
                .parse::<u64>()
                .map_err(|_| err(n + 1, "header value is not an integer"))
        };
        let taken_at = SimTime::from_secs(field("taken_at")?);
        let day = field("day")? as u32;
        let sites = field("sites")? as usize;

        let mut snapshot = DnsSnapshot::new(taken_at, day, sites);
        for (n, line) in lines {
            let mut parts = line.splitn(4, ' ');
            let rank = parts
                .next()
                .and_then(|r| r.parse::<usize>().ok())
                .ok_or_else(|| err(n + 1, "record line must start with a rank"))?;
            if rank != snapshot.records.len() {
                return Err(err(n + 1, "record ranks must be contiguous from 0"));
            }
            let mut records = SiteRecords::default();
            for (prefix, part) in [
                ("a=", parts.next()),
                ("cname=", parts.next()),
                ("ns=", parts.next()),
            ] {
                let values = part
                    .and_then(|p| p.strip_prefix(prefix))
                    .ok_or_else(|| err(n + 1, "record line is missing a field"))?;
                for value in values.split(',').filter(|v| !v.is_empty()) {
                    match prefix {
                        "a=" => records.a.push(
                            value
                                .parse()
                                .map_err(|_| err(n + 1, "invalid IPv4 address"))?,
                        ),
                        "cname=" => records.cnames.push(
                            value
                                .parse()
                                .map_err(|_| err(n + 1, "invalid CNAME domain name"))?,
                        ),
                        _ => records.ns.push(
                            value
                                .parse()
                                .map_err(|_| err(n + 1, "invalid NS domain name"))?,
                        ),
                    }
                }
            }
            snapshot.records.push(Arc::new(records));
        }
        if snapshot.records.len() != sites {
            return Err(SnapshotDecodeError {
                line: 4,
                reason: format!(
                    "header says {sites} sites but {} record lines follow",
                    snapshot.records.len()
                ),
            });
        }
        Ok(snapshot)
    }
}

/// Why a snapshot failed to parse, with the 1-based offending line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotDecodeError {
    /// 1-based line number the error was detected on.
    pub line: usize,
    /// Human-readable description of the problem.
    pub reason: String,
}

impl fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot decode error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for SnapshotDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_detection() {
        let mut r = SiteRecords::default();
        assert!(r.is_empty());
        r.ns.push("ns1.webhost1.net".parse().unwrap());
        assert!(!r.is_empty());
    }

    #[test]
    fn snapshot_indexing() {
        let mut snap = DnsSnapshot::new(SimTime::EPOCH, 0, 2);
        snap.records.push(Arc::new(SiteRecords::default()));
        snap.records.push(Arc::new(SiteRecords {
            a: vec![Ipv4Addr::new(1, 2, 3, 4)],
            ..SiteRecords::default()
        }));
        assert!(snap.site(0).unwrap().is_empty());
        assert!(!snap.site(1).unwrap().is_empty());
        assert!(snap.site(2).is_none());
        assert_eq!(snap.resolved_count(), 1);
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut snap = DnsSnapshot::new(SimTime::from_secs(86_400 * 3 + 7), 3, 3);
        snap.records.push(Arc::new(SiteRecords::default()));
        snap.records.push(Arc::new(SiteRecords {
            a: vec![Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8)],
            cnames: vec!["x7f3.incapdns.net".parse().unwrap()],
            ns: vec![
                "kate.ns.cloudflare.com".parse().unwrap(),
                "rob.ns.cloudflare.com".parse().unwrap(),
            ],
        }));
        snap.records.push(Arc::new(SiteRecords {
            ns: vec!["ns1.webhost1.net".parse().unwrap()],
            ..SiteRecords::default()
        }));
        let text = snap.encode();
        let back = DnsSnapshot::decode(&text).expect("canonical text parses");
        assert_eq!(back, snap);
        // Canonical: re-encoding the decoded value is byte-identical.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn decode_rejects_malformed_input() {
        assert!(DnsSnapshot::decode("").is_err());
        assert!(DnsSnapshot::decode("something else\n").is_err());
        let missing_line = "remnant-snapshot v1\ntaken_at=0\nday=0\nsites=1\n";
        assert!(DnsSnapshot::decode(missing_line).is_err());
        let bad_ip = "remnant-snapshot v1\ntaken_at=0\nday=0\nsites=1\n0 a=999.1.2.3 cname= ns=\n";
        let err = DnsSnapshot::decode(bad_ip).unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.to_string().contains("IPv4"));
        let bad_rank = "remnant-snapshot v1\ntaken_at=0\nday=0\nsites=1\n7 a= cname= ns=\n";
        assert!(DnsSnapshot::decode(bad_rank).is_err());
    }
}
