//! Sampling from fixed collections.

use std::fmt;

use rand::Rng as _;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding a uniformly chosen clone of one of `items`.
pub fn select<T: Clone + fmt::Debug>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select: empty choice set");
    Select(items)
}

/// The result of [`select`].
#[derive(Clone, Debug)]
pub struct Select<T>(Vec<T>);

impl<T: Clone + fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0[rng.gen_range(0..self.0.len())].clone()
    }
}
