//! Engine tuning knobs.

/// Retry policy applied per item inside a shard.
///
/// A task signals a retryable outcome by returning
/// [`TaskResult::Retry`](crate::TaskResult::Retry) with a fallback output.
/// The engine re-runs the task until it returns
/// [`TaskResult::Done`](crate::TaskResult::Done) or `max_attempts` is
/// reached, at which point the *last* fallback is kept and the item is
/// counted as exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts per item, including the first (`>= 1`).
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// A policy that never retries.
    pub const fn once() -> Self {
        RetryPolicy { max_attempts: 1 }
    }

    /// A policy allowing up to `max_attempts` attempts per item.
    pub const fn attempts(max_attempts: u32) -> Self {
        RetryPolicy { max_attempts }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Matches the paper's collector: a failed lookup is re-issued a
        // couple of times before the site is recorded as unresolvable.
        RetryPolicy { max_attempts: 3 }
    }
}

/// Token-bucket rate limit shared by every worker of a sweep.
///
/// The limit applies to task *attempts* (one attempt ≈ one resolution),
/// in real wall-clock time. It exists for operators pointing the scanner
/// at infrastructure with query budgets; simulation runs leave it off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateLimit {
    /// Sustained attempts per second across all workers.
    pub per_second: f64,
    /// Bucket capacity: how many attempts may burst back-to-back.
    pub burst: u32,
}

impl RateLimit {
    /// A sustained rate of `per_second` with a same-sized burst.
    pub fn per_second(per_second: f64) -> Self {
        RateLimit {
            per_second,
            burst: per_second.max(1.0).ceil() as u32,
        }
    }
}

/// Configuration for a [`ScanEngine`](crate::ScanEngine).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// Number of worker threads. Any value `>= 1`; the engine never spawns
    /// more workers than shards. Output is identical for every value.
    pub workers: usize,
    /// Items per shard. Shard layout is a function of the item count and
    /// this constant only — never of `workers` — which is what makes the
    /// merged output independent of parallelism.
    pub shard_size: usize,
    /// Per-item retry policy.
    pub retry: RetryPolicy,
    /// Optional global rate limit (off by default; simulations don't wait).
    pub rate: Option<RateLimit>,
    /// Root seed for the per-shard RNG streams.
    pub seed: u64,
}

impl EngineConfig {
    /// Default shard size: small enough to load-balance a million-site
    /// sweep over any sane worker count, large enough that per-shard setup
    /// (fresh resolver, RNG derivation) is amortized.
    pub const DEFAULT_SHARD_SIZE: usize = 512;

    /// Configuration with `workers` threads and the given RNG seed.
    pub fn with_workers(workers: usize, seed: u64) -> Self {
        EngineConfig {
            workers: workers.max(1),
            seed,
            ..EngineConfig::default()
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            shard_size: Self::DEFAULT_SHARD_SIZE,
            retry: RetryPolicy::default(),
            rate: None,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_workers_clamps_to_one() {
        assert_eq!(EngineConfig::with_workers(0, 7).workers, 1);
        assert_eq!(EngineConfig::with_workers(8, 7).workers, 8);
        assert_eq!(EngineConfig::with_workers(8, 7).seed, 7);
    }

    #[test]
    fn rate_limit_burst_tracks_rate() {
        assert_eq!(RateLimit::per_second(100.0).burst, 100);
        assert_eq!(RateLimit::per_second(0.5).burst, 1);
    }
}
