//! CNAME-token tracking for CNAME-based residual resolution
//! (Sec V-B: the Incapsula case study).

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

use remnant_dns::{
    CountingTransport, DnsTransport, DomainName, RecordType, RecursiveResolver, ShardableTransport,
};
use remnant_engine::{ScanEngine, SweepStats, TaskResult};
use remnant_net::Region;
use remnant_obs::{transport_counters, Instrumented, MetricKey};
use remnant_sim::SimClock;

use crate::snapshot::DnsSnapshot;

/// Scanner for CNAME-based residual resolution.
///
/// The attacker must first *collect* the per-customer CNAME tokens while
/// they are observable — "the adversary would first need to collect the
/// CNAME record associated with the previous DPS provider" (Sec III-B) —
/// and can then keep resolving them after the customer moves away.
#[derive(Debug)]
pub struct IncapsulaScanner {
    clock: SimClock,
    /// Fingerprint substring identifying this provider's tokens.
    cname_substring: String,
    /// Harvested tokens: site rank -> token name.
    harvested: BTreeMap<usize, DomainName>,
    resolver: RecursiveResolver,
    queries: u64,
    /// Tokens whose resolution still produced addresses.
    answered: u64,
}

impl IncapsulaScanner {
    /// Creates a scanner harvesting CNAMEs containing `cname_substring`
    /// (Incapsula: `"incapdns"`).
    pub fn new(clock: SimClock, cname_substring: impl Into<String>) -> Self {
        IncapsulaScanner {
            cname_substring: cname_substring.into(),
            harvested: BTreeMap::new(),
            resolver: RecursiveResolver::new(clock.clone(), Region::Ashburn),
            clock,
            queries: 0,
            answered: 0,
        }
    }

    /// Number of distinct customer tokens harvested.
    pub fn harvested_count(&self) -> usize {
        self.harvested.len()
    }

    /// The harvested tokens.
    pub fn harvested(&self) -> impl Iterator<Item = (usize, &DomainName)> {
        self.harvested.iter().map(|(r, t)| (*r, t))
    }

    /// Harvests tokens from one usage-study snapshot. A newer token for the
    /// same site replaces the old one (re-enrollments rotate tokens).
    pub fn harvest(&mut self, snapshot: &DnsSnapshot) {
        for loaded in snapshot.blocks() {
            for (i, site) in loaded.block.sites().enumerate() {
                if let Some(token) = site
                    .cnames
                    .iter()
                    .find(|c| c.contains_label_substring(&self.cname_substring))
                {
                    self.harvested.insert(loaded.base_rank + i, token.clone());
                }
            }
        }
    }

    /// One weekly scan: resolves every harvested token's A record. Tokens
    /// that no longer resolve (rotated or purged) yield nothing.
    pub fn scan<T: DnsTransport>(&mut self, transport: &mut T) -> HashMap<usize, Vec<Ipv4Addr>> {
        self.resolver.purge_cache();
        let mut results = HashMap::new();
        for (rank, token) in &self.harvested {
            self.queries += 1;
            if let Ok(res) = self.resolver.resolve(transport, token, RecordType::A) {
                let addrs = res.addresses();
                if !addrs.is_empty() {
                    self.answered += 1;
                    results.insert(*rank, addrs);
                }
            }
        }
        results
    }

    /// [`scan`](Self::scan), sharded over `engine`'s workers.
    ///
    /// Each shard resolves through its own fresh cache-cold resolver, so
    /// the result map is identical to a sequential post-purge scan for
    /// every worker count.
    pub fn scan_with<T: ShardableTransport>(
        &mut self,
        engine: &ScanEngine,
        transport: &T,
    ) -> (HashMap<usize, Vec<Ipv4Addr>>, SweepStats) {
        let tokens: Vec<(usize, DomainName)> = self
            .harvested
            .iter()
            .map(|(rank, token)| (*rank, token.clone()))
            .collect();
        let clock = self.clock.clone();
        let sweep = engine.sweep_with_finish(
            transport,
            &tokens,
            |_shard| RecursiveResolver::new(clock.clone(), Region::Ashburn),
            |transport, resolver, scope, _i, (rank, token)| {
                let mut counting = CountingTransport::new(transport);
                let (hits_before, misses_before) = resolver.cache().stats();
                let addrs = resolver
                    .resolve(&mut counting, token, RecordType::A)
                    .map(|res| res.addresses())
                    .unwrap_or_default();
                let (hits_after, misses_after) = resolver.cache().stats();
                scope.add_queries(counting.query_stats().sent);
                scope.add_cache_stats(hits_after - hits_before, misses_after - misses_before);
                TaskResult::Done((*rank, addrs))
            },
            |resolver, scope| resolver.export_into(scope.metrics()),
        );
        self.queries += tokens.len() as u64;
        let results: HashMap<usize, Vec<Ipv4Addr>> = sweep
            .outputs
            .into_iter()
            .filter(|(_, addrs)| !addrs.is_empty())
            .collect();
        self.answered += results.len() as u64;
        (results, sweep.stats)
    }
}

impl Instrumented for IncapsulaScanner {
    fn component(&self) -> &'static str {
        "core.incapsula_scanner"
    }

    fn counters(&self) -> Vec<(MetricKey, u64)> {
        let mut counters = transport_counters(self.queries, self.answered);
        counters.push((
            MetricKey::named("tokens.harvested"),
            self.harvested.len() as u64,
        ));
        counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{RecordCollector, Target};
    use remnant_provider::{ProviderId, ReroutingMethod, ServicePlan};
    use remnant_world::{SiteState, World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig {
            population: 1_500,
            seed: 66,
            warmup_days: 0,
            calibration: remnant_world::Calibration::paper(),
        })
    }

    fn targets(world: &World) -> Vec<Target> {
        world
            .sites()
            .iter()
            .map(|s| (s.apex.clone(), s.www.clone()))
            .collect()
    }

    fn incapsula_site(w: &World) -> remnant_world::Website {
        w.sites()
            .iter()
            .find(|s| {
                matches!(
                    s.state,
                    SiteState::Dps {
                        provider: ProviderId::Incapsula,
                        paused: false,
                        ..
                    }
                )
            })
            .expect("incapsula customers exist at this scale")
            .clone()
    }

    #[test]
    fn harvest_collects_only_matching_tokens() {
        let mut w = world();
        let targets = targets(&w);
        let mut collector = RecordCollector::new(w.clock(), Region::Ashburn);
        let snapshot = collector.collect(&mut w, &targets, 0);
        let mut scanner = IncapsulaScanner::new(w.clock(), "incapdns");
        scanner.harvest(&snapshot);
        assert!(scanner.harvested_count() > 0);
        for (_, token) in scanner.harvested() {
            assert!(token.contains_label_substring("incapdns"));
        }
        // Harvest ratio is roughly Incapsula's market share of DPS sites.
        let incap_customers = w.provider(ProviderId::Incapsula).customer_count();
        assert!(scanner.harvested_count() <= incap_customers);
    }

    #[test]
    fn active_tokens_resolve_to_edges() {
        let mut w = world();
        let targets = targets(&w);
        let mut collector = RecordCollector::new(w.clock(), Region::Ashburn);
        let snapshot = collector.collect(&mut w, &targets, 0);
        let mut scanner = IncapsulaScanner::new(w.clock(), "incapdns");
        scanner.harvest(&snapshot);
        let results = scanner.scan(&mut w);
        assert!(!results.is_empty());
        let incap = w.provider(ProviderId::Incapsula);
        for addrs in results.values() {
            assert!(addrs.iter().all(|a| incap.is_edge_address(*a)));
        }
    }

    #[test]
    fn token_keeps_resolving_to_origin_after_switch() {
        let mut w = world();
        let targets = targets(&w);
        let mut collector = RecordCollector::new(w.clock(), Region::Ashburn);
        let snapshot = collector.collect(&mut w, &targets, 0);
        let mut scanner = IncapsulaScanner::new(w.clock(), "incapdns");
        scanner.harvest(&snapshot);

        let victim = incapsula_site(&w);
        w.force_switch(
            victim.id,
            ProviderId::Cloudflare,
            ReroutingMethod::Ns,
            ServicePlan::Free,
            true,
        );
        w.step_days(3);

        let results = scanner.scan(&mut w);
        let revealed = results
            .get(&(victim.id.0 as usize))
            .expect("stale token still resolves");
        assert_eq!(revealed, &vec![victim.origin], "token leaks the origin");
    }

    #[test]
    fn sharded_scan_matches_sequential() {
        use remnant_engine::{EngineConfig, ScanEngine};

        let mut w = world();
        let targets = targets(&w);
        let mut collector = RecordCollector::new(w.clock(), Region::Ashburn);
        let snapshot = collector.collect(&mut w, &targets, 0);
        let mut scanner = IncapsulaScanner::new(w.clock(), "incapdns");
        scanner.harvest(&snapshot);

        let sequential = scanner.scan(&mut w);
        let engine = |workers| {
            ScanEngine::new(EngineConfig {
                workers,
                shard_size: 8,
                seed: 3,
                ..EngineConfig::default()
            })
        };
        let (r1, s1) = scanner.scan_with(&engine(1), &w);
        let (r6, s6) = scanner.scan_with(&engine(6), &w);
        assert_eq!(
            sequential, r1,
            "engine path answers match the sequential scan"
        );
        assert_eq!(r1, r6, "worker count never changes the scan");
        assert_eq!(s1.shards, s6.shards);
        let sent = scanner
            .counters()
            .iter()
            .find(|(k, _)| *k == MetricKey::named(remnant_obs::TRANSPORT_SENT))
            .map(|(_, v)| *v)
            .expect("sent counter present");
        assert_eq!(sent, 3 * scanner.harvested_count() as u64);
    }

    #[test]
    fn rotated_token_goes_dark_after_reenrollment() {
        let mut w = world();
        let targets = targets(&w);
        let mut collector = RecordCollector::new(w.clock(), Region::Ashburn);
        let snapshot = collector.collect(&mut w, &targets, 0);
        let mut scanner = IncapsulaScanner::new(w.clock(), "incapdns");
        scanner.harvest(&snapshot);

        let victim = incapsula_site(&w);
        // Leave and immediately rejoin Incapsula: the token rotates and
        // the old harvested token dies.
        w.force_leave(victim.id, true);
        w.step_hours(1);
        w.force_join(
            victim.id,
            ProviderId::Incapsula,
            ReroutingMethod::Cname,
            ServicePlan::Pro,
        );
        w.step_days(1);

        let results = scanner.scan(&mut w);
        assert!(
            !results.contains_key(&(victim.id.0 as usize)),
            "old token must be NXDOMAIN after rotation"
        );
    }
}
