//! The classification cache's headline contract (ISSUE 10): every plan's
//! cached path (`execute_with` over a shared `PlanContext`) is
//! byte-identical to the uncached reference (`execute` straight over the
//! store), at workers 1 and 8, whether the store holds resident snapshots
//! (in-memory campaign) or reopens full/delta spill files — and on delta
//! spills the cache counters account for exactly the chained (clean) vs
//! rewritten (dirty) shard-rounds the store metadata reports.
//!
//! Reports that don't implement `PartialEq` are compared through their
//! `Debug` rendering, which covers every field.

use std::path::PathBuf;

use proptest::prelude::*;
use remnant::core::collector::Target;
use remnant::core::study::{CollectionMode, PaperStudy, StudyConfig, StudyReport};
use remnant::core::{DnsSnapshot, SpillConfig};
use remnant::query::{
    AdoptionPlan, BehaviorPlan, PassesPlan, PausePlan, PlanContext, QueryPlan, ResidualScanPlan,
    SnapshotStore, UnchangedCandidatesPlan, RESIDUAL_PROVIDERS,
};
use remnant::world::{World, WorldConfig};
use remnant_bench::ReproConfig;

const POPULATION: usize = 2_000;
const WEEKS: u32 = 2;
const SEED: u64 = 41;

/// Mirrors `run_study`'s `ReproConfig -> StudyConfig` mapping, so the
/// differential exercises exactly the configuration the CLI runs.
fn study_config(config: &ReproConfig) -> StudyConfig {
    StudyConfig {
        weeks: config.weeks,
        uneven_intervals: !config.even_intervals,
        workers: config.workers,
        collection_mode: config.collection_mode,
        spill: config.spill_dir.clone().map(SpillConfig::new),
        ..StudyConfig::default()
    }
}

/// Runs one campaign, capturing every daily snapshot for the in-memory
/// store variant.
fn run_captured(config: &ReproConfig) -> (Vec<DnsSnapshot>, StudyReport) {
    let mut world = World::generate(WorldConfig::new(config.population, config.seed));
    let mut snapshots = Vec::new();
    let report = PaperStudy::new(study_config(config)).run_with(&mut world, |snapshot| {
        snapshots.push(snapshot.clone());
    });
    (snapshots, report)
}

fn fresh_spill_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remnant-query-cache-equiv-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp spill dir");
    dir
}

fn campaign_targets(config: &ReproConfig) -> Vec<Target> {
    let world = World::generate(WorldConfig::new(config.population, config.seed));
    world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect()
}

/// The differential itself: every plan plus the index-accelerated
/// classified folds, cached vs uncached, byte for byte.
fn assert_cached_matches_uncached(
    config: &ReproConfig,
    store: &SnapshotStore,
    workers: usize,
    context: &str,
) {
    let ctx = PlanContext::new(store, workers);

    assert_eq!(
        format!("{:?}", PassesPlan.execute(store)),
        format!("{:?}", PassesPlan.execute_with(&ctx)),
        "{context}: passes"
    );
    assert_eq!(
        format!("{:?}", AdoptionPlan.execute(store)),
        format!("{:?}", AdoptionPlan.execute_with(&ctx)),
        "{context}: adoption"
    );
    assert_eq!(
        format!("{:?}", BehaviorPlan.execute(store)),
        format!("{:?}", BehaviorPlan.execute_with(&ctx)),
        "{context}: behavior"
    );
    assert_eq!(
        format!("{:?}", PausePlan.execute(store)),
        format!("{:?}", PausePlan.execute_with(&ctx)),
        "{context}: pause"
    );

    let unchanged = UnchangedCandidatesPlan {
        targets: campaign_targets(config),
    };
    assert_eq!(
        unchanged.execute(store),
        unchanged.execute_with(&ctx),
        "{context}: unchanged candidates"
    );

    let residual = ResidualScanPlan::default();
    assert_eq!(
        residual.execute(store),
        residual.execute_with(&ctx),
        "{context}: residual scan"
    );

    // The index-accelerated classified folds vs their full-scan
    // `RoundsQuery` twins.
    assert_eq!(
        format!("{:?}", store.query().classified()),
        format!("{:?}", ctx.classified().classified()),
        "{context}: classified fold"
    );
    for provider in RESIDUAL_PROVIDERS {
        assert_eq!(
            format!("{:?}", store.query().provider(provider)),
            format!("{:?}", ctx.classified().provider(provider)),
            "{context}: provider fold {provider:?}"
        );
    }
}

#[test]
fn in_memory_cached_plans_match_uncached() {
    for workers in [1usize, 8] {
        let config = ReproConfig::builder()
            .population(POPULATION)
            .weeks(WEEKS)
            .seed(SEED)
            .workers(workers)
            .build()
            .expect("valid config");
        let (snapshots, _) = run_captured(&config);
        let store = SnapshotStore::in_memory(snapshots).expect("in-memory store");
        assert_cached_matches_uncached(&config, &store, workers, &format!("in-memory w{workers}"));
    }
}

#[test]
fn spill_full_cached_plans_match_uncached() {
    for workers in [1usize, 8] {
        let dir = fresh_spill_dir(&format!("full-w{workers}"));
        let config = ReproConfig::builder()
            .population(POPULATION)
            .weeks(WEEKS)
            .seed(SEED)
            .workers(workers)
            .collection_mode(CollectionMode::Full)
            .spill_dir(dir.clone())
            .build()
            .expect("valid config");
        run_captured(&config);
        let store = SnapshotStore::open(&dir).expect("store opens");
        assert_cached_matches_uncached(&config, &store, workers, &format!("spill-full w{workers}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn spill_delta_cached_plans_match_uncached() {
    for workers in [1usize, 8] {
        let dir = fresh_spill_dir(&format!("delta-w{workers}"));
        let config = ReproConfig::builder()
            .population(POPULATION)
            .weeks(WEEKS)
            .seed(SEED)
            .workers(workers)
            .collection_mode(CollectionMode::Delta)
            .spill_dir(dir.clone())
            .build()
            .expect("valid config");
        run_captured(&config);
        let store = SnapshotStore::open(&dir).expect("store opens");
        assert_cached_matches_uncached(
            &config,
            &store,
            workers,
            &format!("spill-delta w{workers}"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The cache-counter contract: on a delta spill, clean (chained)
/// shard-rounds hit the cache and dirty (rewritten) shard-rounds miss —
/// exactly the counts the store's generation metadata reports.
///
/// Only delta spills pin this down: in-memory stores share resident
/// `Arc`s (so even "dirty" metadata can hit on block identity), and full
/// spills rewrite every frame (all-miss).
#[test]
fn delta_cache_counters_account_for_chained_shards() {
    let dir = fresh_spill_dir("counters");
    let config = ReproConfig::builder()
        .population(POPULATION)
        .weeks(WEEKS)
        .seed(SEED)
        .workers(1)
        .collection_mode(CollectionMode::Delta)
        .spill_dir(dir.clone())
        .build()
        .expect("valid config");
    run_captured(&config);
    let store = SnapshotStore::open(&dir).expect("store opens");

    let ctx = PlanContext::new(&store, 1);
    let (hits, misses) = ctx.classified().cache_stats();
    let diffs = store.query().generation_diff();
    let clean: u64 = diffs.iter().map(|d| d.clean as u64).sum();
    let dirty: u64 = diffs.iter().map(|d| d.dirty as u64).sum();
    assert_eq!(hits, clean, "clean shard-rounds reuse cached columns");
    assert_eq!(misses, dirty, "dirty shard-rounds reclassify");
    assert!(hits > 0, "a delta campaign chains at least one shard");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 3,
        ..ProptestConfig::default()
    })]

    /// Differential property: for arbitrary small campaigns — any seed,
    /// population, worker count, and persistence mode — every cached plan
    /// stays byte-identical to its uncached reference.
    #[test]
    fn cached_plans_match_uncached_for_arbitrary_campaigns(
        seed in 0u64..1_000,
        population in 300usize..600,
        workers in prop_oneof![Just(1usize), Just(8usize)],
        delta in proptest::arbitrary::any::<bool>(),
    ) {
        let mode = if delta { CollectionMode::Delta } else { CollectionMode::Full };
        let dir = fresh_spill_dir(&format!("prop-{seed}-{population}-{workers}-{delta}"));
        let config = ReproConfig::builder()
            .population(population)
            .weeks(1)
            .seed(seed)
            .workers(workers)
            .collection_mode(mode)
            .spill_dir(dir.clone())
            .build()
            .expect("valid config");
        run_captured(&config);
        let store = SnapshotStore::open(&dir).expect("store opens");
        assert_cached_matches_uncached(
            &config,
            &store,
            workers,
            &format!("prop seed={seed} pop={population} w{workers} {mode:?}"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
