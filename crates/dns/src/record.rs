//! Resource records.

use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

use remnant_sim::{SimDuration, SimTime};

use crate::name::DomainName;

/// A shared, immutable set of resource records.
///
/// Cache entries, zone answers and response sections all hand out the same
/// underlying allocation; a cache hit or answer copy is a refcount bump
/// instead of a deep `Vec<ResourceRecord>` clone. `Vec<ResourceRecord>`
/// converts via `.into()`, so `vec![rr]` call sites keep working.
pub type RecordSet = Arc<[ResourceRecord]>;

/// The shared empty [`RecordSet`] — one allocation per process, so empty
/// answer/authority/additional sections and negative cache entries don't
/// each pay for a fresh `Arc`.
pub fn empty_record_set() -> RecordSet {
    static EMPTY: std::sync::LazyLock<RecordSet> = std::sync::LazyLock::new(|| Arc::from([]));
    RecordSet::clone(&EMPTY)
}

/// Record types used in the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum RecordType {
    /// Address record — maps a hostname to an IPv4 address.
    A,
    /// Canonical name — an alias to another name (CNAME-based rerouting).
    Cname,
    /// Nameserver — delegation of a zone (NS-based rerouting).
    Ns,
    /// Mail exchange (origin-exposure vector "DNS Records" in Table I).
    Mx,
    /// Free-form text.
    Txt,
    /// Start of authority.
    Soa,
}

impl RecordType {
    /// All record types, in stable order.
    pub const ALL: [RecordType; 6] = [
        RecordType::A,
        RecordType::Cname,
        RecordType::Ns,
        RecordType::Mx,
        RecordType::Txt,
        RecordType::Soa,
    ];
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecordType::A => "A",
            RecordType::Cname => "CNAME",
            RecordType::Ns => "NS",
            RecordType::Mx => "MX",
            RecordType::Txt => "TXT",
            RecordType::Soa => "SOA",
        };
        f.write_str(s)
    }
}

/// Typed record payload.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RecordData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// Alias target.
    Cname(DomainName),
    /// Delegated nameserver hostname.
    Ns(DomainName),
    /// Mail exchange: preference and exchanger host.
    Mx {
        /// Lower is preferred.
        preference: u16,
        /// The mail host.
        exchange: DomainName,
    },
    /// Text payload.
    Txt(String),
    /// Start-of-authority summary (serial only; enough for the study).
    Soa {
        /// Primary nameserver.
        mname: DomainName,
        /// Zone serial number.
        serial: u32,
    },
}

impl RecordData {
    /// The record type this payload belongs to.
    pub fn record_type(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Cname(_) => RecordType::Cname,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Mx { .. } => RecordType::Mx,
            RecordData::Txt(_) => RecordType::Txt,
            RecordData::Soa { .. } => RecordType::Soa,
        }
    }

    /// The IPv4 address, if this is an A record.
    pub fn as_a(&self) -> Option<Ipv4Addr> {
        match self {
            RecordData::A(addr) => Some(*addr),
            _ => None,
        }
    }

    /// The alias target, if this is a CNAME record.
    pub fn as_cname(&self) -> Option<&DomainName> {
        match self {
            RecordData::Cname(target) => Some(target),
            _ => None,
        }
    }

    /// The nameserver host, if this is an NS record.
    pub fn as_ns(&self) -> Option<&DomainName> {
        match self {
            RecordData::Ns(host) => Some(host),
            _ => None,
        }
    }
}

impl fmt::Display for RecordData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordData::A(addr) => write!(f, "{addr}"),
            RecordData::Cname(target) => write!(f, "{target}"),
            RecordData::Ns(host) => write!(f, "{host}"),
            RecordData::Mx {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}"),
            RecordData::Txt(text) => write!(f, "{text:?}"),
            RecordData::Soa { mname, serial } => write!(f, "{mname} {serial}"),
        }
    }
}

/// A record's time to live, in seconds.
///
/// ```
/// use remnant_dns::Ttl;
/// use remnant_sim::SimTime;
///
/// let ttl = Ttl::secs(300);
/// let now = SimTime::from_secs(1_000);
/// assert_eq!(ttl.expires_at(now), SimTime::from_secs(1_300));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ttl(u32);

impl Ttl {
    /// Creates a TTL of `secs` seconds.
    pub const fn secs(secs: u32) -> Self {
        Ttl(secs)
    }

    /// Creates a TTL of `hours` hours.
    pub const fn hours(hours: u32) -> Self {
        Ttl(hours * 3600)
    }

    /// Creates a TTL of `days` days.
    pub const fn days(days: u32) -> Self {
        Ttl(days * 86_400)
    }

    /// The TTL in seconds.
    pub const fn as_secs(self) -> u32 {
        self.0
    }

    /// The TTL as a simulation duration.
    pub const fn as_duration(self) -> SimDuration {
        SimDuration::secs(self.0 as u64)
    }

    /// When a record cached at `now` expires.
    pub fn expires_at(self, now: SimTime) -> SimTime {
        now + self.as_duration()
    }
}

impl fmt::Display for Ttl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

/// One resource record: owner name, TTL, and typed payload.
///
/// This is a passive data structure; its fields are public.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ResourceRecord {
    /// The owner (queried) name.
    pub name: DomainName,
    /// Time to live.
    pub ttl: Ttl,
    /// Typed payload.
    pub data: RecordData,
}

impl ResourceRecord {
    /// Creates a record.
    pub fn new(name: DomainName, ttl: Ttl, data: RecordData) -> Self {
        ResourceRecord { name, ttl, data }
    }

    /// The record's type.
    pub fn record_type(&self) -> RecordType {
        self.data.record_type()
    }
}

impl fmt::Display for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.name,
            self.ttl,
            self.record_type(),
            self.data
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    #[test]
    fn data_type_mapping_is_total() {
        let samples = [
            RecordData::A(Ipv4Addr::LOCALHOST),
            RecordData::Cname(name("t.example.com")),
            RecordData::Ns(name("ns.example.com")),
            RecordData::Mx {
                preference: 10,
                exchange: name("mx.example.com"),
            },
            RecordData::Txt("v=spf1".into()),
            RecordData::Soa {
                mname: name("ns.example.com"),
                serial: 1,
            },
        ];
        let types: Vec<RecordType> = samples.iter().map(|d| d.record_type()).collect();
        assert_eq!(types, RecordType::ALL.to_vec());
    }

    #[test]
    fn accessors_return_only_matching_variants() {
        let a = RecordData::A(Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(a.as_a(), Some(Ipv4Addr::new(1, 2, 3, 4)));
        assert_eq!(a.as_cname(), None);
        assert_eq!(a.as_ns(), None);

        let c = RecordData::Cname(name("x.example.com"));
        assert_eq!(c.as_cname(), Some(&name("x.example.com")));
        assert_eq!(c.as_a(), None);
    }

    #[test]
    fn ttl_expiry() {
        let ttl = Ttl::days(2);
        assert_eq!(ttl.as_secs(), 172_800);
        assert_eq!(
            ttl.expires_at(SimTime::from_secs(10)),
            SimTime::from_secs(172_810)
        );
        assert_eq!(Ttl::hours(2).as_secs(), 7200);
    }

    #[test]
    fn record_display_is_zone_file_like() {
        let rr = ResourceRecord::new(
            name("www.example.com"),
            Ttl::secs(300),
            RecordData::A(Ipv4Addr::new(203, 0, 113, 9)),
        );
        assert_eq!(rr.to_string(), "www.example.com 300s A 203.0.113.9");
    }

    #[test]
    fn record_type_display() {
        assert_eq!(RecordType::Cname.to_string(), "CNAME");
        assert_eq!(RecordType::Soa.to_string(), "SOA");
    }
}
