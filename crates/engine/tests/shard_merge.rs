//! Property tests: shard planning and shard-merge preserve target order
//! for arbitrary item counts, shard sizes and worker counts.

use proptest::prelude::*;
use rand::Rng;
use remnant_engine::{plan_shards, EngineConfig, RetryPolicy, ScanEngine, TaskResult};

const DEPTH_BOUNDS: &[u64] = &[1, 2, 4];

proptest! {
    #[test]
    fn shard_plan_partitions_the_input(items in 0usize..5000, shard_size in 0usize..600) {
        let shards = plan_shards(items, shard_size);
        let mut next = 0;
        for shard in &shards {
            prop_assert_eq!(shard.start, next);
            prop_assert!(!shard.is_empty());
            prop_assert!(shard.len() <= shard_size.max(1));
            next = shard.end;
        }
        prop_assert_eq!(next, items);
    }

    #[test]
    fn merge_preserves_target_order(
        items in proptest::collection::vec(0u64..1_000_000, 0..800),
        shard_size in 1usize..97,
        workers in 1usize..9,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let engine = ScanEngine::new(EngineConfig {
            workers,
            shard_size,
            seed,
            ..EngineConfig::default()
        });
        let sweep = engine.sweep(
            &(),
            &items,
            |_| (),
            |_, _, _, rank, item| TaskResult::Done((rank, *item)),
        );
        let expected: Vec<(usize, u64)> =
            items.iter().copied().enumerate().collect();
        prop_assert_eq!(sweep.outputs, expected);
        prop_assert_eq!(sweep.stats.items() as usize, items.len());
    }

    #[test]
    fn sweep_is_worker_count_invariant(
        items in proptest::collection::vec(0u64..1000, 1..300),
        shard_size in 1usize..64,
        workers in 2usize..9,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let run = |workers: usize| {
            ScanEngine::new(EngineConfig {
                workers,
                shard_size,
                retry: RetryPolicy::attempts(2),
                seed,
                ..EngineConfig::default()
            })
            .sweep(
                &(),
                &items,
                |_| 0u64,
                |_, acc, scope, rank, item| {
                    *acc = acc.wrapping_add(*item);
                    scope.add_queries(1);
                    let roll: u64 = scope.rng().gen_range(0..4);
                    if roll == 0 {
                        // Retryable miss; fallback still deterministic.
                        TaskResult::Retry(rank as u64 ^ *acc)
                    } else {
                        TaskResult::Done(item.wrapping_mul(roll) ^ *acc)
                    }
                },
            )
        };
        let sequential = run(1);
        let parallel = run(workers);
        prop_assert_eq!(&sequential.outputs, &parallel.outputs);
        prop_assert_eq!(&sequential.stats.shards, &parallel.stats.shards);
    }

    #[test]
    fn merged_metrics_are_worker_invariant_and_sum_exactly(
        items in proptest::collection::vec(0u64..1000, 1..300),
        shard_size in 1usize..64,
        workers in 2usize..9,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let run = |workers: usize| {
            ScanEngine::new(EngineConfig {
                workers,
                shard_size,
                seed,
                ..EngineConfig::default()
            })
            .sweep_with_finish(
                &(),
                &items,
                |_| 0u64,
                |_, seen, scope, _rank, item| {
                    *seen += 1;
                    let parity = if item % 2 == 0 { "even" } else { "odd" };
                    scope.metrics().inc_labeled("test.items", &[("parity", parity)]);
                    scope.metrics().observe_with("test.depth", DEPTH_BOUNDS, item % 6);
                    TaskResult::Done(*item)
                },
                // The finish hook runs once per shard, like the resolver
                // telemetry export on the collection path.
                |seen, scope| scope.metrics().add("test.shard_items", seen),
            )
        };
        let sequential = run(1);
        let parallel = run(workers);

        let merged1 = sequential.stats.merged_metrics();
        let merged_n = parallel.stats.merged_metrics();
        prop_assert_eq!(&merged1, &merged_n, "merge must not depend on worker count");

        let even = items.iter().filter(|i| *i % 2 == 0).count() as u64;
        prop_assert_eq!(
            merged1.counter_labeled("test.items", &[("parity", "even")]),
            even
        );
        prop_assert_eq!(
            merged1.counter_labeled("test.items", &[("parity", "odd")]),
            items.len() as u64 - even
        );
        prop_assert_eq!(merged1.counter("test.shard_items"), items.len() as u64);
        let depth = merged1.histogram("test.depth").expect("observed every item");
        prop_assert_eq!(depth.count(), items.len() as u64);
        prop_assert_eq!(depth.sum(), items.iter().map(|i| i % 6).sum::<u64>());
    }
}
