//! The multi-tenant study service: one process, many concurrent
//! campaigns.
//!
//! A [`StudyService`] owns two shared substrates:
//!
//! * **one generated [`World`]**, read-mostly — every campaign session
//!   gets an independent timeline via [`World::fork`], which structurally
//!   shares the heavyweight payloads (interned names, `Arc`-backed record
//!   sets) instead of regenerating or deep-copying record data;
//! * **one engine [`WorkerPool`]** — every session's sweeps draw threads
//!   from the same budget, so N campaigns never oversubscribe the machine
//!   N-fold, and by the engine's determinism contract the grant size a
//!   sweep happens to get changes wall clock only, never output.
//!
//! [`run_campaigns`](StudyService::run_campaigns) spawns one
//! [`StudySession`] per submitted [`StudyConfig`], streams every
//! session's per-round [`RoundProgress`] into a single bounded channel
//! (interleaved in completion order — the only nondeterministic surface,
//! and it carries no report state), and returns the final
//! [`StudyReport`]s in submission order. Each report is byte-identical
//! to what a solo [`crate::PaperStudy`] run of the same config would
//! produce — the multi-tenant differential test pins that down.

use std::collections::BTreeSet;
use std::sync::Arc;

use remnant_engine::WorkerPool;
use remnant_obs::{progress_channel, DEFAULT_PROGRESS_CAPACITY};
use remnant_world::World;

use crate::error::ConfigFieldError;
use crate::session::{RoundProgress, StudySession};
use crate::study::{StudyConfig, StudyReport};

/// Upper bound on concurrently submitted campaigns; beyond this the
/// per-session worlds stop fitting any sane machine.
pub const MAX_CONCURRENT_SESSIONS: usize = 64;

/// The multi-tenant host for concurrent campaigns (see module docs).
pub struct StudyService {
    world: Arc<World>,
    pool: Arc<WorkerPool>,
}

impl StudyService {
    /// A service over `world` with a worker budget of `pool_capacity`
    /// threads shared by every session's sweeps.
    pub fn new(world: World, pool_capacity: usize) -> Self {
        StudyService {
            world: Arc::new(world),
            pool: WorkerPool::new(pool_capacity),
        }
    }

    /// A service sharing an existing world handle and pool.
    pub fn with_shared(world: Arc<World>, pool: Arc<WorkerPool>) -> Self {
        StudyService { world, pool }
    }

    /// The shared base world.
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// The shared engine worker pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Forks the base world into a fresh session timeline.
    pub fn fork_world(&self) -> World {
        self.world.fork()
    }

    /// Validates a batch of campaign configs for concurrent execution.
    ///
    /// Rejects an empty batch, a batch larger than
    /// [`MAX_CONCURRENT_SESSIONS`], and — the one genuinely shared
    /// mutable resource — two sessions spilling into the same directory,
    /// which would interleave their round files into garbage.
    pub fn validate_batch(configs: &[StudyConfig]) -> Result<(), ConfigFieldError> {
        if configs.is_empty() {
            return Err(ConfigFieldError::new(
                "jobs",
                configs.len(),
                "a batch needs at least one campaign",
            ));
        }
        if configs.len() > MAX_CONCURRENT_SESSIONS {
            return Err(ConfigFieldError::new(
                "jobs",
                configs.len(),
                "more than 64 concurrent sessions is outside the service's model",
            ));
        }
        let mut spill_dirs = BTreeSet::new();
        for config in configs {
            if let Some(spill) = &config.spill {
                if !spill_dirs.insert(spill.dir.clone()) {
                    return Err(ConfigFieldError::new(
                        "spill.dir",
                        spill.dir.display(),
                        "two concurrent sessions cannot spill into the same directory",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Runs one session per config concurrently and returns their
    /// reports in submission order.
    ///
    /// Every session forks its own world timeline from the shared base,
    /// draws sweep threads from the shared pool, and streams a
    /// [`RoundProgress`] per round into `on_progress` — interleaved
    /// across sessions in completion order, each tagged with its
    /// session id (= its config's index). `on_progress` runs on the
    /// calling thread; a slow consumer backpressures the sessions via
    /// the bounded channel.
    ///
    /// # Panics
    ///
    /// Panics if a session thread panics (a campaign died mid-flight).
    pub fn run_campaigns(
        &self,
        configs: &[StudyConfig],
        mut on_progress: impl FnMut(RoundProgress),
    ) -> Result<Vec<StudyReport>, ConfigFieldError> {
        Self::validate_batch(configs)?;
        let (tx, rx) = progress_channel(DEFAULT_PROGRESS_CAPACITY.max(configs.len()));
        let reports = std::thread::scope(|scope| {
            let handles: Vec<_> = configs
                .iter()
                .enumerate()
                .map(|(id, config)| {
                    let tx = tx.clone();
                    let config = config.clone();
                    scope.spawn(move || {
                        let mut world = self.world.fork();
                        let session =
                            StudySession::with_worker_pool(config, &world, Arc::clone(&self.pool))
                                .with_id(id);
                        session.run(&mut world, &mut |_| {}, Some(&tx))
                    })
                })
                .collect();
            // The service thread multiplexes progress while sessions run;
            // the stream ends when the last session drops its sender.
            drop(tx);
            for progress in rx.iter() {
                on_progress(progress);
            }
            handles
                .into_iter()
                .enumerate()
                .map(|(id, handle)| {
                    handle
                        .join()
                        .unwrap_or_else(|_| panic!("session {id} panicked"))
                })
                .collect()
        });
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remnant_world::WorldConfig;

    fn base_world() -> World {
        World::generate(WorldConfig {
            population: 600,
            seed: 23,
            warmup_days: 2,
            calibration: remnant_world::Calibration::paper(),
        })
    }

    #[test]
    fn concurrent_sessions_report_in_submission_order() {
        let service = StudyService::new(base_world(), 4);
        let configs: Vec<StudyConfig> = (0..3)
            .map(|i| {
                StudyConfig::builder()
                    .weeks(1)
                    .seed(100 + i)
                    .workers(2)
                    .build()
                    .unwrap()
            })
            .collect();
        let mut seen = vec![0u32; configs.len()];
        let reports = service
            .run_campaigns(&configs, |p| seen[p.session] += 1)
            .unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(seen, [7, 7, 7], "every session streamed every round");
        for report in &reports {
            assert_eq!(report.adoption().total_sites, 600);
            assert_eq!(report.adoption().days_observed, 7);
        }
        // Different seeds → different jitter timelines, same substrate.
        assert_ne!(
            reports[0].behaviors().interval_hours,
            reports[1].behaviors().interval_hours
        );
        assert_eq!(service.pool().available(), 4, "budget fully returned");
    }

    #[test]
    fn batch_validation_names_the_offending_field() {
        assert_eq!(StudyService::validate_batch(&[]).unwrap_err().field, "jobs");
        let spill = |dir: &str| {
            StudyConfig::builder()
                .weeks(1)
                .spill(crate::spill::SpillConfig {
                    dir: dir.into(),
                    resident_shards: 8,
                })
                .build()
                .unwrap()
        };
        let err = StudyService::validate_batch(&[spill("/tmp/a"), spill("/tmp/a")]).unwrap_err();
        assert_eq!(err.field, "spill.dir");
        assert!(StudyService::validate_batch(&[spill("/tmp/a"), spill("/tmp/b")]).is_ok());
    }
}
