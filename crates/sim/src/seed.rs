//! Deterministic derivation of independent RNG seeds.
//!
//! Every randomized component of the simulation (population generator,
//! dynamics engine, provider CNAME tokens, vantage-point selection, …)
//! receives its own seed derived from a single root seed plus a stable
//! string label. Two simulations constructed with the same root seed are
//! bit-for-bit identical; changing one component's label does not perturb
//! any other component's stream.

/// Derives independent `u64` seeds from a root seed and string labels.
///
/// The derivation is a FNV-1a style hash mixed with the root seed and a
/// per-call counter, followed by an avalanche finalizer (splitmix64). It is
/// not cryptographic — it only needs to decorrelate simulation streams.
///
/// # Example
///
/// ```
/// use remnant_sim::SeedSeq;
///
/// let seq = SeedSeq::new(42);
/// let a = seq.derive("population");
/// let b = seq.derive("dynamics");
/// assert_ne!(a, b);
/// assert_eq!(a, SeedSeq::new(42).derive("population"));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SeedSeq {
    root: u64,
}

impl SeedSeq {
    /// Creates a sequence rooted at `root`.
    pub const fn new(root: u64) -> Self {
        SeedSeq { root }
    }

    /// The root seed this sequence derives from.
    pub const fn root(&self) -> u64 {
        self.root
    }

    /// Derives the seed for the component named `label`.
    pub fn derive(&self, label: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.root;
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        splitmix64(h)
    }

    /// Derives a seed for the `index`-th member of a labelled family
    /// (e.g. one stream per website).
    pub fn derive_indexed(&self, label: &str, index: u64) -> u64 {
        splitmix64(self.derive(label) ^ splitmix64(index.wrapping_add(0x9e37_79b9_7f4a_7c15)))
    }

    /// Creates a child sequence scoped under `label`, so nested components
    /// can derive their own families without label collisions.
    pub fn child(&self, label: &str) -> SeedSeq {
        SeedSeq {
            root: self.derive(label),
        }
    }
}

/// splitmix64 avalanche finalizer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = SeedSeq::new(7).derive("dns");
        let b = SeedSeq::new(7).derive("dns");
        assert_eq!(a, b);
    }

    #[test]
    fn labels_decorrelate() {
        let seq = SeedSeq::new(7);
        assert_ne!(seq.derive("dns"), seq.derive("http"));
        assert_ne!(seq.derive("a"), seq.derive("b"));
    }

    #[test]
    fn roots_decorrelate() {
        assert_ne!(SeedSeq::new(1).derive("x"), SeedSeq::new(2).derive("x"));
    }

    #[test]
    fn indexed_family_members_differ() {
        let seq = SeedSeq::new(3);
        let s0 = seq.derive_indexed("site", 0);
        let s1 = seq.derive_indexed("site", 1);
        assert_ne!(s0, s1);
        assert_eq!(s0, SeedSeq::new(3).derive_indexed("site", 0));
    }

    #[test]
    fn child_scopes_are_independent() {
        let seq = SeedSeq::new(9);
        let c1 = seq.child("world");
        let c2 = seq.child("scanner");
        assert_ne!(c1.derive("rng"), c2.derive("rng"));
        // A child's label space does not alias the parent's.
        assert_ne!(seq.derive("world"), c1.derive("world"));
    }

    #[test]
    fn empty_label_is_valid() {
        let seq = SeedSeq::new(0);
        // Must not panic and must still be deterministic.
        assert_eq!(seq.derive(""), SeedSeq::new(0).derive(""));
    }
}
