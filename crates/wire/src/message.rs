//! Whole-message encode/decode and conversion to the typed model.
//!
//! [`Message`] is the wire-level view of a DNS exchange: an ID, a flags
//! word, at most one question, and three record sections. It converts
//! losslessly to and from the dns crate's [`Query`]/[`Response`] pair —
//! `Message::response(id, &r).encode()` followed by
//! [`Message::decode`] and [`Message::to_response`] reproduces `r`
//! exactly, which is what the wire-path differential tests lean on.
//!
//! Two model fields need care to keep that round trip lossless:
//!
//! * The internal SOA carries only MNAME and SERIAL. On encode the RNAME
//!   is written as the root name and REFRESH/RETRY/EXPIRE/MINIMUM as
//!   zero; on decode those fields are validated and skipped.
//! * TXT payloads are written as consecutive ≤255-byte character-strings
//!   and re-joined on decode before UTF-8 validation, so chunk boundaries
//!   may split a code point without corrupting the value.

use remnant_dns::{Query, RecordData, RecordType, ResourceRecord, Response, Ttl};

use crate::error::WireError;
use crate::name::{
    decode_name, decode_name_into, encode_name, encode_root, Compressor, NameScratch,
};
use crate::types::{rtype_from_wire, rtype_to_wire, Flags, Header, CLASS_IN, HEADER_LEN};

/// A decoded (or to-be-encoded) DNS message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Transaction ID.
    pub id: u16,
    /// Flags word (QR/AA/TC/RD/RA/RCODE).
    pub flags: Flags,
    /// The question, if the message carries one (QDCOUNT 0 or 1).
    pub question: Option<Query>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authority: Vec<ResourceRecord>,
    /// Additional section.
    pub additional: Vec<ResourceRecord>,
}

impl Message {
    /// A query message for `query` with transaction `id`.
    pub fn query(id: u16, query: &Query) -> Self {
        Message {
            id,
            flags: Flags::query(),
            question: Some(query.clone()),
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// A response message mirroring `response`, echoing `id`.
    pub fn response(id: u16, response: &Response) -> Self {
        Message {
            id,
            flags: Flags::response(response.rcode, response.authoritative),
            question: Some(response.query.clone()),
            answers: response.answers.to_vec(),
            authority: response.authority.to_vec(),
            additional: response.additional.to_vec(),
        }
    }

    /// Converts a response-shaped message back into the typed model.
    ///
    /// Returns `None` if the message has no question (the typed
    /// [`Response`] always knows what it answers).
    pub fn to_response(&self) -> Option<Response> {
        let query = self.question.clone()?;
        Some(Response {
            query,
            rcode: self.flags.rcode,
            authoritative: self.flags.aa,
            answers: self.answers.clone().into(),
            authority: self.authority.clone().into(),
            additional: self.additional.clone().into(),
        })
    }

    /// Encodes the message in canonical wire form, compressing every
    /// repeated name suffix.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TooManyRecords`] if a section exceeds a
    /// 16-bit count, [`WireError::BadRdata`] for RDATA over 64 KiB (a
    /// pathological TXT), and the mapping errors for model variants this
    /// codec does not know.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let count = |section: &'static str, records: &[ResourceRecord]| {
            u16::try_from(records.len()).map_err(|_| WireError::TooManyRecords {
                section,
                count: records.len(),
            })
        };
        let header = Header {
            id: self.id,
            flags: self.flags,
            qdcount: u16::from(self.question.is_some()),
            ancount: count("answer", &self.answers)?,
            nscount: count("authority", &self.authority)?,
            arcount: count("additional", &self.additional)?,
        };
        let mut out = Vec::with_capacity(HEADER_LEN + 64);
        header.encode_into(&mut out)?;
        let mut comp = Compressor::new();
        if let Some(query) = &self.question {
            encode_name(&query.name, &mut out, &mut comp);
            out.extend_from_slice(&rtype_to_wire(query.rtype)?.to_be_bytes());
            out.extend_from_slice(&CLASS_IN.to_be_bytes());
        }
        for section in [&self.answers, &self.authority, &self.additional] {
            for rr in section {
                encode_rr(rr, &mut out, &mut comp)?;
            }
        }
        Ok(out)
    }

    /// Decodes a complete message. Strict: every counted entry must
    /// parse and the buffer must end exactly where the last one does.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; see the malformed-packet corpus test for the
    /// full taxonomy.
    pub fn decode(msg: &[u8]) -> Result<Self, WireError> {
        let header = Header::decode(msg)?;
        if header.qdcount > 1 {
            return Err(WireError::QuestionCount {
                count: header.qdcount,
            });
        }
        let mut pos = HEADER_LEN;
        let question = if header.qdcount == 1 {
            Some(decode_question(msg, &mut pos)?)
        } else {
            None
        };
        let mut section = |count: u16| -> Result<Vec<ResourceRecord>, WireError> {
            let mut records = Vec::with_capacity(usize::from(count.min(64)));
            for _ in 0..count {
                records.push(decode_rr(msg, &mut pos)?);
            }
            Ok(records)
        };
        let answers = section(header.ancount)?;
        let authority = section(header.nscount)?;
        let additional = section(header.arcount)?;
        if pos != msg.len() {
            return Err(WireError::TrailingBytes { offset: pos });
        }
        Ok(Message {
            id: header.id,
            flags: header.flags,
            question,
            answers,
            authority,
            additional,
        })
    }
}

/// Overwrites the transaction ID of an already-encoded message in place.
/// The serve hot path stamps cached response bytes with the client's ID
/// this way instead of re-encoding.
pub fn patch_id(msg: &mut [u8], id: u16) {
    if msg.len() >= 2 {
        msg[..2].copy_from_slice(&id.to_be_bytes());
    }
}

fn read_u16(msg: &[u8], pos: &mut usize) -> Result<u16, WireError> {
    let bytes = msg.get(*pos..*pos + 2).ok_or(WireError::Truncated {
        offset: *pos,
        needed: 2,
    })?;
    *pos += 2;
    Ok(u16::from_be_bytes([bytes[0], bytes[1]]))
}

fn read_u32(msg: &[u8], pos: &mut usize) -> Result<u32, WireError> {
    let bytes = msg.get(*pos..*pos + 4).ok_or(WireError::Truncated {
        offset: *pos,
        needed: 4,
    })?;
    *pos += 4;
    Ok(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

fn decode_question(msg: &[u8], pos: &mut usize) -> Result<Query, WireError> {
    let (name, after) = decode_name(msg, *pos)?;
    *pos = after;
    let type_offset = *pos;
    let rtype = rtype_from_wire(read_u16(msg, pos)?, type_offset)?;
    let class_offset = *pos;
    let class = read_u16(msg, pos)?;
    if class != CLASS_IN {
        return Err(WireError::UnsupportedClass {
            offset: class_offset,
            class,
        });
    }
    Ok(Query::new(name, rtype))
}

fn encode_rr(
    rr: &ResourceRecord,
    out: &mut Vec<u8>,
    comp: &mut Compressor,
) -> Result<(), WireError> {
    encode_name(&rr.name, out, comp);
    let rtype = rtype_to_wire(rr.record_type())?;
    out.extend_from_slice(&rtype.to_be_bytes());
    out.extend_from_slice(&CLASS_IN.to_be_bytes());
    out.extend_from_slice(&rr.ttl.as_secs().to_be_bytes());
    let len_at = out.len();
    out.extend_from_slice(&[0, 0]);
    match &rr.data {
        RecordData::A(addr) => out.extend_from_slice(&addr.octets()),
        RecordData::Ns(host) => encode_name(host, out, comp),
        RecordData::Cname(target) => encode_name(target, out, comp),
        RecordData::Mx {
            preference,
            exchange,
        } => {
            out.extend_from_slice(&preference.to_be_bytes());
            encode_name(exchange, out, comp);
        }
        RecordData::Txt(text) => {
            for chunk in text.as_bytes().chunks(255) {
                out.push(chunk.len() as u8);
                out.extend_from_slice(chunk);
            }
        }
        RecordData::Soa { mname, serial } => {
            encode_name(mname, out, comp);
            encode_root(out); // RNAME, not modeled
            out.extend_from_slice(&serial.to_be_bytes());
            out.extend_from_slice(&[0; 16]); // REFRESH/RETRY/EXPIRE/MINIMUM
        }
        // The model enum is non-exhaustive; a variant added without codec
        // support must fail loudly, mirroring rtype_to_wire.
        _ => {
            return Err(WireError::UnsupportedType {
                offset: 0,
                rtype: u16::MAX,
            })
        }
    }
    let rdlen = out.len() - len_at - 2;
    let rdlen = u16::try_from(rdlen).map_err(|_| WireError::BadRdata {
        offset: len_at,
        rtype,
    })?;
    out[len_at..len_at + 2].copy_from_slice(&rdlen.to_be_bytes());
    Ok(())
}

fn decode_rr(msg: &[u8], pos: &mut usize) -> Result<ResourceRecord, WireError> {
    let (name, after) = decode_name(msg, *pos)?;
    *pos = after;
    let type_offset = *pos;
    let rtype_raw = read_u16(msg, pos)?;
    let rtype = rtype_from_wire(rtype_raw, type_offset)?;
    let class_offset = *pos;
    let class = read_u16(msg, pos)?;
    if class != CLASS_IN {
        return Err(WireError::UnsupportedClass {
            offset: class_offset,
            class,
        });
    }
    let ttl = Ttl::secs(read_u32(msg, pos)?);
    let rdlen = usize::from(read_u16(msg, pos)?);
    let rdata_start = *pos;
    let rdata_end = rdata_start + rdlen;
    if msg.len() < rdata_end {
        return Err(WireError::Truncated {
            offset: rdata_start,
            needed: rdlen,
        });
    }
    let bad_rdata = WireError::BadRdata {
        offset: rdata_start,
        rtype: rtype_raw,
    };
    let data = match rtype {
        RecordType::A => {
            if rdlen != 4 {
                return Err(bad_rdata);
            }
            let o = &msg[rdata_start..rdata_end];
            *pos = rdata_end;
            RecordData::A([o[0], o[1], o[2], o[3]].into())
        }
        RecordType::Ns => RecordData::Ns(decode_rdata_name(msg, pos, rdata_end, &bad_rdata)?),
        RecordType::Cname => RecordData::Cname(decode_rdata_name(msg, pos, rdata_end, &bad_rdata)?),
        RecordType::Mx => {
            if rdlen < 3 {
                return Err(bad_rdata);
            }
            let preference = read_u16(msg, pos)?;
            let exchange = decode_rdata_name(msg, pos, rdata_end, &bad_rdata)?;
            RecordData::Mx {
                preference,
                exchange,
            }
        }
        RecordType::Txt => {
            let mut text = Vec::with_capacity(rdlen);
            while *pos < rdata_end {
                let chunk_len = usize::from(msg[*pos]);
                let chunk_end = *pos + 1 + chunk_len;
                if chunk_end > rdata_end {
                    return Err(bad_rdata);
                }
                text.extend_from_slice(&msg[*pos + 1..chunk_end]);
                *pos = chunk_end;
            }
            RecordData::Txt(String::from_utf8(text).map_err(|_| bad_rdata.clone())?)
        }
        RecordType::Soa => {
            let mname = decode_rdata_name(msg, pos, rdata_end, &bad_rdata)?;
            // RNAME: structurally validated, value discarded (may be root).
            let mut scratch = NameScratch::new();
            let (_, after) = decode_name_into(msg, *pos, &mut scratch)?;
            if after > rdata_end {
                return Err(bad_rdata);
            }
            *pos = after;
            let serial = read_u32(msg, pos)?;
            for _ in 0..4 {
                read_u32(msg, pos)?; // REFRESH/RETRY/EXPIRE/MINIMUM
            }
            if *pos > rdata_end {
                return Err(bad_rdata);
            }
            RecordData::Soa { mname, serial }
        }
        // rtype_from_wire only returns the six types above; the model
        // enum is non-exhaustive so the compiler still wants this arm.
        _ => return Err(bad_rdata),
    };
    if *pos != rdata_end {
        return Err(bad_rdata);
    }
    Ok(ResourceRecord::new(name, ttl, data))
}

/// Decodes a domain name inside RDATA, enforcing the RDLENGTH boundary on
/// the bytes consumed in place (compression targets may reach earlier
/// message bytes).
fn decode_rdata_name(
    msg: &[u8],
    pos: &mut usize,
    rdata_end: usize,
    bad_rdata: &WireError,
) -> Result<remnant_dns::DomainName, WireError> {
    let (name, after) = decode_name(msg, *pos)?;
    if after > rdata_end {
        return Err(bad_rdata.clone());
    }
    *pos = after;
    Ok(name)
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use remnant_dns::{DomainName, Rcode};

    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    fn rr(owner: &str, data: RecordData) -> ResourceRecord {
        ResourceRecord::new(name(owner), Ttl::secs(300), data)
    }

    fn sample_response() -> Response {
        let query = Query::new(name("www.example.com"), RecordType::A);
        Response {
            query,
            rcode: Rcode::NoError,
            authoritative: true,
            answers: vec![
                rr("www.example.com", RecordData::Cname(name("x.provider.net"))),
                rr(
                    "x.provider.net",
                    RecordData::A(Ipv4Addr::new(203, 0, 113, 9)),
                ),
            ]
            .into(),
            authority: vec![rr("example.com", RecordData::Ns(name("ns1.provider.net")))].into(),
            additional: vec![rr(
                "ns1.provider.net",
                RecordData::A(Ipv4Addr::new(198, 51, 100, 53)),
            )]
            .into(),
        }
    }

    #[test]
    fn query_round_trips() {
        let q = Query::new(name("www.example.com"), RecordType::Txt);
        let msg = Message::query(0x1234, &q);
        let wire = msg.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, msg);
        assert_eq!(back.question, Some(q));
        assert!(!back.flags.qr);
        assert!(back.flags.rd);
    }

    #[test]
    fn response_round_trips_through_wire() {
        let response = sample_response();
        let msg = Message::response(7, &response);
        let wire = msg.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, msg);
        assert_eq!(back.to_response().unwrap(), response);
    }

    #[test]
    fn all_record_types_round_trip() {
        let records = vec![
            rr("a.example.com", RecordData::A(Ipv4Addr::new(1, 2, 3, 4))),
            rr("b.example.com", RecordData::Cname(name("c.example.com"))),
            rr("example.com", RecordData::Ns(name("ns.example.com"))),
            rr(
                "example.com",
                RecordData::Mx {
                    preference: 10,
                    exchange: name("mx.example.com"),
                },
            ),
            rr("example.com", RecordData::Txt("v=spf1 -all".into())),
            rr(
                "example.com",
                RecordData::Soa {
                    mname: name("ns.example.com"),
                    serial: 2_026_080_801,
                },
            ),
        ];
        let query = Query::new(name("example.com"), RecordType::Soa);
        let response = Response::answer(query, records);
        let msg = Message::response(1, &response);
        let back = Message::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(back.to_response().unwrap(), response);
    }

    #[test]
    fn compression_shrinks_shared_suffixes() {
        let response = sample_response();
        let compressed = Message::response(7, &response).encode().unwrap();
        // The same sections spelled with every name in full:
        let mut flat = Vec::new();
        Header {
            id: 7,
            flags: Flags::response(Rcode::NoError, true),
            qdcount: 1,
            ancount: 2,
            nscount: 1,
            arcount: 1,
        }
        .encode_into(&mut flat)
        .unwrap();
        let q = &response.query;
        encode_name(&q.name, &mut flat, &mut Compressor::new());
        flat.extend_from_slice(&rtype_to_wire(q.rtype).unwrap().to_be_bytes());
        flat.extend_from_slice(&CLASS_IN.to_be_bytes());
        for section in [&response.answers, &response.authority, &response.additional] {
            for record in section.iter() {
                encode_rr(record, &mut flat, &mut Compressor::new()).unwrap();
            }
        }
        assert!(
            compressed.len() < flat.len(),
            "compressed {} >= flat {}",
            compressed.len(),
            flat.len()
        );
        // And the compressed form still decodes to the same message.
        assert_eq!(
            Message::decode(&compressed).unwrap().to_response().unwrap(),
            response
        );
    }

    #[test]
    fn large_txt_chunks_and_rejoins() {
        let text: String = "x".repeat(700);
        let response = Response::answer(
            Query::new(name("t.example.com"), RecordType::Txt),
            vec![rr("t.example.com", RecordData::Txt(text.clone()))],
        );
        let back = Message::decode(&Message::response(3, &response).encode().unwrap()).unwrap();
        let decoded = back.to_response().unwrap();
        match &decoded.answers[0].data {
            RecordData::Txt(t) => assert_eq!(t, &text),
            other => panic!("expected TXT, got {other:?}"),
        }
    }

    #[test]
    fn multibyte_txt_survives_chunk_split() {
        // 254 ASCII bytes then a 3-byte code point: the chunk boundary at
        // 255 splits the code point across character-strings.
        let text = format!("{}\u{20AC}", "a".repeat(254));
        let response = Response::answer(
            Query::new(name("t.example.com"), RecordType::Txt),
            vec![rr("t.example.com", RecordData::Txt(text.clone()))],
        );
        let back = Message::decode(&Message::response(3, &response).encode().unwrap()).unwrap();
        match &back.answers[0].data {
            RecordData::Txt(t) => assert_eq!(t, &text),
            other => panic!("expected TXT, got {other:?}"),
        }
    }

    #[test]
    fn empty_response_sections_round_trip() {
        let response = Response::empty(
            Query::new(name("gone.example.com"), RecordType::A),
            Rcode::NxDomain,
        );
        let back = Message::decode(&Message::response(9, &response).encode().unwrap()).unwrap();
        assert_eq!(back.to_response().unwrap(), response);
        assert_eq!(back.flags.rcode, Rcode::NxDomain);
    }

    #[test]
    fn decode_is_strict_about_trailing_bytes() {
        let mut wire = Message::query(1, &Query::new(name("example.com"), RecordType::A))
            .encode()
            .unwrap();
        let end = wire.len();
        wire.push(0);
        assert_eq!(
            Message::decode(&wire).unwrap_err(),
            WireError::TrailingBytes { offset: end }
        );
    }

    #[test]
    fn patch_id_rewrites_in_place() {
        let mut wire = Message::query(0, &Query::new(name("example.com"), RecordType::A))
            .encode()
            .unwrap();
        patch_id(&mut wire, 0xABCD);
        assert_eq!(Message::decode(&wire).unwrap().id, 0xABCD);
    }

    #[test]
    fn soa_unmodeled_fields_encode_as_zero() {
        let response = Response::answer(
            Query::new(name("example.com"), RecordType::Soa),
            vec![rr(
                "example.com",
                RecordData::Soa {
                    mname: name("ns.example.com"),
                    serial: 42,
                },
            )],
        );
        let wire = Message::response(1, &response).encode().unwrap();
        // The last 16 bytes are REFRESH/RETRY/EXPIRE/MINIMUM, all zero.
        assert_eq!(&wire[wire.len() - 16..], &[0u8; 16]);
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back.to_response().unwrap(), response);
    }
}
