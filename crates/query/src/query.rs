//! The columnar query API over a [`SnapshotStore`]: filter rounds, project
//! record columns, join consecutive rounds, diff generations, and fold
//! into deterministic aggregates.
//!
//! A [`RoundsQuery`] is a cheap, immutable selection of round indexes.
//! Filters narrow it without touching the disk; terminal operations
//! ([`snapshots`](RoundsQuery::snapshots), [`project`](RoundsQuery::project),
//! [`fold`](RoundsQuery::fold), …) reconstruct snapshots lazily, one round
//! at a time, and stream per-shard frames from the spill files while a
//! block is in scope — so a query over a month of rounds peaks at one
//! block of record data, the same bound the collector itself ran under.
//!
//! All outputs are deterministic: rounds are visited in collection order,
//! sites in rank order, so every aggregate is byte-reproducible across
//! runs, worker counts, and full/delta/spill campaign modes.

use std::ops::{Bound, RangeBounds};

use remnant_core::behavior::BehaviorDetector;
use remnant_core::{Adoption, DnsSnapshot, DpsStatus};
use remnant_provider::ProviderId;
use remnant_sim::stats::{Ecdf, Series};

use crate::store::{RoundKind, RoundMeta, SnapshotStore};

/// Which record column a projection reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordClass {
    /// Terminal A addresses of the www host.
    A,
    /// CNAME chain targets of the www host.
    Cname,
    /// NS hostnames of the apex.
    Ns,
}

impl RecordClass {
    fn label(self) -> &'static str {
        match self {
            RecordClass::A => "a",
            RecordClass::Cname => "cname",
            RecordClass::Ns => "ns",
        }
    }
}

/// One selected round, reconstructed: timeline metadata plus the snapshot.
#[derive(Clone, Debug)]
pub struct RoundSnapshot {
    /// The round's position on the campaign timeline.
    pub meta: RoundMeta,
    /// The reconstructed snapshot (record blocks still lazy if spilled).
    pub snapshot: DnsSnapshot,
}

/// Two consecutive selected rounds, for diff-style analyses.
#[derive(Clone, Debug)]
pub struct JoinedRounds {
    /// The earlier round.
    pub prev: RoundSnapshot,
    /// The later round.
    pub curr: RoundSnapshot,
}

/// A column projection folded over every selected round.
#[derive(Clone, Debug)]
pub struct Projection {
    /// Which column was projected.
    pub class: RecordClass,
    /// Total records of the class across all selected rounds.
    pub total: u64,
    /// Records of the class per round, keyed by day.
    pub per_round: Series,
    /// ECDF of per-site record counts across all selected rounds.
    pub per_site: Ecdf,
}

/// Per-provider adoption counts folded over every selected round.
#[derive(Clone, Debug)]
pub struct ClassifiedQuery {
    /// Which provider the fold was restricted to (None = any provider).
    pub provider: Option<ProviderId>,
    /// Sites with DPS status ON in the *last* selected round.
    pub adopted_final: usize,
    /// ON-site count per round, keyed by day.
    pub adopted_series: Series,
}

/// One round's generation delta, read from the store's metadata alone.
#[derive(Clone, Debug)]
pub struct GenerationDiff {
    /// The round number.
    pub round: u64,
    /// The round's study day.
    pub day: u32,
    /// How the round was persisted.
    pub kind: RoundKind,
    /// Shards the round re-resolved and wrote itself.
    pub dirty: usize,
    /// Shards chained unchanged from earlier rounds.
    pub clean: usize,
}

/// An immutable selection of rounds — see the module docs.
#[derive(Clone)]
pub struct RoundsQuery<'a> {
    store: &'a SnapshotStore,
    selected: Vec<usize>,
}

fn contains_u64(range: &impl RangeBounds<u64>, v: u64) -> bool {
    (match range.start_bound() {
        Bound::Included(&s) => v >= s,
        Bound::Excluded(&s) => v > s,
        Bound::Unbounded => true,
    }) && (match range.end_bound() {
        Bound::Included(&e) => v <= e,
        Bound::Excluded(&e) => v < e,
        Bound::Unbounded => true,
    })
}

impl<'a> RoundsQuery<'a> {
    pub(crate) fn all(store: &'a SnapshotStore) -> Self {
        RoundsQuery {
            store,
            selected: (0..store.len()).collect(),
        }
    }

    /// Keeps rounds whose 0-based round number falls in `range`.
    pub fn rounds(mut self, range: impl RangeBounds<u64>) -> Self {
        self.selected
            .retain(|&i| contains_u64(&range, self.store.meta(i).round));
        self
    }

    /// Keeps rounds whose study day falls in `range`.
    pub fn days(mut self, range: impl RangeBounds<u64>) -> Self {
        self.selected
            .retain(|&i| contains_u64(&range, u64::from(self.store.meta(i).day)));
        self
    }

    /// Keeps rounds of one 0-based study week (days `7w .. 7w+7`).
    pub fn week(self, week: u32) -> Self {
        let start = u64::from(week) * 7;
        self.days(start..start + 7)
    }

    /// Keeps rounds whose 0-based study week falls in `range`.
    pub fn weeks(mut self, range: impl RangeBounds<u64>) -> Self {
        self.selected
            .retain(|&i| contains_u64(&range, u64::from(self.store.meta(i).day) / 7));
        self
    }

    /// Selected rounds.
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// True if no round survived the filters.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }

    /// The selected rounds' timeline metadata, in round order.
    pub fn metas(&self) -> impl Iterator<Item = &'a RoundMeta> + '_ {
        self.selected.iter().map(|&i| self.store.meta(i))
    }

    /// Reconstructs the selected rounds lazily, in round order.
    pub fn snapshots(&self) -> impl Iterator<Item = RoundSnapshot> + '_ {
        self.selected.iter().map(|&i| RoundSnapshot {
            meta: self.store.meta(i).clone(),
            snapshot: self.store.snapshot(i),
        })
    }

    /// Joins consecutive selected rounds into `(prev, curr)` pairs —
    /// one fewer item than [`snapshots`](Self::snapshots) yields.
    pub fn joined(&self) -> impl Iterator<Item = JoinedRounds> + '_ {
        let mut prev: Option<RoundSnapshot> = None;
        self.snapshots().filter_map(move |curr| {
            let joined = prev.take().map(|p| JoinedRounds {
                prev: p,
                curr: curr.clone(),
            });
            prev = Some(curr);
            joined
        })
    }

    /// Folds an accumulator over the selected rounds in collection order.
    pub fn fold<B, F>(&self, init: B, mut f: F) -> B
    where
        F: FnMut(B, &RoundSnapshot) -> B,
    {
        let mut acc = init;
        for round in self.snapshots() {
            acc = f(acc, &round);
        }
        acc
    }

    /// A `(day, value)` series: one point per selected round.
    pub fn series<F>(&self, label: impl Into<String>, mut f: F) -> Series
    where
        F: FnMut(&RoundSnapshot) -> f64,
    {
        let mut series = Series::new(label.into());
        for round in self.snapshots() {
            let y = f(&round);
            series.push(f64::from(round.meta.day), y);
        }
        series
    }

    /// An ECDF of one sample per site per selected round.
    pub fn ecdf<F>(&self, mut f: F) -> Ecdf
    where
        F: FnMut(remnant_core::SiteView<'_>) -> f64,
    {
        let mut ecdf = Ecdf::new();
        for round in self.snapshots() {
            for loaded in round.snapshot.blocks() {
                for i in 0..loaded.block.len() {
                    ecdf.push(f(loaded.block.site(i)));
                }
            }
        }
        ecdf
    }

    /// Projects one record column across the selected rounds.
    pub fn project(&self, class: RecordClass) -> Projection {
        let mut total = 0u64;
        let mut per_round = Series::new(format!("records.{}", class.label()));
        let mut per_site = Ecdf::new();
        for round in self.snapshots() {
            let mut round_total = 0u64;
            for loaded in round.snapshot.blocks() {
                for i in 0..loaded.block.len() {
                    let site = loaded.block.site(i);
                    let n = match class {
                        RecordClass::A => site.a.len(),
                        RecordClass::Cname => site.cnames.len(),
                        RecordClass::Ns => site.ns.len(),
                    };
                    round_total += n as u64;
                    per_site.push(n as f64);
                }
            }
            total += round_total;
            per_round.push(f64::from(round.meta.day), round_total as f64);
        }
        Projection {
            class,
            total,
            per_round,
            per_site,
        }
    }

    /// Classifies every selected round (Table III rules) and folds the
    /// ON-site counts, optionally restricted to one provider.
    fn classified_inner(&self, provider: Option<ProviderId>) -> ClassifiedQuery {
        let detector = BehaviorDetector::new();
        let label = match provider {
            Some(p) => format!("adopted.{p}"),
            None => "adopted".to_owned(),
        };
        let mut adopted_series = Series::new(label);
        let mut adopted_final = 0usize;
        for round in self.snapshots() {
            let classes = detector.classify_snapshot(&round.snapshot);
            let adopted = classes
                .iter()
                .filter(|c| {
                    c.status == DpsStatus::On && provider.is_none_or(|p| c.provider == Some(p))
                })
                .count();
            adopted_series.push(f64::from(round.meta.day), adopted as f64);
            adopted_final = adopted;
        }
        ClassifiedQuery {
            provider,
            adopted_final,
            adopted_series,
        }
    }

    /// Adoption fold across all providers.
    pub fn classified(&self) -> ClassifiedQuery {
        self.classified_inner(None)
    }

    /// Adoption fold restricted to one provider.
    pub fn provider(&self, provider: ProviderId) -> ClassifiedQuery {
        self.classified_inner(Some(provider))
    }

    /// Each selected round's generation delta — dirty vs chained-clean
    /// shards — read from store metadata alone (no record I/O).
    pub fn generation_diff(&self) -> Vec<GenerationDiff> {
        let shards = self.store.shard_count() as usize;
        self.metas()
            .map(|meta| GenerationDiff {
                round: meta.round,
                day: meta.day,
                kind: meta.kind,
                dirty: meta.dirty_shards.len(),
                clean: shards - meta.dirty_shards.len(),
            })
            .collect()
    }

    /// Classifies every selected round, yielding `(meta, classes)` —
    /// the shared substrate of the analysis plans.
    pub fn classify_rounds(&self) -> impl Iterator<Item = (RoundMeta, Vec<Adoption>)> + '_ {
        let detector = BehaviorDetector::new();
        self.snapshots()
            .map(move |round| (round.meta, detector.classify_snapshot(&round.snapshot)))
    }
}
