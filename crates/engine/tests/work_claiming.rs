//! Adversarial-scheduling property tests: work-claiming execution merges
//! byte-identically to the legacy static shard plan, no matter how shards
//! straggle.
//!
//! The oracle is deliberately *not* the engine: it re-derives the
//! determinism contract by hand — plan the shards, seed each shard's RNG
//! from `seed → child("engine") → derive_indexed("shard", idx)`, run the
//! task sequentially in plan order — exactly what the old static
//! contiguous executor produced. The engine then runs the same task with
//! injected per-shard latency skews (a straggler sleeps while its
//! neighbors race ahead, scrambling claim order) across several worker
//! counts, and every merged byte must match the oracle.

use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remnant_engine::{plan_shards, EngineConfig, ScanEngine, TaskResult};
use remnant_sim::SeedSeq;

/// What the engine's task computes per item: a mix of the item, the
/// shard RNG stream, and the per-shard worker accumulator — enough to
/// catch a wrong RNG stream, a leaked worker, or a misordered merge.
fn mix(item: u64, noise: u64, acc: u64) -> u64 {
    item.wrapping_mul(0x9E37_79B9).rotate_left(13) ^ noise ^ acc
}

/// The legacy static-plan oracle: sequential, in plan order, no threads.
fn static_plan_reference(items: &[u64], config: &EngineConfig) -> (Vec<u64>, Vec<u64>) {
    let seeds = SeedSeq::new(config.seed).child("engine");
    let shards = plan_shards(items.len(), config.effective_shard_size());
    let mut outputs = Vec::with_capacity(items.len());
    let mut queries = Vec::with_capacity(shards.len());
    for (idx, range) in shards.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seeds.derive_indexed("shard", idx as u64));
        let mut acc = 0u64;
        let mut sent = 0u64;
        for rank in range.clone() {
            acc += 1;
            sent += 1;
            let noise: u64 = rng.gen_range(0..1 << 24);
            outputs.push(mix(items[rank], noise, acc));
        }
        queries.push(sent);
    }
    (outputs, queries)
}

/// Runs the engine with per-shard sleeps injected from `skews_us`
/// (microseconds, indexed by shard modulo the skew table).
fn claiming_run(items: &[u64], config: &EngineConfig, skews_us: &[u16]) -> (Vec<u64>, Vec<u64>) {
    let sweep = ScanEngine::new(config.clone()).sweep(
        &(),
        items,
        |_| 0u64,
        |_, acc, scope, _, item| {
            *acc += 1;
            scope.add_queries(1);
            if !skews_us.is_empty() {
                let skew = skews_us[scope.shard() % skews_us.len()];
                if skew > 0 {
                    std::thread::sleep(Duration::from_micros(u64::from(skew)));
                }
            }
            let noise: u64 = scope.rng().gen_range(0..1 << 24);
            TaskResult::Done(mix(*item, noise, *acc))
        },
    );
    let queries = sweep.stats.shards.iter().map(|s| s.queries).collect();
    (sweep.outputs, queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: for arbitrary item counts, layouts, worker
    /// counts, and straggler skews, the claiming scheduler's merged
    /// output and per-shard counters are byte-identical to the static
    /// plan.
    #[test]
    fn claiming_matches_static_plan_under_straggler_skew(
        items in proptest::collection::vec(0u64..1 << 40, 0..400),
        shard_size in 1usize..48,
        shards_per_worker in 1usize..4,
        workers in 1usize..7,
        seed in proptest::arbitrary::any::<u64>(),
        skews_us in proptest::collection::vec(0u16..400, 1..6),
    ) {
        let config = EngineConfig {
            workers,
            shard_size,
            shards_per_worker,
            seed,
            ..EngineConfig::default()
        };
        let (expected, expected_queries) = static_plan_reference(&items, &config);
        let (got, got_queries) = claiming_run(&items, &config, &skews_us);
        prop_assert_eq!(got, expected);
        prop_assert_eq!(got_queries, expected_queries);
    }
}

/// A deterministic extreme case: the very first shard sleeps 30ms — long
/// enough that every other shard finishes first and claim order inverts
/// completely — and the merge still cannot tell.
#[test]
fn extreme_straggler_does_not_reorder_the_merge() {
    let items: Vec<u64> = (0..160).collect();
    let config = EngineConfig {
        workers: 4,
        shard_size: 16,
        seed: 99,
        ..EngineConfig::default()
    };
    let (expected, _) = static_plan_reference(&items, &config);
    // Shard 0 is the straggler; everyone else is instant.
    let (got, _) = claiming_run(&items, &config, &[30_000, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
    assert_eq!(got, expected);

    // And the same with every worker count, solo run included.
    for workers in [1, 2, 8] {
        let config = EngineConfig {
            workers,
            ..config.clone()
        };
        let (got, _) = claiming_run(&items, &config, &[5_000, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(got, expected, "workers={workers}");
    }
}
