//! The residual-resolution study (Sec III, Sec V).
//!
//! An adversary obtains a website's origin address from its *previous* DPS
//! provider:
//!
//! * **NS-based remnants (Cloudflare)** — [`cloudflare::CloudflareScanner`]
//!   harvests the provider's nameserver fleet from observed NS records and
//!   directly queries it for every target's `www` A record, rotating over
//!   five vantage points;
//! * **CNAME-based remnants (Incapsula)** — [`incapsula::IncapsulaScanner`]
//!   harvests customer CNAME tokens during the usage study and keeps
//!   resolving them after the customers move away;
//! * the three-stage [`filters::FilterPipeline`] (Fig 8) reduces raw scan
//!   output to **hidden records** and **verified origins** (Table VI);
//! * [`exposure::ExposureTracker`] derives the week-over-week exposure
//!   timelines (Fig 9);
//! * [`purge_probe::PurgeProbe`] reproduces the sign-up/terminate/probe
//!   self-experiment that measured Cloudflare's ~4-week purge (Sec V-A.3).

pub mod cloudflare;
pub mod exposure;
pub mod filters;
pub mod incapsula;
pub mod purge_probe;

use std::net::Ipv4Addr;

use remnant_dns::DomainName;

pub use cloudflare::CloudflareScanner;
pub use exposure::ExposureTracker;
pub use filters::{FilterPipeline, WeeklyScanReport, FUNNEL_STAGES};
pub use incapsula::IncapsulaScanner;
pub use purge_probe::{PurgeProbe, PurgeProbeResult};

/// A hidden record: an address retrievable *only* from the previous DPS
/// provider's nameservers, invisible to normal resolution (Sec V-A.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HiddenRecord {
    /// Site rank in the target list.
    pub rank: usize,
    /// The site's apex domain.
    pub apex: DomainName,
    /// The addresses the DPS nameserver revealed and public DNS does not
    /// (the `A_diff` set).
    pub hidden: Vec<Ipv4Addr>,
    /// What public resolution currently returns (`A_nor`).
    pub public: Vec<Ipv4Addr>,
}
