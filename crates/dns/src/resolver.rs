//! The recursive resolver.
//!
//! A caching, iterative resolver equivalent to the unbound instance the
//! authors ran on EC2 (Sec IV-B.1): it starts from the registry (root),
//! follows referrals, chases CNAME chains, caches everything it learns with
//! TTLs, and can purge its cache before each measurement round.
//!
//! Two behaviors matter for the paper's findings and are modeled carefully:
//!
//! * **Stale delegations.** NS records learned from referrals are cached
//!   with their (long) TTLs. If a website re-delegates to a new DPS
//!   provider, this resolver keeps sending queries to the *previous*
//!   provider's nameservers until the cached NS expires — the exact
//!   mechanism that motivates providers to keep answering (Sec VI-A).
//! * **Fallback on dead delegations.** If every cached nameserver ignores
//!   the query, the resolver drops those cache entries and retries once
//!   from the root, as production resolvers do.

use std::net::Ipv4Addr;

use remnant_net::Region;
use remnant_obs::{Instrumented, MetricKey};
use remnant_sim::SimClock;

use crate::cache::ResolverCache;
use crate::error::DnsError;
use crate::message::{Query, Rcode, Response};
use crate::name::DomainName;
use crate::record::{RecordType, ResourceRecord};
use crate::transport::DnsTransport;

/// Maximum CNAME chain length before declaring a loop.
const MAX_CNAME_DEPTH: usize = 8;
/// Maximum referral depth per query.
const MAX_REFERRALS: usize = 8;

/// Static label for a query type, for metric label sets.
fn qtype_label(rtype: RecordType) -> &'static str {
    match rtype {
        RecordType::A => "A",
        RecordType::Cname => "CNAME",
        RecordType::Ns => "NS",
        RecordType::Mx => "MX",
        RecordType::Txt => "TXT",
        RecordType::Soa => "SOA",
    }
}

/// Position of `rtype` in [`RecordType::ALL`].
fn qtype_index(rtype: RecordType) -> usize {
    RecordType::ALL
        .iter()
        .position(|&t| t == rtype)
        .expect("RecordType::ALL is exhaustive")
}

/// Plain counters the resolver accumulates on its hot path.
///
/// Cheap fixed-size fields — no map lookups per query. The registry view
/// of these numbers is produced on demand through the resolver's
/// [`Instrumented`] impl.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// `resolve()` calls per query type, indexed like [`RecordType::ALL`].
    queries: [u64; RecordType::ALL.len()],
    /// Authoritative iterations finishing after N referral hops
    /// (`delegation_depth[0]` = answered by the first server set).
    delegation_depth: [u64; MAX_REFERRALS + 1],
    /// Dead-delegation retries that restarted iteration from the root.
    fallback_retries: u64,
}

impl ResolverStats {
    /// `resolve()` calls for one query type.
    pub fn queries_for(&self, rtype: RecordType) -> u64 {
        self.queries[qtype_index(rtype)]
    }

    /// Total `resolve()` calls across all query types.
    pub fn total_queries(&self) -> u64 {
        self.queries.iter().sum()
    }

    /// Dead-delegation retries that restarted from the root.
    pub fn fallback_retries(&self) -> u64 {
        self.fallback_retries
    }

    /// (depth, count) pairs for completed authoritative iterations, in
    /// depth order, zero counts included.
    pub fn delegation_depths(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.delegation_depth.iter().copied().enumerate()
    }
}

/// The outcome of a successful resolution exchange.
///
/// `records` holds the full observed chain (CNAMEs plus terminal records),
/// which is exactly what the paper's record collector stores per domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Resolution {
    /// All records observed along the resolution, in chase order.
    pub records: Vec<ResourceRecord>,
    /// Terminal response code (`NoError` with no records means NODATA).
    pub rcode: Rcode,
}

impl Resolution {
    /// Iterates the IPv4 addresses in the chain without building a `Vec`.
    pub fn iter_addresses(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.records.iter().filter_map(|rr| rr.data.as_a())
    }

    /// Iterates the CNAME targets in chase order without cloning.
    pub fn iter_cnames(&self) -> impl Iterator<Item = &DomainName> {
        self.records.iter().filter_map(|rr| rr.data.as_cname())
    }

    /// Iterates the NS hostnames in the chain without cloning.
    pub fn iter_ns_hosts(&self) -> impl Iterator<Item = &DomainName> {
        self.records.iter().filter_map(|rr| rr.data.as_ns())
    }

    /// All IPv4 addresses in the chain.
    pub fn addresses(&self) -> Vec<Ipv4Addr> {
        self.iter_addresses().collect()
    }

    /// All CNAME targets in chase order (owned handles; cloning a
    /// [`DomainName`] is a refcount bump).
    pub fn cnames(&self) -> Vec<DomainName> {
        self.iter_cnames().cloned().collect()
    }

    /// All NS hostnames in the chain (owned handles).
    pub fn ns_hosts(&self) -> Vec<DomainName> {
        self.iter_ns_hosts().cloned().collect()
    }

    /// True if the resolution produced no usable records.
    pub fn is_negative(&self) -> bool {
        self.records.is_empty()
    }
}

/// A caching iterative resolver (see module docs).
///
/// # Example
///
/// See the crate-level example in [`crate`].
#[derive(Clone, Debug)]
pub struct RecursiveResolver {
    clock: SimClock,
    region: Region,
    cache: ResolverCache,
    stats: ResolverStats,
}

impl RecursiveResolver {
    /// Creates a resolver at `region` sharing the simulation `clock`.
    pub fn new(clock: SimClock, region: Region) -> Self {
        RecursiveResolver {
            clock,
            region,
            cache: ResolverCache::new(),
            stats: ResolverStats::default(),
        }
    }

    /// The region this resolver queries from (anycast catchment).
    pub fn region(&self) -> Region {
        self.region
    }

    /// Shared access to the cache (e.g. for stats).
    pub fn cache(&self) -> &ResolverCache {
        &self.cache
    }

    /// The resolver's own counters (per-qtype queries, delegation depth,
    /// fallback retries). Cache hit/miss/expired counters live on
    /// [`RecursiveResolver::cache`].
    pub fn stats(&self) -> &ResolverStats {
        &self.stats
    }

    /// Purges the cache — run before each daily collection (Sec IV-B.1).
    pub fn purge_cache(&mut self) {
        self.cache.purge();
    }

    /// Resolves `name`/`rtype`, chasing CNAMEs and following referrals.
    ///
    /// Returns `Ok` for any terminal DNS outcome (including NXDOMAIN and
    /// NODATA — inspect [`Resolution::rcode`]).
    ///
    /// # Errors
    ///
    /// * [`DnsError::Timeout`] — no nameserver answered after fallback;
    /// * [`DnsError::CnameChain`] — alias chain too long or looping.
    pub fn resolve<T: DnsTransport>(
        &mut self,
        transport: &mut T,
        name: &DomainName,
        rtype: RecordType,
    ) -> Result<Resolution, DnsError> {
        self.stats.queries[qtype_index(rtype)] += 1;
        let mut chain: Vec<ResourceRecord> = Vec::new();
        let mut current = name.clone();
        let mut seen = vec![current.clone()];

        for _ in 0..=MAX_CNAME_DEPTH {
            let now = self.clock.now();
            // Terminal records already cached?
            if let Some(rrs) = self.cache.get(now, &current, rtype) {
                chain.extend(rrs.iter().cloned());
                return Ok(Resolution {
                    records: chain,
                    rcode: Rcode::NoError,
                });
            }
            // Cached negative?
            if let Some(entry) = self.cache.get_entry(now, &current, rtype) {
                if entry.records.is_empty() {
                    let rcode = entry.rcode;
                    return Ok(Resolution {
                        records: chain,
                        rcode,
                    });
                }
            }
            // Cached alias?
            if rtype != RecordType::Cname {
                if let Some(cnames) = self.cache.get(now, &current, RecordType::Cname) {
                    let target = cnames[0]
                        .data
                        .as_cname()
                        .expect("cname cache entries hold cname data")
                        .clone();
                    chain.extend(cnames.iter().cloned());
                    if seen.contains(&target) {
                        return Err(DnsError::CnameChain {
                            name: name.to_string(),
                        });
                    }
                    seen.push(target.clone());
                    current = target;
                    continue;
                }
            }
            // Go ask the authoritative hierarchy.
            let response = self.query_authoritative(transport, &current, rtype)?;
            let now = self.clock.now();
            match response.rcode {
                Rcode::NoError if !response.answers.is_empty() => {
                    self.cache.insert(now, response.answers.clone());
                    // Serve from the response itself rather than re-reading
                    // the cache — a TTL-0 record is valid for this answer
                    // but expires the instant it is cached.
                    let mut advanced = false;
                    loop {
                        let direct: Vec<ResourceRecord> = response
                            .answers
                            .iter()
                            .filter(|rr| rr.name == current && rr.record_type() == rtype)
                            .cloned()
                            .collect();
                        if !direct.is_empty() {
                            chain.extend(direct);
                            return Ok(Resolution {
                                records: chain,
                                rcode: Rcode::NoError,
                            });
                        }
                        if rtype == RecordType::Cname {
                            break;
                        }
                        let Some(alias) = response
                            .answers
                            .iter()
                            .find(|rr| rr.name == current && rr.record_type() == RecordType::Cname)
                            .cloned()
                        else {
                            break;
                        };
                        let target = alias
                            .data
                            .as_cname()
                            .expect("cname records hold cname data")
                            .clone();
                        chain.push(alias);
                        if seen.contains(&target) {
                            return Err(DnsError::CnameChain {
                                name: name.to_string(),
                            });
                        }
                        seen.push(target.clone());
                        current = target;
                        advanced = true;
                    }
                    if !advanced {
                        // Records came back, but none for our name/type:
                        // effectively NODATA.
                        return Ok(Resolution {
                            records: chain,
                            rcode: Rcode::NoError,
                        });
                    }
                    // The chain advanced past this response's content; the
                    // outer loop resolves the new target.
                }
                Rcode::NoError => {
                    self.cache
                        .insert_negative(now, current.clone(), rtype, Rcode::NoError);
                    return Ok(Resolution {
                        records: chain,
                        rcode: Rcode::NoError,
                    });
                }
                rcode @ (Rcode::NxDomain | Rcode::Refused | Rcode::ServFail) => {
                    if rcode == Rcode::NxDomain {
                        self.cache
                            .insert_negative(now, current.clone(), rtype, rcode);
                    }
                    return Ok(Resolution {
                        records: chain,
                        rcode,
                    });
                }
            }
        }
        Err(DnsError::CnameChain {
            name: name.to_string(),
        })
    }

    /// Resolves and returns just the terminal addresses (empty on negative
    /// outcomes).
    ///
    /// # Errors
    ///
    /// Propagates [`RecursiveResolver::resolve`] errors.
    pub fn resolve_addresses<T: DnsTransport>(
        &mut self,
        transport: &mut T,
        name: &DomainName,
    ) -> Result<Vec<Ipv4Addr>, DnsError> {
        Ok(self.resolve(transport, name, RecordType::A)?.addresses())
    }

    /// Sends one query to one specific server, bypassing cache and
    /// recursion. This is the primitive the residual-resolution scanner
    /// uses to interrogate a previous provider's nameservers directly
    /// (Sec V-A.2).
    pub fn query_direct<T: DnsTransport>(
        &self,
        transport: &mut T,
        server: Ipv4Addr,
        query: &Query,
    ) -> Option<Response> {
        transport.query(self.clock.now(), server, self.region, query)
    }

    /// Queries the authoritative hierarchy for `qname`/`rtype`, following
    /// referrals from the deepest cached delegation (or the root).
    fn query_authoritative<T: DnsTransport>(
        &mut self,
        transport: &mut T,
        qname: &DomainName,
        rtype: RecordType,
    ) -> Result<Response, DnsError> {
        match self.try_from_cached_delegation(transport, qname, rtype) {
            Ok(response) => Ok(response),
            Err(_) => {
                // All cached nameservers are dead — drop the stale NS cache
                // for this name's suffixes and retry once from the root.
                self.stats.fallback_retries += 1;
                let now = self.clock.now();
                for suffix in qname.suffixes() {
                    if self.cache.get(now, &suffix, RecordType::Ns).is_some() {
                        // Overwrite with nothing by purging just that entry:
                        // simplest correct form is a negative-free removal,
                        // achieved by inserting an empty grouping via purge
                        // of the whole entry.
                        self.cache.insert_negative(
                            now,
                            suffix.clone(),
                            RecordType::Ns,
                            Rcode::NoError,
                        );
                    }
                }
                self.iterate_from(transport, vec![transport.root()], qname, rtype)
            }
        }
    }

    /// Starts iteration from the deepest cached delegation if one exists,
    /// else from the root.
    fn try_from_cached_delegation<T: DnsTransport>(
        &mut self,
        transport: &mut T,
        qname: &DomainName,
        rtype: RecordType,
    ) -> Result<Response, DnsError> {
        let now = self.clock.now();
        let mut start: Vec<Ipv4Addr> = Vec::new();
        for suffix in qname.suffixes() {
            if let Some(ns_records) = self.cache.get(now, &suffix, RecordType::Ns) {
                let mut addrs = Vec::new();
                for rr in ns_records.iter() {
                    if let Some(host) = rr.data.as_ns() {
                        if let Some(a_records) = self.cache.get(now, host, RecordType::A) {
                            addrs.extend(a_records.iter().filter_map(|r| r.data.as_a()));
                        }
                    }
                }
                if !addrs.is_empty() {
                    start = addrs;
                    break;
                }
            }
        }
        if start.is_empty() {
            start.push(transport.root());
        }
        self.iterate_from(transport, start, qname, rtype)
    }

    /// Iterates from `servers`, following referrals until an authoritative
    /// answer (or terminal negative) arrives.
    fn iterate_from<T: DnsTransport>(
        &mut self,
        transport: &mut T,
        mut servers: Vec<Ipv4Addr>,
        qname: &DomainName,
        rtype: RecordType,
    ) -> Result<Response, DnsError> {
        let query = Query::new(qname.clone(), rtype);
        for depth in 0..=MAX_REFERRALS {
            let mut answered = None;
            for server in &servers {
                let now = self.clock.now();
                if let Some(response) = transport.query(now, *server, self.region, &query) {
                    answered = Some(response);
                    break;
                }
            }
            let response = answered.ok_or_else(|| DnsError::Timeout {
                name: qname.to_string(),
            })?;
            if response.is_referral() {
                let now = self.clock.now();
                // Cache the delegation and its glue.
                self.cache.insert(now, response.authority.clone());
                self.cache.insert(now, response.additional.clone());
                let next: Vec<Ipv4Addr> = response
                    .additional
                    .iter()
                    .filter_map(|rr| rr.data.as_a())
                    .collect();
                if next.is_empty() {
                    // Glueless delegation: resolve NS hostnames from cache
                    // only (registry and providers always send glue, so this
                    // is a dead end in practice).
                    return Err(DnsError::NoNameservers {
                        name: qname.to_string(),
                    });
                }
                servers = next;
                continue;
            }
            self.stats.delegation_depth[depth] += 1;
            return Ok(response);
        }
        Err(DnsError::NoNameservers {
            name: qname.to_string(),
        })
    }
}

/// The resolver's counters — per-qtype query mix, delegation depth,
/// fallback retries, and its cache's hit/miss/expired tallies — through
/// the unified reading surface.
impl Instrumented for RecursiveResolver {
    fn component(&self) -> &'static str {
        "dns.resolver"
    }

    fn counters(&self) -> Vec<(MetricKey, u64)> {
        let mut out = Vec::new();
        for &rtype in &RecordType::ALL {
            out.push((
                MetricKey::labeled("resolver.queries", &[("qtype", qtype_label(rtype))]),
                self.stats.queries_for(rtype),
            ));
        }
        out.push((
            MetricKey::named("resolver.fallback_retries"),
            self.stats.fallback_retries,
        ));
        // Depth buckets are emitted sparsely: zero counts carry no
        // information and their presence is still deterministic (the
        // nonzero set is a pure function of the shard's work).
        let mut depth_label = String::new();
        for (depth, count) in self.stats.delegation_depths() {
            if count == 0 {
                continue;
            }
            depth_label.clear();
            let _ = std::fmt::Write::write_fmt(&mut depth_label, format_args!("{depth}"));
            out.push((
                MetricKey::labeled("resolver.delegation_depth", &[("depth", &depth_label)]),
                count,
            ));
        }
        let (hits, misses) = self.cache.stats();
        out.push((MetricKey::named("cache.hits"), hits));
        out.push((MetricKey::named("cache.misses"), misses));
        out.push((
            MetricKey::named("cache.expired"),
            self.cache.expired_count(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::ZoneServer;
    use crate::record::{RecordData, Ttl};
    use crate::registry::Registry;
    use crate::transport::StaticTransport;
    use crate::zone::Zone;
    use remnant_sim::SimDuration;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    const NS_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 53);
    const NS2_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 53);
    const WWW_IP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

    /// example.com delegated to ns1.host.net (10.0.0.53) serving www A.
    fn world() -> (StaticTransport, RecursiveResolver, SimClock) {
        let clock = SimClock::new();
        let mut registry = Registry::new();
        registry.delegate(name("example.com"), vec![(name("ns1.host.net"), NS_IP)]);
        let mut zone = Zone::new(name("example.com"));
        zone.add(ResourceRecord::new(
            name("www.example.com"),
            Ttl::secs(300),
            RecordData::A(WWW_IP),
        ));
        zone.add(ResourceRecord::new(
            name("example.com"),
            Ttl::days(1),
            RecordData::Ns(name("ns1.host.net")),
        ));
        let mut transport = StaticTransport::new(registry);
        transport.add_server(NS_IP, ZoneServer::new(vec![zone]));
        let resolver = RecursiveResolver::new(clock.clone(), Region::Oregon);
        (transport, resolver, clock)
    }

    #[test]
    fn resolves_through_referral() {
        let (mut t, mut r, _clock) = world();
        let res = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        assert_eq!(res.addresses(), vec![WWW_IP]);
        assert_eq!(res.rcode, Rcode::NoError);
    }

    #[test]
    fn second_resolution_is_served_from_cache() {
        let (mut t, mut r, _clock) = world();
        let _ = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        let sent_before = t.query_stats().sent;
        let res = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        assert_eq!(res.addresses(), vec![WWW_IP]);
        assert_eq!(
            t.query_stats().sent,
            sent_before,
            "no network traffic on cache hit"
        );
    }

    #[test]
    fn purge_forces_requery() {
        let (mut t, mut r, _clock) = world();
        let _ = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        r.purge_cache();
        let sent_before = t.query_stats().sent;
        let _ = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        assert!(t.query_stats().sent > sent_before);
    }

    #[test]
    fn ttl_expiry_forces_requery_of_answer_only() {
        let (mut t, mut r, clock) = world();
        let _ = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        clock.advance(SimDuration::secs(301)); // A expired, NS (1d) still live
        let sent_before = t.query_stats().sent;
        let res = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        assert_eq!(res.addresses(), vec![WWW_IP]);
        // Exactly one query: straight to the cached delegation, no root trip.
        assert_eq!(t.query_stats().sent - sent_before, 1);
    }

    #[test]
    fn nxdomain_resolution() {
        let (mut t, mut r, _clock) = world();
        let res = r
            .resolve(&mut t, &name("gone.example.com"), RecordType::A)
            .unwrap();
        assert_eq!(res.rcode, Rcode::NxDomain);
        assert!(res.is_negative());
    }

    #[test]
    fn unregistered_domain_is_nxdomain_from_root() {
        let (mut t, mut r, _clock) = world();
        let res = r
            .resolve(&mut t, &name("www.nowhere.org"), RecordType::A)
            .unwrap();
        assert_eq!(res.rcode, Rcode::NxDomain);
    }

    #[test]
    fn cname_chase_across_zones() {
        let clock = SimClock::new();
        let mut registry = Registry::new();
        registry.delegate(name("example.com"), vec![(name("ns1.host.net"), NS_IP)]);
        registry.delegate(
            name("incapdns.net"),
            vec![(name("ns1.incapdns.net"), NS2_IP)],
        );
        let mut customer = Zone::new(name("example.com"));
        customer.add(ResourceRecord::new(
            name("www.example.com"),
            Ttl::secs(300),
            RecordData::Cname(name("x7f3.incapdns.net")),
        ));
        let mut provider = Zone::new(name("incapdns.net"));
        provider.add(ResourceRecord::new(
            name("x7f3.incapdns.net"),
            Ttl::secs(60),
            RecordData::A(Ipv4Addr::new(199, 83, 128, 7)),
        ));
        let mut t = StaticTransport::new(registry);
        t.add_server(NS_IP, ZoneServer::new(vec![customer]));
        t.add_server(NS2_IP, ZoneServer::new(vec![provider]));
        let mut r = RecursiveResolver::new(clock, Region::London);

        let res = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        assert_eq!(res.cnames(), vec![name("x7f3.incapdns.net")]);
        assert_eq!(res.addresses(), vec![Ipv4Addr::new(199, 83, 128, 7)]);
    }

    #[test]
    fn cname_loop_is_detected() {
        let clock = SimClock::new();
        let mut registry = Registry::new();
        registry.delegate(name("loopy.com"), vec![(name("ns1.loopy.com"), NS_IP)]);
        let mut zone = Zone::new(name("loopy.com"));
        zone.add(ResourceRecord::new(
            name("a.loopy.com"),
            Ttl::secs(60),
            RecordData::Cname(name("b.loopy.com")),
        ));
        zone.add(ResourceRecord::new(
            name("b.loopy.com"),
            Ttl::secs(60),
            RecordData::Cname(name("a.loopy.com")),
        ));
        let mut t = StaticTransport::new(registry);
        t.add_server(NS_IP, ZoneServer::new(vec![zone]));
        let mut r = RecursiveResolver::new(clock, Region::Tokyo);
        let err = r
            .resolve(&mut t, &name("a.loopy.com"), RecordType::A)
            .unwrap_err();
        assert!(matches!(err, DnsError::CnameChain { .. }));
    }

    #[test]
    fn stale_ns_keeps_hitting_previous_server_until_expiry() {
        // The residual-resolution mechanism: after re-delegation the cached
        // NS still points at the old server for its TTL.
        let (mut t, mut r, clock) = world();
        let _ = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();

        // The website switches to a new provider: registry now points at
        // NS2, which serves a different answer.
        t.registry_mut()
            .delegate(name("example.com"), vec![(name("ns.newdps.net"), NS2_IP)]);
        let mut new_zone = Zone::new(name("example.com"));
        new_zone.add(ResourceRecord::new(
            name("www.example.com"),
            Ttl::secs(300),
            RecordData::A(Ipv4Addr::new(99, 99, 99, 99)),
        ));
        t.add_server(NS2_IP, ZoneServer::new(vec![new_zone]));

        // Cached A expires, cached NS does not: the resolver asks the OLD
        // server and still sees the old answer.
        clock.advance(SimDuration::secs(301));
        let res = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        assert_eq!(res.addresses(), vec![WWW_IP], "stale NS served old data");

        // After the NS TTL (1 day zone NS cached from authoritative answer;
        // delegation TTL 2 days) fully expires, the new provider answers.
        clock.advance(SimDuration::days(3));
        let res = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        assert_eq!(res.addresses(), vec![Ipv4Addr::new(99, 99, 99, 99)]);
    }

    #[test]
    fn dead_cached_delegation_falls_back_to_root() {
        let (mut t, mut r, clock) = world();
        let _ = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();

        // Old server goes dark; registry re-delegates to a live one.
        t.set_unreachable(NS_IP);
        t.registry_mut()
            .delegate(name("example.com"), vec![(name("ns.newdps.net"), NS2_IP)]);
        let mut new_zone = Zone::new(name("example.com"));
        new_zone.add(ResourceRecord::new(
            name("www.example.com"),
            Ttl::secs(300),
            RecordData::A(Ipv4Addr::new(99, 99, 99, 99)),
        ));
        t.add_server(NS2_IP, ZoneServer::new(vec![new_zone]));

        clock.advance(SimDuration::secs(301));
        let res = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        assert_eq!(res.addresses(), vec![Ipv4Addr::new(99, 99, 99, 99)]);
    }

    #[test]
    fn totally_dead_world_times_out() {
        let (mut t, mut r, _clock) = world();
        t.set_unreachable(NS_IP);
        t.set_unreachable(crate::transport::ROOT_SERVER);
        let err = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap_err();
        assert!(matches!(err, DnsError::Timeout { .. }));
    }

    #[test]
    fn query_direct_bypasses_cache() {
        let (mut t, mut r, _clock) = world();
        let _ = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        let resp = r
            .query_direct(
                &mut t,
                NS_IP,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .unwrap();
        assert_eq!(resp.answer_addresses(), vec![WWW_IP]);
    }

    #[test]
    fn ns_lookup_returns_apex_ns() {
        let (mut t, mut r, _clock) = world();
        let res = r
            .resolve(&mut t, &name("example.com"), RecordType::Ns)
            .unwrap();
        assert_eq!(res.ns_hosts(), vec![name("ns1.host.net")]);
    }

    #[test]
    fn resolver_counters_track_qtype_depth_and_cache() {
        let (mut t, mut r, clock) = world();
        let _ = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        let _ = r
            .resolve(&mut t, &name("example.com"), RecordType::Ns)
            .unwrap();
        // Expire the A answer so the next resolve records an expired miss.
        clock.advance(SimDuration::secs(301));
        let _ = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();

        assert_eq!(r.stats().queries_for(RecordType::A), 2);
        assert_eq!(r.stats().queries_for(RecordType::Ns), 1);
        assert_eq!(r.stats().total_queries(), 3);
        assert_eq!(r.stats().fallback_retries(), 0);
        // First resolve: root referral then answer (depth 1). Later
        // resolves run from the cached delegation (depth 0).
        let depths: Vec<(usize, u64)> = r
            .stats()
            .delegation_depths()
            .filter(|&(_, count)| count > 0)
            .collect();
        assert!(depths.contains(&(1, 1)), "first resolve took one referral");
        assert!(r.cache().expired_count() >= 1, "TTL lapse counted");

        let mut registry = remnant_obs::MetricsRegistry::new();
        r.export_into(&mut registry);
        let component = [("component", "dns.resolver")];
        assert_eq!(
            registry.counter_labeled("cache.expired", &component),
            r.cache().expired_count()
        );
        assert_eq!(
            registry.counter_key(
                &MetricKey::labeled("resolver.queries", &[("qtype", "A")])
                    .with_label("component", "dns.resolver")
            ),
            2
        );
    }

    #[test]
    fn fallback_retry_is_counted() {
        let (mut t, mut r, clock) = world();
        let _ = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        t.set_unreachable(NS_IP);
        t.registry_mut()
            .delegate(name("example.com"), vec![(name("ns.newdps.net"), NS2_IP)]);
        let mut new_zone = Zone::new(name("example.com"));
        new_zone.add(ResourceRecord::new(
            name("www.example.com"),
            Ttl::secs(300),
            RecordData::A(Ipv4Addr::new(99, 99, 99, 99)),
        ));
        t.add_server(NS2_IP, ZoneServer::new(vec![new_zone]));
        clock.advance(SimDuration::secs(301));
        let _ = r
            .resolve(&mut t, &name("www.example.com"), RecordType::A)
            .unwrap();
        assert_eq!(r.stats().fallback_retries(), 1);
    }

    #[test]
    fn nodata_is_noerror_with_empty_records() {
        let (mut t, mut r, _clock) = world();
        let res = r
            .resolve(&mut t, &name("www.example.com"), RecordType::Mx)
            .unwrap();
        assert_eq!(res.rcode, Rcode::NoError);
        assert!(res.is_negative());
    }
}
