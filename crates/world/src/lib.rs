//! The synthetic Internet the measurement toolkit runs against.
//!
//! The paper measured the live Internet: the Alexa top 1M, the public DNS,
//! and the production infrastructure of eleven DPS providers. This crate
//! substitutes a generative model calibrated to every statistic the paper
//! publishes (see [`config::Calibration`] for the full list with paper
//! references):
//!
//! * a ranked website population with popularity-dependent DPS adoption
//!   (14.85% overall, 38.98% in the top band — Sec IV-B.2);
//! * per-provider market shares (Cloudflare 79%, Incapsula 3.7% of DPS
//!   customers — Sec V);
//! * a continuous-time usage-dynamics engine producing JOIN / LEAVE /
//!   PAUSE / RESUME / SWITCH behaviors at the paper's daily rates
//!   (Fig 3), with pause durations following Fig 5's CDF and origin-IP
//!   (non-)rotation following Table V;
//! * full DNS/HTTP wiring: [`World`] implements both
//!   [`remnant_dns::DnsTransport`] and [`remnant_http::HttpTransport`], so
//!   the toolkit in `remnant-core` interrogates it exactly as the authors'
//!   scanners interrogated the Internet — recursive resolution, direct
//!   nameserver queries, and landing-page fetches.
//!
//! Every event applied by the dynamics engine is recorded in a ground-truth
//! log ([`BehaviorEvent`]), which integration tests compare against what
//! the measurement pipeline *infers* — the core validation of this
//! reproduction.
//!
//! # Example
//!
//! ```
//! use remnant_world::{World, WorldConfig};
//!
//! let mut world = World::generate(WorldConfig::small(1234));
//! world.step_days(3);
//! assert!(!world.events().is_empty());
//! ```

pub mod config;
pub mod dynamics;
pub mod names;
pub mod site;
pub mod world;

pub use config::{Calibration, WorldConfig};
pub use dynamics::{BehaviorEvent, BehaviorKind, LeaveFate};
pub use remnant_obs::Instrumented;
pub use site::{SiteId, SiteState, Website};
pub use world::World;
