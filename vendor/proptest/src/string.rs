//! Regex-shaped string generation.
//!
//! Supports the subset of regex syntax the workspace's tests use:
//! literal characters, `\`-escapes, character classes `[a-z0-9-]` (with
//! ranges and trailing literal `-`), groups with alternation
//! `(com|net|org)`, and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`
//! (`*`/`+` are capped at 8 repetitions).

use rand::Rng as _;

use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Node {
    Lit(char),
    Class(Vec<char>),
    Group(Vec<Vec<(Node, Quant)>>),
}

#[derive(Clone, Copy, Debug)]
struct Quant {
    min: u32,
    max: u32,
}

const UNBOUNDED_CAP: u32 = 8;

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn fail(&self, what: &str) -> ! {
        panic!(
            "proptest string strategy: unsupported regex {:?} ({what})",
            self.pattern
        )
    }

    fn parse_sequence(&mut self, in_group: bool) -> Vec<(Node, Quant)> {
        let mut seq = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if in_group && (c == '|' || c == ')') {
                break;
            }
            self.chars.next();
            let node = match c {
                '\\' => {
                    let escaped = self
                        .chars
                        .next()
                        .unwrap_or_else(|| self.fail("dangling \\"));
                    Node::Lit(escaped)
                }
                '[' => Node::Class(self.parse_class()),
                '(' => {
                    let mut alternatives = vec![self.parse_sequence(true)];
                    while self.chars.peek() == Some(&'|') {
                        self.chars.next();
                        alternatives.push(self.parse_sequence(true));
                    }
                    if self.chars.next() != Some(')') {
                        self.fail("unclosed group");
                    }
                    Node::Group(alternatives)
                }
                ')' | '|' | ']' | '{' | '}' | '?' | '*' | '+' => self.fail("stray metacharacter"),
                other => Node::Lit(other),
            };
            seq.push((node, self.parse_quantifier()));
        }
        seq
    }

    fn parse_class(&mut self) -> Vec<char> {
        let mut chars = Vec::new();
        loop {
            let c = self
                .chars
                .next()
                .unwrap_or_else(|| self.fail("unclosed class"));
            match c {
                ']' => break,
                '\\' => chars.push(
                    self.chars
                        .next()
                        .unwrap_or_else(|| self.fail("dangling \\")),
                ),
                '-' if !chars.is_empty() && self.chars.peek().is_some_and(|&n| n != ']') => {
                    let hi = self.chars.next().unwrap();
                    let lo = *chars.last().unwrap();
                    if lo > hi {
                        self.fail("inverted class range");
                    }
                    chars.pop();
                    chars.extend((lo..=hi).filter(|ch| ch.is_ascii()));
                }
                other => chars.push(other),
            }
        }
        if chars.is_empty() {
            self.fail("empty class");
        }
        chars
    }

    fn parse_quantifier(&mut self) -> Quant {
        match self.chars.peek() {
            Some('?') => {
                self.chars.next();
                Quant { min: 0, max: 1 }
            }
            Some('*') => {
                self.chars.next();
                Quant {
                    min: 0,
                    max: UNBOUNDED_CAP,
                }
            }
            Some('+') => {
                self.chars.next();
                Quant {
                    min: 1,
                    max: UNBOUNDED_CAP,
                }
            }
            Some('{') => {
                self.chars.next();
                let mut body = String::new();
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(c) => body.push(c),
                        None => self.fail("unclosed quantifier"),
                    }
                }
                let parse = |s: &str| -> u32 {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| self.fail("bad quantifier bound"))
                };
                match body.split_once(',') {
                    Some((min, max)) => Quant {
                        min: parse(min),
                        max: parse(max),
                    },
                    None => {
                        let n = parse(&body);
                        Quant { min: n, max: n }
                    }
                }
            }
            _ => Quant { min: 1, max: 1 },
        }
    }
}

fn sample_sequence(seq: &[(Node, Quant)], rng: &mut TestRng, out: &mut String) {
    for (node, quant) in seq {
        let reps = if quant.min == quant.max {
            quant.min
        } else {
            rng.gen_range(quant.min..=quant.max)
        };
        for _ in 0..reps {
            match node {
                Node::Lit(c) => out.push(*c),
                Node::Class(chars) => out.push(chars[rng.gen_range(0..chars.len())]),
                Node::Group(alternatives) => {
                    let pick = rng.gen_range(0..alternatives.len());
                    sample_sequence(&alternatives[pick], rng, out);
                }
            }
        }
    }
}

/// Draws one string matching `pattern`.
pub(crate) fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser {
        chars: pattern.chars().peekable(),
        pattern,
    };
    let seq = parser.parse_sequence(false);
    let mut out = String::new();
    sample_sequence(&seq, rng, &mut out);
    out
}
