//! Daily DNS snapshots: what the record collector stores per site.

use std::net::Ipv4Addr;

use remnant_dns::DomainName;
use remnant_sim::SimTime;

/// The records collected for one site on one day: the full A/CNAME chain
/// of its `www` host plus the apex NS set (Sec IV-B.1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteRecords {
    /// Terminal A addresses of the www host (empty if resolution failed).
    pub a: Vec<Ipv4Addr>,
    /// CNAME chain targets observed while resolving the www host.
    pub cnames: Vec<DomainName>,
    /// NS hostnames of the apex.
    pub ns: Vec<DomainName>,
}

impl SiteRecords {
    /// True if nothing resolved for the site.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty() && self.cnames.is_empty() && self.ns.is_empty()
    }
}

/// One collection round over the whole target list.
///
/// Records are indexed by site rank, parallel to the target list that
/// produced the snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsSnapshot {
    /// When the collection ran.
    pub taken_at: SimTime,
    /// Day index within the study (0-based).
    pub day: u32,
    /// Per-site records, by rank.
    pub records: Vec<SiteRecords>,
}

impl DnsSnapshot {
    /// Creates an empty snapshot shell.
    pub fn new(taken_at: SimTime, day: u32, capacity: usize) -> Self {
        DnsSnapshot {
            taken_at,
            day,
            records: Vec::with_capacity(capacity),
        }
    }

    /// The records for site `rank`, if collected.
    pub fn site(&self, rank: usize) -> Option<&SiteRecords> {
        self.records.get(rank)
    }

    /// Number of sites with at least one record.
    pub fn resolved_count(&self) -> usize {
        self.records.iter().filter(|r| !r.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_detection() {
        let mut r = SiteRecords::default();
        assert!(r.is_empty());
        r.ns.push("ns1.webhost1.net".parse().unwrap());
        assert!(!r.is_empty());
    }

    #[test]
    fn snapshot_indexing() {
        let mut snap = DnsSnapshot::new(SimTime::EPOCH, 0, 2);
        snap.records.push(SiteRecords::default());
        snap.records.push(SiteRecords {
            a: vec![Ipv4Addr::new(1, 2, 3, 4)],
            ..SiteRecords::default()
        });
        assert!(snap.site(0).unwrap().is_empty());
        assert!(!snap.site(1).unwrap().is_empty());
        assert!(snap.site(2).is_none());
        assert_eq!(snap.resolved_count(), 1);
    }
}
