//! Simulation primitives shared by every `remnant` crate.
//!
//! The paper ("Your Remnant Tells Secret", DSN 2018) is a *time-driven*
//! measurement study: DNS records are collected daily for six weeks, TTLs
//! expire, providers purge stale records after weeks, and pause windows are
//! measured in days. Nothing in the study depends on wall-clock load, so the
//! whole reproduction runs on a deterministic virtual clock.
//!
//! This crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual instants and spans with
//!   second granularity (DNS TTLs) and day-level helpers (the study's
//!   cadence);
//! * [`SimClock`] — a cheaply cloneable shared handle to the current
//!   virtual time;
//! * [`seed`] — label-based derivation of independent deterministic RNG
//!   streams from a single root seed;
//! * [`stats`] — counters, histograms, empirical CDFs and series used to
//!   regenerate the paper's figures.
//!
//! # Example
//!
//! ```
//! use remnant_sim::{SimClock, SimDuration};
//!
//! let clock = SimClock::new();
//! let probe = clock.clone();
//! clock.advance(SimDuration::days(3));
//! assert_eq!(probe.now().as_days(), 3);
//! ```

pub mod clock;
pub mod seed;
pub mod stats;

pub use clock::{SimClock, SimDuration, SimTime};
pub use seed::SeedSeq;
