//! Residual-resolution pipeline benchmarks: fleet harvesting, the direct
//! scan, and the three-stage Fig 8 filter pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use remnant::core::collector::{DeltaCollector, RecordCollector, Target};
use remnant::core::residual::{CloudflareScanner, FilterPipeline};
use remnant::core::SCANNER_SOURCE;
use remnant::engine::{EngineConfig, ScanEngine};
use remnant::net::Region;
use remnant::provider::ProviderId;
use remnant::world::{World, WorldConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut world = World::generate(WorldConfig {
        population: 2_000,
        seed: 3,
        warmup_days: 14, // builds a residual pool
        calibration: remnant::world::Calibration::paper(),
    });
    let targets: Vec<Target> = world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect();
    let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
    let snapshot = collector.collect(&mut world, &targets, 0);

    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(targets.len() as u64));

    group.bench_function("harvest_fleet", |b| {
        b.iter(|| {
            let mut scanner = CloudflareScanner::new(world.clock(), "cloudflare");
            scanner.harvest_fleet(&mut world, &snapshot);
            scanner.fleet_size()
        });
    });

    let mut scanner = CloudflareScanner::new(world.clock(), "cloudflare");
    scanner.harvest_fleet(&mut world, &snapshot);

    group.bench_function("direct_scan_2k_sites", |b| {
        let mut week = 0;
        b.iter(|| {
            week += 1;
            scanner.scan(&mut world, &targets, week)
        });
    });

    let raw = scanner.scan(&mut world, &targets, 0);
    group.bench_function("filter_pipeline", |b| {
        let mut pipeline = FilterPipeline::new(world.clock(), Region::Ashburn, SCANNER_SOURCE);
        b.iter(|| pipeline.run(&mut world, ProviderId::Cloudflare, 0, &raw, &targets));
    });

    // The daily collection round under each mode, steady state: the world
    // does not change between rounds, so the delta round pays only the
    // generation probe plus the rotating 1-in-16 refresh stratum while the
    // full round re-resolves all 2k sites.
    let engine = ScanEngine::new(EngineConfig {
        workers: 1,
        shard_size: 64,
        seed: 3,
        ..EngineConfig::default()
    });
    group.bench_function("full_sweep_2k_sites", |b| {
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        b.iter(|| collector.collect_with(&engine, &world, &targets, 0));
    });
    group.bench_function("delta_sweep_2k_sites", |b| {
        let mut collector = DeltaCollector::new(world.clock(), Region::Ashburn, 3);
        let _ = collector.collect_with(&engine, &world, &targets, 0); // cold round warms the cache
        b.iter(|| collector.collect_with(&engine, &world, &targets, 0));
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
