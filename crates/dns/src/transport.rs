//! Transport abstraction: how DNS queries reach servers.
//!
//! The resolver and the measurement toolkit never hold references to
//! servers; they send queries through a [`DnsTransport`], which the
//! simulated Internet implements (routing to the registry, provider
//! nameserver fleets through their anycast maps, and self-hosted
//! authoritative servers). [`StaticTransport`] is a simple implementation
//! for unit tests and examples, with failure injection.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use remnant_net::Region;
use remnant_sim::SimTime;

use crate::authority::Authoritative;
use crate::message::{Query, Response};
use crate::registry::Registry;

/// The well-known anycast address of the delegation registry (root/TLD
/// layer) in every simulation, mirroring `a.root-servers.net`.
pub const ROOT_SERVER: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);

/// Delivers DNS queries to servers by IP address.
pub trait DnsTransport {
    /// The registry (root) address queries should start from.
    fn root(&self) -> Ipv4Addr {
        ROOT_SERVER
    }

    /// Sends `query` to `server`, entering the network at `region`, at
    /// virtual time `now`. `None` models a dropped or ignored query.
    fn query(
        &mut self,
        now: SimTime,
        server: Ipv4Addr,
        region: Region,
        query: &Query,
    ) -> Option<Response>;
}

/// A transport over a fixed set of servers, for tests and examples.
///
/// The registry answers at [`ROOT_SERVER`]; additional authoritative servers
/// are registered per IP. Addresses can be marked unreachable to inject
/// failures.
pub struct StaticTransport {
    registry: Registry,
    servers: HashMap<Ipv4Addr, Box<dyn Authoritative>>,
    unreachable: HashSet<Ipv4Addr>,
    queries_sent: u64,
}

impl StaticTransport {
    /// Creates a transport with `registry` at [`ROOT_SERVER`].
    pub fn new(registry: Registry) -> Self {
        StaticTransport {
            registry,
            servers: HashMap::new(),
            unreachable: HashSet::new(),
            queries_sent: 0,
        }
    }

    /// Registers an authoritative server at `addr`.
    pub fn add_server(&mut self, addr: Ipv4Addr, server: impl Authoritative + 'static) {
        self.servers.insert(addr, Box::new(server));
    }

    /// Marks `addr` unreachable: queries to it are dropped.
    pub fn set_unreachable(&mut self, addr: Ipv4Addr) {
        self.unreachable.insert(addr);
    }

    /// Makes `addr` reachable again.
    pub fn set_reachable(&mut self, addr: Ipv4Addr) {
        self.unreachable.remove(&addr);
    }

    /// Mutable access to the registry, for re-delegations mid-test.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Shared access to the registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Total queries that reached some server (including the registry).
    pub fn queries_sent(&self) -> u64 {
        self.queries_sent
    }
}

impl std::fmt::Debug for StaticTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticTransport")
            .field("servers", &self.servers.len())
            .field("unreachable", &self.unreachable.len())
            .field("queries_sent", &self.queries_sent)
            .finish()
    }
}

impl DnsTransport for StaticTransport {
    fn query(
        &mut self,
        now: SimTime,
        server: Ipv4Addr,
        _region: Region,
        query: &Query,
    ) -> Option<Response> {
        if self.unreachable.contains(&server) {
            return None;
        }
        self.queries_sent += 1;
        if server == ROOT_SERVER {
            return self.registry.answer(now, query);
        }
        self.servers.get_mut(&server)?.answer(now, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::ZoneServer;
    use crate::message::Rcode;
    use crate::name::DomainName;
    use crate::record::{RecordData, RecordType, ResourceRecord, Ttl};
    use crate::zone::Zone;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    fn transport() -> StaticTransport {
        let mut registry = Registry::new();
        registry.delegate(
            name("example.com"),
            vec![(name("ns1.host.net"), Ipv4Addr::new(10, 0, 0, 53))],
        );
        let mut zone = Zone::new(name("example.com"));
        zone.add(ResourceRecord::new(
            name("www.example.com"),
            Ttl::secs(300),
            RecordData::A(Ipv4Addr::new(203, 0, 113, 1)),
        ));
        let mut t = StaticTransport::new(registry);
        t.add_server(Ipv4Addr::new(10, 0, 0, 53), ZoneServer::new(vec![zone]));
        t
    }

    #[test]
    fn routes_root_to_registry() {
        let mut t = transport();
        let resp = t
            .query(
                SimTime::EPOCH,
                ROOT_SERVER,
                Region::Oregon,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .unwrap();
        assert!(resp.is_referral());
    }

    #[test]
    fn routes_to_registered_server() {
        let mut t = transport();
        let resp = t
            .query(
                SimTime::EPOCH,
                Ipv4Addr::new(10, 0, 0, 53),
                Region::Oregon,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .unwrap();
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.answer_addresses().len(), 1);
    }

    #[test]
    fn unknown_address_drops() {
        let mut t = transport();
        assert!(t
            .query(
                SimTime::EPOCH,
                Ipv4Addr::new(9, 9, 9, 9),
                Region::Oregon,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .is_none());
    }

    #[test]
    fn unreachable_injection() {
        let mut t = transport();
        let addr = Ipv4Addr::new(10, 0, 0, 53);
        t.set_unreachable(addr);
        assert!(t
            .query(
                SimTime::EPOCH,
                addr,
                Region::Oregon,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .is_none());
        t.set_reachable(addr);
        assert!(t
            .query(
                SimTime::EPOCH,
                addr,
                Region::Oregon,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .is_some());
    }

    #[test]
    fn counts_delivered_queries() {
        let mut t = transport();
        let q = Query::new(name("www.example.com"), RecordType::A);
        t.set_unreachable(Ipv4Addr::new(10, 0, 0, 53));
        let _ = t.query(SimTime::EPOCH, Ipv4Addr::new(10, 0, 0, 53), Region::Oregon, &q);
        let _ = t.query(SimTime::EPOCH, ROOT_SERVER, Region::Oregon, &q);
        assert_eq!(t.queries_sent(), 1);
    }
}
