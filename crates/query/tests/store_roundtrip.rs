//! The store's core contract, end to end: a spill directory left behind
//! by a campaign reopens into the exact snapshot sequence the campaign
//! produced (byte-identical in the binary codec), query plans over the
//! store reproduce the live study's reports, and a damaged directory
//! fails with a typed error naming the missing round.

use std::path::PathBuf;

use remnant_core::study::{CollectionMode, PaperStudy, StudyConfig, StudyReport};
use remnant_core::{DnsSnapshot, SpillConfig};
use remnant_query::{
    PassesPlan, QueryPlan, RecordClass, RoundKind, SnapshotStore, StoreError,
    UnchangedCandidatesPlan,
};
use remnant_world::{World, WorldConfig};

const POPULATION: usize = 1_200;
const WEEKS: u32 = 2;
const SEED: u64 = 23;

/// Runs one campaign, capturing every daily snapshot. With a tag, rounds
/// spill to a fresh temp directory whose path is returned.
fn run_campaign(
    mode: CollectionMode,
    workers: usize,
    spill_tag: Option<&str>,
) -> (Vec<DnsSnapshot>, StudyReport, Option<PathBuf>) {
    let mut config = StudyConfig::builder()
        .weeks(WEEKS)
        .seed(SEED)
        .workers(workers)
        .collection_mode(mode);
    let mut dir = None;
    if let Some(tag) = spill_tag {
        let path = std::env::temp_dir().join(format!("remnant-query-{tag}"));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("temp spill dir");
        config = config.spill(SpillConfig {
            resident_shards: 2,
            ..SpillConfig::new(&path)
        });
        dir = Some(path);
    }
    let config = config.build().expect("valid study config");
    let mut world = World::generate(WorldConfig::new(POPULATION, SEED));
    let mut snapshots = Vec::new();
    let report = PaperStudy::new(config).run_with(&mut world, |snapshot| {
        snapshots.push(snapshot.clone());
    });
    (snapshots, report, dir)
}

fn campaign_targets() -> Vec<remnant_core::collector::Target> {
    let world = World::generate(WorldConfig::new(POPULATION, SEED));
    world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect()
}

#[test]
fn full_spill_campaign_reopens_byte_identically() {
    let (snapshots, _, dir) = run_campaign(CollectionMode::Full, 2, Some("full-roundtrip"));
    let dir = dir.unwrap();
    let store = SnapshotStore::open(&dir).expect("store opens");

    assert_eq!(store.len(), snapshots.len());
    assert_eq!(store.sites(), POPULATION);
    for (i, live) in snapshots.iter().enumerate() {
        let meta = store.meta(i);
        assert_eq!(meta.round, i as u64);
        assert_eq!(meta.day, live.day);
        assert_eq!(meta.kind, RoundKind::Full);
        assert_eq!(meta.taken_at, live.taken_at);
        // Every reconstructed round, byte for byte.
        assert_eq!(
            store.snapshot(i).encode_binary(),
            live.encode_binary(),
            "round {i} must reopen byte-identically"
        );
        // A full round's chain points at exactly its own file.
        assert_eq!(store.chain_depth(i), 1);
    }
}

#[test]
fn delta_spill_campaign_reopens_byte_identically_and_shares_structure() {
    let (snapshots, _, dir) = run_campaign(CollectionMode::Delta, 2, Some("delta-roundtrip"));
    let dir = dir.unwrap();
    let store = SnapshotStore::open(&dir).expect("store opens");

    assert_eq!(store.len(), snapshots.len());
    for (i, live) in snapshots.iter().enumerate() {
        assert_eq!(store.meta(i).kind, RoundKind::Delta);
        assert_eq!(
            store.snapshot(i).encode_binary(),
            live.encode_binary(),
            "round {i} must reopen byte-identically"
        );
    }

    // Generation diffs: the first round is all-dirty (nothing to chain
    // from), and at least one later round chains clean shards from
    // earlier files — the structural sharing the delta writer promises.
    let diffs = store.query().generation_diff();
    assert_eq!(diffs[0].dirty as u32, store.shard_count());
    assert_eq!(diffs[0].clean, 0);
    assert!(
        diffs[1..].iter().any(|d| d.clean > 0),
        "some later round should chain clean shards"
    );
    let deepest = (0..store.len())
        .map(|i| store.chain_depth(i))
        .max()
        .unwrap();
    assert!(
        deepest > 1,
        "a delta round's chain should span multiple files"
    );
}

#[test]
fn passes_plan_reproduces_the_live_reports() {
    let (snapshots, report, dir) = run_campaign(CollectionMode::Delta, 2, Some("plan-equiv"));

    // From disk.
    let store = SnapshotStore::open(dir.unwrap()).expect("store opens");
    let aggregates = PassesPlan.execute(&store);
    assert_eq!(&aggregates.adoption, report.adoption());
    assert_eq!(
        format!("{:?}", aggregates.behaviors),
        format!("{:?}", report.behaviors())
    );
    assert_eq!(
        format!("{:?}", aggregates.pauses),
        format!("{:?}", report.pauses())
    );

    // From memory: the same plan over resident snapshots.
    let resident = SnapshotStore::in_memory(snapshots).expect("in-memory store");
    let from_memory = PassesPlan.execute(&resident);
    assert_eq!(&from_memory.adoption, report.adoption());
    assert_eq!(
        format!("{:?}", from_memory.behaviors),
        format!("{:?}", aggregates.behaviors)
    );
}

#[test]
fn unchanged_candidates_plan_matches_the_live_tally() {
    let (_, report, dir) = run_campaign(CollectionMode::Full, 2, Some("unchanged-plan"));
    let store = SnapshotStore::open(dir.unwrap()).expect("store opens");
    let plan = UnchangedCandidatesPlan {
        targets: campaign_targets(),
    };
    let candidates = plan.execute(&store);
    // The live study verified exactly one candidate per event it tallied.
    let live_events: u64 = report.unchanged().rows.iter().map(|row| row.1).sum();
    assert_eq!(candidates.len() as u64, live_events);
}

#[test]
fn filters_and_projections_are_consistent() {
    let (_, _, dir) = run_campaign(CollectionMode::Full, 2, Some("filters"));
    let store = SnapshotStore::open(dir.unwrap()).expect("store opens");

    assert_eq!(store.query().len(), 14);
    assert_eq!(store.query().week(0).len(), 7);
    assert_eq!(store.query().week(1).len(), 7);
    assert_eq!(store.query().days(0..=2).len(), 3);
    assert_eq!(store.query().rounds(13..).len(), 1);
    assert!(store.query().weeks(2..).is_empty());

    let ns = store.query().week(0).project(RecordClass::Ns);
    assert!(ns.total > 0);
    assert_eq!(ns.per_round.points().len(), 7);
    assert_eq!(ns.per_site.len(), 7 * POPULATION);

    // Projections split cleanly across disjoint filters.
    let all = store.query().project(RecordClass::A);
    let w0 = store.query().week(0).project(RecordClass::A);
    let w1 = store.query().week(1).project(RecordClass::A);
    assert_eq!(all.total, w0.total + w1.total);

    // Joined pairs: one fewer than the rounds selected.
    assert_eq!(store.query().joined().count(), 13);

    // Adoption folds: the all-provider count dominates any single one.
    let classified = store.query().classified();
    assert!(classified.adopted_final > 0);
    let cf = store
        .query()
        .provider(remnant_provider::ProviderId::Cloudflare);
    assert!(cf.adopted_final <= classified.adopted_final);
}

#[test]
fn missing_round_is_a_typed_error() {
    let (_, _, dir) = run_campaign(CollectionMode::Full, 1, Some("missing-round"));
    let dir = dir.unwrap();

    // Punch a hole in the middle: an interrupted-run directory.
    std::fs::remove_file(dir.join("full-r00003.rsnb")).expect("round file exists");
    match SnapshotStore::open(&dir) {
        Err(StoreError::MissingRound { round }) => assert_eq!(round, 3),
        other => panic!("expected MissingRound, got {other:?}"),
    }

    // Lose the head: every chain is orphaned.
    std::fs::remove_file(dir.join("full-r00000.rsnb")).expect("round file exists");
    match SnapshotStore::open(&dir) {
        Err(StoreError::MissingRound { round }) => assert_eq!(round, 0),
        other => panic!("expected MissingRound, got {other:?}"),
    }
}

#[test]
fn duplicate_round_is_a_typed_error() {
    let (_, _, dir) = run_campaign(CollectionMode::Full, 1, Some("dup-round"));
    let dir = dir.unwrap();
    // A full and a delta file claiming the same round: the mixed leftovers
    // of a restarted campaign.
    std::fs::copy(dir.join("full-r00002.rsnb"), dir.join("delta-r00002.rsnb"))
        .expect("copy round file");
    match SnapshotStore::open(&dir) {
        Err(StoreError::DuplicateRound { round }) => assert_eq!(round, 2),
        other => panic!("expected DuplicateRound, got {other:?}"),
    }
}

#[test]
fn unrelated_files_are_ignored_and_empty_dirs_are_typed() {
    let empty = std::env::temp_dir().join("remnant-query-empty");
    let _ = std::fs::remove_dir_all(&empty);
    std::fs::create_dir_all(&empty).expect("temp dir");
    assert!(matches!(
        SnapshotStore::open(&empty),
        Err(StoreError::NoRounds)
    ));
    // Non-round files don't count as rounds.
    std::fs::write(empty.join("README.txt"), b"not a round").unwrap();
    std::fs::write(empty.join("full-rxyz.rsnb"), b"not a round").unwrap();
    assert!(matches!(
        SnapshotStore::open(&empty),
        Err(StoreError::NoRounds)
    ));
}
