//! Token-bucket rate limiter shared across workers.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::config::RateLimit;

/// A blocking token bucket.
///
/// Tokens refill continuously at `per_second` up to `burst`. [`acquire`]
/// takes one token, sleeping until one is available. The bucket is shared
/// by reference across every worker of a sweep, so the limit is global,
/// not per-thread.
///
/// Rate limiting runs on *real* time (the virtual [`SimClock`] never
/// blocks), so it only affects wall-clock pacing — never the merged
/// output, which stays deterministic.
///
/// [`acquire`]: TokenBucket::acquire
/// [`SimClock`]: https://docs.rs/remnant-sim
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    per_second: f64,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    refilled_at: Instant,
}

impl TokenBucket {
    /// Builds a bucket from a [`RateLimit`], starting full.
    pub fn new(limit: RateLimit) -> Self {
        let capacity = f64::from(limit.burst.max(1));
        TokenBucket {
            capacity,
            per_second: limit.per_second.max(f64::MIN_POSITIVE),
            state: Mutex::new(BucketState {
                tokens: capacity,
                refilled_at: Instant::now(),
            }),
        }
    }

    /// Takes one token, blocking the calling worker until one refills.
    pub fn acquire(&self) {
        loop {
            let wait = {
                let mut state = self.state.lock().expect("rate limiter poisoned");
                let now = Instant::now();
                let elapsed = now.duration_since(state.refilled_at).as_secs_f64();
                state.tokens = (state.tokens + elapsed * self.per_second).min(self.capacity);
                state.refilled_at = now;
                if state.tokens >= 1.0 {
                    state.tokens -= 1.0;
                    return;
                }
                (1.0 - state.tokens) / self.per_second
            };
            std::thread::sleep(Duration::from_secs_f64(wait));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_tokens_do_not_block() {
        let bucket = TokenBucket::new(RateLimit {
            per_second: 1.0,
            burst: 8,
        });
        let started = Instant::now();
        for _ in 0..8 {
            bucket.acquire();
        }
        assert!(started.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let bucket = TokenBucket::new(RateLimit {
            per_second: 200.0,
            burst: 1,
        });
        let started = Instant::now();
        // First token is free (bucket starts full); the next four refill
        // at 5 ms apiece.
        for _ in 0..5 {
            bucket.acquire();
        }
        assert!(started.elapsed() >= Duration::from_millis(18));
    }
}
