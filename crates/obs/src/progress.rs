//! Bounded progress streaming for long-running campaigns.
//!
//! A session that takes hours cannot wait until the end to say how it is
//! doing. This module is the plumbing half of the answer: a bounded
//! single-producer channel a running study pushes per-round progress
//! payloads into, and a consumer (the multi-tenant service, a CLI
//! progress line) drains. The payload type is the consumer's choice —
//! `remnant-core` streams its `RoundProgress`, which carries this crate's
//! [`ObsReport`](crate::ObsReport) snapshot.
//!
//! Two properties matter for determinism and robustness:
//!
//! * **Bounded**: a slow consumer applies backpressure instead of letting
//!   the producer queue unbounded memory. Capacity is small; progress is
//!   a telemetry stream, not a data plane.
//! * **Detached consumers don't kill producers**: when the receiver is
//!   dropped, [`ProgressSender::send`] reports the event but the study
//!   keeps running — progress is observability, never control flow.

use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};

/// Default channel capacity: a handful of rounds of backlog.
pub const DEFAULT_PROGRESS_CAPACITY: usize = 8;

/// Creates a bounded progress channel with room for `capacity` in-flight
/// payloads (at least 1).
pub fn progress_channel<T>(capacity: usize) -> (ProgressSender<T>, ProgressReceiver<T>) {
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
    (ProgressSender { tx }, ProgressReceiver { rx })
}

/// The producing end: owned by a running session.
#[derive(Clone, Debug)]
pub struct ProgressSender<T> {
    tx: SyncSender<T>,
}

impl<T> ProgressSender<T> {
    /// Delivers one progress payload, blocking while the channel is full
    /// (backpressure). Returns `false` — and discards the payload — when
    /// the receiver is gone; the producer should keep working either way.
    pub fn send(&self, payload: T) -> bool {
        self.tx.send(payload).is_ok()
    }
}

/// Outcome of a non-blocking [`ProgressReceiver::try_recv`] poll.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgressPoll<T> {
    /// A payload was waiting.
    Payload(T),
    /// Nothing queued right now, but senders are still alive.
    Empty,
    /// Every sender is dropped and the backlog is drained.
    Finished,
}

/// The consuming end: owned by the service or CLI driving the session.
#[derive(Debug)]
pub struct ProgressReceiver<T> {
    rx: Receiver<T>,
}

impl<T> ProgressReceiver<T> {
    /// Blocks for the next payload; `None` once every sender is dropped
    /// and the backlog is drained (the session is over).
    pub fn recv(&self) -> Option<T> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll distinguishing "nothing yet" from "stream over".
    pub fn try_recv(&self) -> ProgressPoll<T> {
        match self.rx.try_recv() {
            Ok(payload) => ProgressPoll::Payload(payload),
            Err(TryRecvError::Empty) => ProgressPoll::Empty,
            Err(TryRecvError::Disconnected) => ProgressPoll::Finished,
        }
    }

    /// Blocking iterator over the remaining payloads.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(|| self.recv())
    }
}

impl<T> IntoIterator for ProgressReceiver<T> {
    type Item = T;
    type IntoIter = std::sync::mpsc::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.rx.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_arrive_in_order() {
        let (tx, rx) = progress_channel(4);
        for round in 0..4u32 {
            assert!(tx.send(round));
        }
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, [0, 1, 2, 3]);
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = progress_channel(1);
        let producer = std::thread::spawn(move || {
            // Second send blocks until the consumer drains the first.
            for round in 0..10u32 {
                tx.send(round);
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn dropped_receiver_does_not_stop_the_producer() {
        let (tx, rx) = progress_channel(2);
        drop(rx);
        assert!(!tx.send(1u32), "send reports the detached consumer");
        assert!(!tx.send(2u32), "and keeps not panicking");
    }

    #[test]
    fn try_recv_distinguishes_empty_from_finished() {
        let (tx, rx) = progress_channel(2);
        assert_eq!(rx.try_recv(), ProgressPoll::Empty);
        tx.send(7u32);
        assert_eq!(rx.try_recv(), ProgressPoll::Payload(7));
        drop(tx);
        assert_eq!(rx.try_recv(), ProgressPoll::Finished);
    }
}
