//! Plain-text rendering of tables, series and CDFs for the reproduction
//! harness (`repro` prints the paper's tables and figures through these).

use std::fmt::Write as _;

use remnant_sim::stats::{Ecdf, Series};

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use remnant_core::report::TextTable;
///
/// let mut table = TextTable::new(["Provider", "Hidden", "Verified"]);
/// table.row(["Cloudflare", "3504", "24.8%"]);
/// let rendered = table.to_string();
/// assert!(rendered.contains("Cloudflare"));
/// assert!(rendered.lines().count() >= 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (short rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    f.write_str("  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as `12.3%`.
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Renders an empirical CDF sampled at integer day marks 1..=`max_days`.
pub fn render_cdf(label: &str, cdf: &Ecdf, max_days: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "CDF: {label} ({} samples)", cdf.len());
    for day in 1..=max_days {
        let fraction = cdf.fraction_le(day as f64);
        let bar = "#".repeat((fraction * 40.0).round() as usize);
        let _ = writeln!(out, "  <= {day:>2}d  {:>6}  {bar}", percent(fraction));
    }
    out
}

/// Renders an (x, y) series as `x: y` lines with a bar proportional to the
/// series maximum.
pub fn render_series(series: &Series) -> String {
    let mut out = String::new();
    let max = series.max_y().unwrap_or(0.0).max(1.0);
    let _ = writeln!(
        out,
        "Series: {} (mean {:.1})",
        series.label(),
        series.mean_y().unwrap_or(0.0)
    );
    for (x, y) in series.points() {
        let bar = "#".repeat(((y / max) * 40.0).round() as usize);
        let _ = writeln!(out, "  {x:>5.0}  {y:>8.1}  {bar}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_padding() {
        let mut t = TextTable::new(["A", "LongHeader"]);
        t.row(["xxxx"]); // short row padded
        t.row(["y", "z"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("LongHeader"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.248), "24.8%");
        assert_eq!(percent(0.0), "0.0%");
        assert_eq!(percent(1.0), "100.0%");
    }

    #[test]
    fn cdf_rendering_is_monotone() {
        let cdf: Ecdf = [1.0, 2.0, 6.0].into_iter().collect();
        let out = render_cdf("pauses", &cdf, 7);
        assert!(out.contains("3 samples"));
        assert_eq!(out.lines().count(), 8);
    }

    #[test]
    fn series_rendering() {
        let mut s = Series::new("JOIN");
        s.push(1.0, 100.0);
        s.push(2.0, 200.0);
        let out = render_series(&s);
        assert!(out.contains("JOIN"));
        assert!(out.contains("mean 150.0"));
    }

    #[test]
    fn empty_series_renders() {
        let out = render_series(&Series::new("empty"));
        assert!(out.contains("empty"));
    }
}
