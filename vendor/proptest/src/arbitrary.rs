//! `any::<T>()` support for primitive types.

use std::fmt;
use std::marker::PhantomData;

use rand::{Rng as _, RngCore as _};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A> fmt::Debug for Any<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("any")
    }
}

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// A strategy over the full domain of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1.0e9..1.0e9)
    }
}
