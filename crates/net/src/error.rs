//! Error type for the network substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the network substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A CIDR string could not be parsed.
    ParseCidr(String),
    /// An ASN string could not be parsed.
    ParseAsn(String),
    /// A prefix length exceeded 32 bits.
    PrefixLength(u8),
    /// An allocator ran out of addresses.
    PoolExhausted {
        /// Label of the exhausted pool.
        pool: String,
    },
    /// An anycast IP has no PoP serving the querying region and no default.
    NoCatchment {
        /// The region the query originated from.
        region: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::ParseCidr(s) => write!(f, "invalid CIDR block syntax: {s:?}"),
            NetError::ParseAsn(s) => write!(f, "invalid AS number syntax: {s:?}"),
            NetError::PrefixLength(len) => write!(f, "prefix length {len} exceeds 32"),
            NetError::PoolExhausted { pool } => write!(f, "address pool {pool:?} is exhausted"),
            NetError::NoCatchment { region } => {
                write!(f, "no anycast catchment serves region {region}")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            NetError::ParseCidr("x".into()),
            NetError::ParseAsn("y".into()),
            NetError::PrefixLength(40),
            NetError::PoolExhausted {
                pool: "edge".into(),
            },
            NetError::NoCatchment {
                region: "Oregon".into(),
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<NetError>();
    }
}
