//! A transport adapter that pushes every exchange through the codec.
//!
//! [`WireTransport`] wraps any existing transport and round-trips both
//! directions of every query over encoded frames: the typed [`Query`] is
//! encoded, re-parsed, forwarded to the inner transport, and the typed
//! [`Response`] comes back the same way. Nothing about resolution logic
//! changes — which is the point. Driving the recursive resolver and the
//! record collector through a `WireTransport` must produce byte-identical
//! snapshots to the in-process path (the `wire_equivalence` differential
//! test), so any lossy corner of the codec shows up as a visible diff
//! instead of a silent measurement skew.
//!
//! Transaction IDs are derived deterministically from the query (FNV over
//! name and type), keeping the wire path free of ambient randomness: the
//! same sweep produces the same frames at any worker count.

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

use remnant_dns::{DnsTransport, Query, QueryStats, Response, ShardableTransport};
use remnant_net::Region;
use remnant_obs::{transport_counters, Instrumented, MetricKey};
use remnant_sim::SimTime;

use crate::message::Message;

/// Counter name for frames successfully encoded by the wire layer.
pub const WIRE_FRAMES_ENCODED: &str = "wire.frames_encoded";
/// Counter name for frames successfully decoded by the wire layer.
pub const WIRE_FRAMES_DECODED: &str = "wire.frames_decoded";
/// Counter name for codec failures observed on the wire path.
pub const WIRE_CODEC_ERRORS: &str = "wire.codec_errors";

/// Deterministic transaction ID for a query (FNV-1a over name and type).
pub fn query_id(query: &Query) -> u16 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in query.name.as_str().as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= u64::from(crate::types::rtype_to_wire(query.rtype).unwrap_or(0));
    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    (hash ^ (hash >> 32) ^ (hash >> 16)) as u16
}

/// A [`DnsTransport`] / [`ShardableTransport`] that serializes every
/// query and response through the RFC 1035 codec before and after the
/// inner transport.
///
/// Counters use interior mutability so the shared (`query_shared`) path
/// stays `&self`; totals are deterministic because the set of exchanges
/// is, even though per-worker interleaving is not.
#[derive(Debug)]
pub struct WireTransport<T> {
    inner: T,
    sent: AtomicU64,
    answered: AtomicU64,
    encoded: AtomicU64,
    decoded: AtomicU64,
    codec_errors: AtomicU64,
}

impl<T> WireTransport<T> {
    /// Wraps `inner`, starting all counters at zero.
    pub fn new(inner: T) -> Self {
        WireTransport {
            inner,
            sent: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            encoded: AtomicU64::new(0),
            decoded: AtomicU64::new(0),
            codec_errors: AtomicU64::new(0),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Frames encoded, decoded, and codec failures, in that order.
    pub fn codec_stats(&self) -> (u64, u64, u64) {
        (
            self.encoded.load(Ordering::Relaxed),
            self.decoded.load(Ordering::Relaxed),
            self.codec_errors.load(Ordering::Relaxed),
        )
    }

    /// Encodes `query` to wire form and parses it back, recording codec
    /// counters. `None` models a frame the codec could not produce or
    /// re-read (the query is then dropped, like a lost datagram).
    fn through_wire_query(&self, query: &Query) -> Option<Query> {
        let frame = match Message::query(query_id(query), query).encode() {
            Ok(frame) => frame,
            Err(_) => {
                self.codec_errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        self.encoded.fetch_add(1, Ordering::Relaxed);
        match Message::decode(&frame) {
            Ok(message) => {
                self.decoded.fetch_add(1, Ordering::Relaxed);
                message.question
            }
            Err(_) => {
                self.codec_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Round-trips a response the same way.
    fn through_wire_response(&self, id: u16, response: &Response) -> Option<Response> {
        let frame = match Message::response(id, response).encode() {
            Ok(frame) => frame,
            Err(_) => {
                self.codec_errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        self.encoded.fetch_add(1, Ordering::Relaxed);
        match Message::decode(&frame) {
            Ok(message) => {
                self.decoded.fetch_add(1, Ordering::Relaxed);
                message.to_response()
            }
            Err(_) => {
                self.codec_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn stats(&self) -> QueryStats {
        QueryStats {
            sent: self.sent.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
        }
    }
}

impl<T: ShardableTransport> WireTransport<T> {
    fn exchange_shared(
        &self,
        now: SimTime,
        server: Ipv4Addr,
        region: Region,
        query: &Query,
    ) -> Option<Response> {
        self.sent.fetch_add(1, Ordering::Relaxed);
        let parsed = self.through_wire_query(query)?;
        let response = self.inner.query_shared(now, server, region, &parsed)?;
        let delivered = self.through_wire_response(query_id(query), &response)?;
        self.answered.fetch_add(1, Ordering::Relaxed);
        Some(delivered)
    }
}

impl<T: ShardableTransport> ShardableTransport for WireTransport<T> {
    fn root(&self) -> Ipv4Addr {
        self.inner.root()
    }

    fn query_shared(
        &self,
        now: SimTime,
        server: Ipv4Addr,
        region: Region,
        query: &Query,
    ) -> Option<Response> {
        self.exchange_shared(now, server, region, query)
    }

    fn query_stats(&self) -> QueryStats {
        self.stats()
    }
}

impl<T: ShardableTransport> DnsTransport for WireTransport<T> {
    fn root(&self) -> Ipv4Addr {
        self.inner.root()
    }

    fn query(
        &mut self,
        now: SimTime,
        server: Ipv4Addr,
        region: Region,
        query: &Query,
    ) -> Option<Response> {
        self.exchange_shared(now, server, region, query)
    }

    fn query_stats(&self) -> QueryStats {
        self.stats()
    }
}

impl<T> Instrumented for WireTransport<T> {
    fn component(&self) -> &'static str {
        "wire.transport"
    }

    fn counters(&self) -> Vec<(MetricKey, u64)> {
        let stats = self.stats();
        let mut counters = transport_counters(stats.sent, stats.answered);
        let (encoded, decoded, errors) = self.codec_stats();
        counters.push((MetricKey::named(WIRE_FRAMES_ENCODED), encoded));
        counters.push((MetricKey::named(WIRE_FRAMES_DECODED), decoded));
        counters.push((MetricKey::named(WIRE_CODEC_ERRORS), errors));
        counters
    }
}

#[cfg(test)]
mod tests {
    use remnant_dns::transport::ROOT_SERVER;
    use remnant_dns::{DomainName, Rcode, RecordType};

    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    /// Answers every query at the root with an empty NOERROR.
    struct EchoTransport;

    impl ShardableTransport for EchoTransport {
        fn query_shared(
            &self,
            _now: SimTime,
            server: Ipv4Addr,
            _region: Region,
            query: &Query,
        ) -> Option<Response> {
            (server == ROOT_SERVER).then(|| Response::empty(query.clone(), Rcode::NoError))
        }
    }

    #[test]
    fn exchanges_pass_through_unchanged() {
        let transport = WireTransport::new(EchoTransport);
        let query = Query::new(name("www.example.com"), RecordType::A);
        let response = transport
            .query_shared(SimTime::EPOCH, ROOT_SERVER, Region::Oregon, &query)
            .expect("answered");
        assert_eq!(response, Response::empty(query, Rcode::NoError));
    }

    #[test]
    fn drops_are_counted_not_answered() {
        let transport = WireTransport::new(EchoTransport);
        let query = Query::new(name("www.example.com"), RecordType::A);
        let off_root = Ipv4Addr::new(9, 9, 9, 9);
        assert!(transport
            .query_shared(SimTime::EPOCH, off_root, Region::Oregon, &query)
            .is_none());
        let _ = transport.query_shared(SimTime::EPOCH, ROOT_SERVER, Region::Oregon, &query);
        assert_eq!(
            ShardableTransport::query_stats(&transport),
            QueryStats {
                sent: 2,
                answered: 1
            }
        );
        // 1 query frame for the drop; query + response frames for the hit.
        assert_eq!(transport.codec_stats(), (3, 3, 0));
    }

    #[test]
    fn query_ids_are_deterministic_and_spread() {
        let a = Query::new(name("www.example.com"), RecordType::A);
        let a2 = Query::new(name("www.example.com"), RecordType::A);
        let ns = Query::new(name("www.example.com"), RecordType::Ns);
        let other = Query::new(name("www.example.org"), RecordType::A);
        assert_eq!(query_id(&a), query_id(&a2));
        assert_ne!(query_id(&a), query_id(&ns));
        assert_ne!(query_id(&a), query_id(&other));
    }

    #[test]
    fn exports_wire_counters() {
        let transport = WireTransport::new(EchoTransport);
        let query = Query::new(name("www.example.com"), RecordType::A);
        let _ = transport.query_shared(SimTime::EPOCH, ROOT_SERVER, Region::Oregon, &query);
        let mut registry = remnant_obs::MetricsRegistry::new();
        transport.export_into(&mut registry);
        let label = [("component", "wire.transport")];
        assert_eq!(registry.counter_labeled("transport.sent", &label), 1);
        assert_eq!(registry.counter_labeled(WIRE_FRAMES_ENCODED, &label), 2);
        assert_eq!(registry.counter_labeled(WIRE_FRAMES_DECODED, &label), 2);
        assert_eq!(registry.counter_labeled(WIRE_CODEC_ERRORS, &label), 0);
    }

    #[test]
    fn works_behind_shared_reference() {
        // &WireTransport<&T> is the shape the sweep engine uses.
        let shared = EchoTransport;
        let transport = WireTransport::new(&shared);
        let view: &WireTransport<&EchoTransport> = &transport;
        let query = Query::new(name("www.example.com"), RecordType::A);
        assert!(view
            .query_shared(SimTime::EPOCH, ROOT_SERVER, Region::Oregon, &query)
            .is_some());
    }
}
