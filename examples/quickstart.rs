//! Quickstart: generate a synthetic Internet, run a short version of the
//! paper's full measurement campaign, and print the headline numbers.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use remnant::core::report::percent;
use remnant::core::study::{PaperStudy, StudyConfig};
use remnant::world::{BehaviorKind, World, WorldConfig};

fn main() {
    // 20k websites, calibrated to the paper's published statistics, with
    // enough warmup that residual pools reach steady state.
    let mut world = World::generate(WorldConfig::new(20_000, 42));
    println!(
        "world: {} sites, {} DNS queries served during generation",
        world.population(),
        world.traffic_stats().0
    );

    // Two weeks of daily collection + weekly residual scans.
    let study = PaperStudy::new(StudyConfig {
        weeks: 2,
        ..StudyConfig::default()
    });
    let report = study.run(&mut world);

    println!("\n== DPS adoption (Sec IV-B, Fig 2) ==");
    println!(
        "overall {} | top-band {} | growth {} -> {}",
        percent(report.adoption().overall_rate),
        percent(report.adoption().top_band_rate),
        percent(report.adoption().first_day_rate),
        percent(report.adoption().last_day_rate),
    );

    println!("\n== Usage behaviors per day (Fig 3) ==");
    for kind in BehaviorKind::ALL {
        println!(
            "  {kind:<7} {:>7.1}",
            report.behaviors().daily_average(kind)
        );
    }
    println!(
        "  FSM violations (Fig 4 check): {}",
        report.behaviors().fsm_violations
    );

    println!("\n== Pause windows (Fig 5) ==");
    println!(
        "  {} completed pauses; >5 days: {}",
        report.pauses().overall.len(),
        percent(report.pauses().overall.fraction_gt(5.0)),
    );

    println!("\n== Origin IP unchanged after JOIN/RESUME (Table V) ==");
    let total = report.unchanged().total;
    println!(
        "  {} events, {} unchanged ({})",
        total.events,
        total.unchanged,
        percent(total.rate().unwrap_or(0.0)),
    );

    println!("\n== Residual resolution (Sec V, Table VI) ==");
    let cf = &report.residual().cloudflare.exposure;
    let inc = &report.residual().incapsula.exposure;
    println!(
        "  Cloudflare: fleet {} nameservers | hidden {} | verified origins {} ({})",
        report.residual().fleet_size,
        cf.total_hidden(),
        cf.total_verified(),
        percent(cf.total_verified_rate().unwrap_or(0.0)),
    );
    println!(
        "  Incapsula : tokens {} | hidden {} | verified origins {} ({})",
        report.residual().harvested_tokens,
        inc.total_hidden(),
        inc.total_verified(),
        percent(inc.total_verified_rate().unwrap_or(0.0)),
    );
}
