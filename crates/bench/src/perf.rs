//! Timing and JSON support for the machine-readable bench emitter
//! (`bench-json`), plus a faithful copy of the pre-interning name/cache
//! implementations so before/after microbench numbers come from one run on
//! one machine instead of cross-commit wall-clock comparisons.
//!
//! The vendored criterion stand-in only prints; it returns nothing. This
//! module is the measuring half the emitter needs: calibrated repeated
//! timing ([`measure`]) and a no-dependency JSON value type ([`Json`]) —
//! the workspace has no serde.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Per-iteration time budget used to pick the iteration count.
const CALIBRATION_TARGET: Duration = Duration::from_millis(20);

/// One benchmark's timing summary, in seconds per iteration.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Mean seconds per iteration across samples.
    pub mean_secs: f64,
    /// Fastest sample.
    pub min_secs: f64,
    /// Slowest sample.
    pub max_secs: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

impl Measurement {
    /// Derived rate for `elements` units processed per iteration.
    pub fn elems_per_sec(&self, elements: u64) -> f64 {
        if self.mean_secs > 0.0 {
            elements as f64 / self.mean_secs
        } else {
            f64::INFINITY
        }
    }

    /// The measurement as a JSON object (`mean_secs`/`min_secs`/
    /// `max_secs`/`elements`/`elems_per_sec`).
    pub fn to_json(&self, elements: u64) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("mean_secs".into(), Json::Num(self.mean_secs));
        obj.insert("min_secs".into(), Json::Num(self.min_secs));
        obj.insert("max_secs".into(), Json::Num(self.max_secs));
        obj.insert("elements".into(), Json::Num(elements as f64));
        obj.insert(
            "elems_per_sec".into(),
            Json::Num(self.elems_per_sec(elements)),
        );
        Json::Obj(obj)
    }
}

/// Times `routine` with the same calibration scheme as the vendored
/// criterion stand-in: grow the iteration count until one sample costs
/// ~20ms, then take `samples` timed samples.
pub fn measure(samples: usize, mut routine: impl FnMut()) -> Measurement {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        let elapsed = start.elapsed();
        if elapsed >= CALIBRATION_TARGET || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    let samples = samples.max(1);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        times.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    summarize(&times, samples, iters)
}

/// Times two routines with alternating samples, so drift over the run
/// (thermal, allocator state, cache pressure) lands on both sides equally.
/// Use this when the quantity of interest is the *ratio* between the two —
/// back-to-back [`measure`] calls attribute any mid-run slowdown entirely
/// to whichever routine ran second.
///
/// Iteration count is calibrated on `a` and shared; both routines get one
/// warmup pass before sampling starts.
pub fn measure_ab(
    samples: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (Measurement, Measurement) {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            a();
        }
        let elapsed = start.elapsed();
        if elapsed >= CALIBRATION_TARGET || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    b();

    let samples = samples.max(1);
    let mut times_a = Vec::with_capacity(samples);
    let mut times_b = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            a();
        }
        times_a.push(start.elapsed().as_secs_f64() / iters as f64);
        let start = Instant::now();
        for _ in 0..iters {
            b();
        }
        times_b.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    (
        summarize(&times_a, samples, iters),
        summarize(&times_b, samples, iters),
    )
}

/// Peak resident set size of this process in bytes, read from
/// `/proc/self/status` (`VmHWM`, the kernel's high-water mark).
///
/// Returns `None` on platforms without procfs or when the field is
/// missing, so callers degrade to wall-clock-only reporting instead of
/// failing. The value is monotone over the process lifetime — measure
/// each campaign mode in its own process to attribute peaks correctly.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Parses the `VmHWM: <n> kB` line out of a `/proc/<pid>/status` body.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let rest = status.lines().find_map(|l| l.strip_prefix("VmHWM:"))?;
    let kb: u64 = rest.trim().strip_suffix("kB")?.trim().parse().ok()?;
    Some(kb * 1024)
}

fn summarize(times: &[f64], samples: usize, iters: u64) -> Measurement {
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    Measurement {
        mean_secs: mean,
        min_secs: min,
        max_secs: max,
        samples,
        iters,
    }
}

/// A minimal JSON value (the workspace has no serde). Objects use a
/// `BTreeMap` so emitted documents are deterministically ordered.
#[derive(Clone, Debug)]
pub enum Json {
    /// A string value.
    Str(String),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience constructor for object literals.
    pub fn obj(entries: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Num(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n:.6e}");
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    Json::Str(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// The pre-interning `DomainName` and pre-sharing `ResolverCache`
/// behavior, preserved verbatim as the "before" side of the emitter's
/// microbenches.
pub mod legacy {
    use std::collections::HashMap;
    use std::net::Ipv4Addr;

    const MAX_NAME_LEN: usize = 253;
    const MAX_LABEL_LEN: usize = 63;

    /// The old owned-allocation name: one `String` plus one `Vec<u16>` per
    /// handle, deep-copied on every clone.
    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub struct LegacyName {
        name: String,
        label_starts: Vec<u16>,
    }

    impl LegacyName {
        /// The old parse: validate, lowercase, build label offsets.
        pub fn parse(s: &str) -> Option<LegacyName> {
            let trimmed = s.strip_suffix('.').unwrap_or(s);
            if trimmed.is_empty() || trimmed.len() > MAX_NAME_LEN {
                return None;
            }
            let lowered = trimmed.to_ascii_lowercase();
            let mut label_starts = Vec::new();
            let mut start = 0usize;
            for label in lowered.split('.') {
                if label.is_empty() || label.len() > MAX_LABEL_LEN {
                    return None;
                }
                if label.starts_with('-') || label.ends_with('-') {
                    return None;
                }
                if !label
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
                {
                    return None;
                }
                label_starts.push(start as u16);
                start += label.len() + 1;
            }
            Some(LegacyName {
                name: lowered,
                label_starts,
            })
        }

        /// The old suffix: substring allocation plus remapped offsets.
        pub fn suffix(&self, n: usize) -> Option<LegacyName> {
            if n == 0 || n > self.label_starts.len() {
                return None;
            }
            let idx = self.label_starts.len() - n;
            let start = usize::from(self.label_starts[idx]);
            Some(LegacyName {
                name: self.name[start..].to_string(),
                label_starts: self.label_starts[idx..]
                    .iter()
                    .map(|&s| s - start as u16)
                    .collect(),
            })
        }

        /// The old apex.
        pub fn apex(&self) -> LegacyName {
            self.suffix(2.min(self.label_starts.len())).expect("valid")
        }

        /// The presentation form.
        pub fn as_str(&self) -> &str {
            &self.name
        }
    }

    /// The old record shape: an owned name per record.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct LegacyRecord {
        /// Owner name (owned `String` allocation, as before interning).
        pub name: LegacyName,
        /// TTL seconds.
        pub ttl: u32,
        /// IPv4 payload (A records are the hot case).
        pub addr: Ipv4Addr,
    }

    /// The old cache-hit behavior: key clone + deep `Vec` clone per get.
    #[derive(Default)]
    pub struct LegacyCache {
        entries: HashMap<LegacyName, Vec<LegacyRecord>>,
    }

    impl LegacyCache {
        /// Stores `records` under `name`.
        pub fn insert(&mut self, name: LegacyName, records: Vec<LegacyRecord>) {
            self.entries.insert(name, records);
        }

        /// The old hit path: clone the key to probe, deep-clone the records
        /// to return.
        pub fn get(&self, name: &LegacyName) -> Option<Vec<LegacyRecord>> {
            self.entries.get(name).cloned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_positive_times() {
        let m = measure(3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(m.mean_secs > 0.0);
        assert!(m.min_secs <= m.mean_secs && m.mean_secs <= m.max_secs);
        assert!(m.elems_per_sec(100) > 0.0);
    }

    #[test]
    fn vm_hwm_parses_and_degrades() {
        assert_eq!(
            parse_vm_hwm("Name:\tx\nVmPeak:\t  999 kB\nVmHWM:\t  1234 kB\nVmRSS:\t 10 kB\n"),
            Some(1234 * 1024)
        );
        assert_eq!(parse_vm_hwm("Name:\tx\nVmRSS:\t 10 kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
        // On Linux the live probe reports something plausible; elsewhere it
        // degrades to None without panicking.
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        } else {
            let _ = peak_rss_bytes();
        }
    }

    #[test]
    fn json_renders_deterministically() {
        let doc = Json::obj([
            ("b", Json::Num(2.0)),
            ("a", Json::Str("x\"y".into())),
            ("c", Json::Arr(vec![Json::Bool(true), Json::Num(0.5)])),
        ]);
        let text = doc.render();
        assert!(text.starts_with("{\n  \"a\": \"x\\\"y\",\n  \"b\": 2,"));
        assert!(text.contains("5.000000e-1"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn json_escapes_and_empties() {
        assert_eq!(Json::Obj(BTreeMap::new()).render(), "{}\n");
        assert_eq!(Json::Arr(Vec::new()).render(), "[]\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Str("a\nb".into()).render(), "\"a\\nb\"\n");
    }

    #[test]
    fn legacy_name_matches_current_semantics() {
        let legacy = legacy::LegacyName::parse("WWW.Example.COM.").unwrap();
        assert_eq!(legacy.as_str(), "www.example.com");
        assert_eq!(legacy.apex().as_str(), "example.com");
        assert!(legacy::LegacyName::parse("-bad.com").is_none());
        let current: remnant::dns::DomainName = "WWW.Example.COM.".parse().unwrap();
        assert_eq!(current.as_str(), legacy.as_str());
    }

    #[test]
    fn legacy_cache_round_trips() {
        let name = legacy::LegacyName::parse("x.example.com").unwrap();
        let mut cache = legacy::LegacyCache::default();
        cache.insert(
            name.clone(),
            vec![legacy::LegacyRecord {
                name: name.clone(),
                ttl: 300,
                addr: std::net::Ipv4Addr::new(1, 2, 3, 4),
            }],
        );
        assert_eq!(cache.get(&name).unwrap().len(), 1);
    }
}
