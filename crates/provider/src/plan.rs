//! Service plans.
//!
//! Plans matter for two observed behaviors:
//!
//! * Cloudflare's CNAME-based rerouting "is exclusive to those customers
//!   with the business or enterprise plans" (Sec V-A, \[21\]);
//! * the purge delay of residual records appears plan-dependent: the
//!   authors' free-plan record was purged in the 4th week after
//!   termination, while some origins stayed exposed for the entire
//!   measurement (Sec V-A.3).

use std::fmt;

/// A DPS service plan tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ServicePlan {
    /// Free tier (the bulk of Cloudflare's customers, footnote 7).
    #[default]
    Free,
    /// Paid entry tier.
    Pro,
    /// Business tier — unlocks CNAME setup on Cloudflare.
    Business,
    /// Enterprise tier.
    Enterprise,
}

impl ServicePlan {
    /// All plans, cheapest first.
    pub const ALL: [ServicePlan; 4] = [
        ServicePlan::Free,
        ServicePlan::Pro,
        ServicePlan::Business,
        ServicePlan::Enterprise,
    ];

    /// True if this plan unlocks CNAME setup on providers that gate it
    /// (Cloudflare business/enterprise, per \[21\]).
    pub const fn allows_cname_setup(self) -> bool {
        matches!(self, ServicePlan::Business | ServicePlan::Enterprise)
    }
}

impl fmt::Display for ServicePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServicePlan::Free => "Free",
            ServicePlan::Pro => "Pro",
            ServicePlan::Business => "Business",
            ServicePlan::Enterprise => "Enterprise",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cname_gating_matches_cloudflare_docs() {
        assert!(!ServicePlan::Free.allows_cname_setup());
        assert!(!ServicePlan::Pro.allows_cname_setup());
        assert!(ServicePlan::Business.allows_cname_setup());
        assert!(ServicePlan::Enterprise.allows_cname_setup());
    }

    #[test]
    fn ordering_is_cheapest_first() {
        assert!(ServicePlan::Free < ServicePlan::Enterprise);
        let mut sorted = ServicePlan::ALL;
        sorted.sort();
        assert_eq!(sorted, ServicePlan::ALL);
    }

    #[test]
    fn default_is_free() {
        assert_eq!(ServicePlan::default(), ServicePlan::Free);
    }
}
