//! The daily DNS record collector (Sec IV-B.1).
//!
//! "we set a recursive DNS resolver inside Amazon EC2 ... and send DNS
//! queries for the tested domains to obtain their A, CNAME, and NS records.
//! ... we purge the DNS cache of the resolver before performing each
//! experiment."

use remnant_dns::{DnsTransport, DomainName, RecordType, RecursiveResolver};
use remnant_net::Region;
use remnant_sim::SimClock;

use crate::snapshot::{DnsSnapshot, SiteRecords};

/// A collection target: `(apex, www host)`.
pub type Target = (DomainName, DomainName);

/// The record collector: a cache-purging recursive resolver sweeping the
/// target list.
#[derive(Debug)]
pub struct RecordCollector {
    clock: SimClock,
    resolver: RecursiveResolver,
    rounds: u32,
}

impl RecordCollector {
    /// Creates a collector resolving from `region` (the paper used
    /// us-east-1, our [`Region::Ashburn`]).
    pub fn new(clock: SimClock, region: Region) -> Self {
        RecordCollector {
            resolver: RecursiveResolver::new(clock.clone(), region),
            clock,
            rounds: 0,
        }
    }

    /// Number of collection rounds performed.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Collects one snapshot over `targets`, purging the resolver cache
    /// first so the round is independent of the previous one.
    ///
    /// Per-site failures (timeouts, NXDOMAIN) are recorded as empty
    /// [`SiteRecords`] — one dead site must not abort a million-site sweep.
    pub fn collect<T: DnsTransport>(
        &mut self,
        transport: &mut T,
        targets: &[Target],
        day: u32,
    ) -> DnsSnapshot {
        self.resolver.purge_cache();
        self.rounds += 1;
        let mut snapshot = DnsSnapshot::new(self.clock.now(), day, targets.len());
        for (apex, www) in targets {
            snapshot.records.push(self.collect_site(transport, apex, www));
        }
        snapshot
    }

    /// Collects A + CNAME chain for the www host and NS for the apex.
    fn collect_site<T: DnsTransport>(
        &mut self,
        transport: &mut T,
        apex: &DomainName,
        www: &DomainName,
    ) -> SiteRecords {
        let mut records = SiteRecords::default();
        if let Ok(res) = self.resolver.resolve(transport, www, RecordType::A) {
            records.a = res.addresses();
            records.cnames = res.cnames();
        }
        if let Ok(res) = self.resolver.resolve(transport, apex, RecordType::Ns) {
            records.ns = res.ns_hosts();
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remnant_world::{World, WorldConfig};

    fn tiny_world() -> World {
        World::generate(WorldConfig {
            population: 200,
            seed: 9,
            warmup_days: 0,
            calibration: remnant_world::Calibration::paper(),
        })
    }

    fn targets(world: &World) -> Vec<Target> {
        world
            .sites()
            .iter()
            .map(|s| (s.apex.clone(), s.www.clone()))
            .collect()
    }

    #[test]
    fn collects_every_site() {
        let mut world = tiny_world();
        let targets = targets(&world);
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        let snapshot = collector.collect(&mut world, &targets, 0);
        assert_eq!(snapshot.records.len(), 200);
        assert_eq!(snapshot.resolved_count(), 200, "every site resolves");
        assert_eq!(collector.rounds(), 1);
    }

    #[test]
    fn self_hosted_records_point_at_origin_with_hosting_ns() {
        let mut world = tiny_world();
        let site = world
            .sites()
            .iter()
            .find(|s| s.state == remnant_world::SiteState::SelfHosted)
            .unwrap()
            .clone();
        let targets = targets(&world);
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        let snapshot = collector.collect(&mut world, &targets, 0);
        let records = snapshot.site(site.id.0 as usize).unwrap();
        assert_eq!(records.a, vec![site.origin]);
        assert!(records.cnames.is_empty());
        assert_eq!(records.ns.len(), 2);
        assert!(records.ns[0].contains_label_substring("webhost"));
    }

    #[test]
    fn cname_customers_show_their_token_chain() {
        let mut world = tiny_world();
        let site = world
            .sites()
            .iter()
            .find(|s| {
                matches!(
                    s.state,
                    remnant_world::SiteState::Dps {
                        rerouting: remnant_provider::ReroutingMethod::Cname,
                        paused: false,
                        ..
                    }
                )
            })
            .unwrap()
            .clone();
        let targets = targets(&world);
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        let snapshot = collector.collect(&mut world, &targets, 0);
        let records = snapshot.site(site.id.0 as usize).unwrap();
        assert_eq!(records.cnames.len(), 1, "CNAME chain captured");
        assert!(!records.a.is_empty());
    }

    #[test]
    fn rounds_are_independent_after_purge() {
        let mut world = tiny_world();
        let targets = targets(&world);
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        let s1 = collector.collect(&mut world, &targets, 0);
        let (q_after_first, _) = world.traffic_stats();
        let s2 = collector.collect(&mut world, &targets, 1);
        let (q_after_second, _) = world.traffic_stats();
        assert_eq!(s1.records, s2.records, "static world yields identical rounds");
        // The purge forces real re-resolution (roughly as many queries).
        assert!(q_after_second - q_after_first > targets.len() as u64);
    }
}
