//! Malformed-packet corpus: every hostile shape returns a *named*
//! `WireError` — no panic, no unbounded allocation, no silent drop.
//!
//! The corpus covers the attacks a public-facing parser actually sees:
//! compression-pointer loops and forward pointers, truncation at every
//! field boundary, oversized name expansions, reserved label types,
//! unknown RR types and classes, and RDATA/RDLENGTH mismatches.

use remnant_dns::{Query, RecordData, RecordType, ResourceRecord, Response, Ttl};
use remnant_wire::{Message, WireError, HEADER_LEN};

/// A minimal valid query frame for `www.example.com A?` to mutate from.
fn base_query() -> Vec<u8> {
    let query = Query::new("www.example.com".parse().expect("name"), RecordType::A);
    Message::query(0x1234, &query).encode().expect("encodes")
}

/// A valid response frame with one A answer to mutate from.
fn base_response() -> Vec<u8> {
    let query = Query::new("www.example.com".parse().expect("name"), RecordType::A);
    let response = Response::answer(
        query.clone(),
        vec![ResourceRecord::new(
            query.name.clone(),
            Ttl::secs(300),
            RecordData::A([203, 0, 113, 9].into()),
        )],
    );
    Message::response(0x1234, &response)
        .encode()
        .expect("encodes")
}

/// Header + a question whose QNAME is the given raw bytes.
fn frame_with_raw_qname(qname: &[u8]) -> Vec<u8> {
    let mut frame = vec![
        0x12, 0x34, // ID
        0x01, 0x00, // RD
        0x00, 0x01, // QDCOUNT 1
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    ];
    frame.extend_from_slice(qname);
    frame.extend_from_slice(&1u16.to_be_bytes()); // QTYPE A
    frame.extend_from_slice(&1u16.to_be_bytes()); // QCLASS IN
    frame
}

#[test]
fn truncated_headers_at_every_length() {
    let frame = base_query();
    for len in 0..HEADER_LEN {
        let err = Message::decode(&frame[..len]).expect_err("short header must fail");
        assert_eq!(
            err,
            WireError::Truncated {
                offset: len,
                needed: HEADER_LEN - len
            },
            "truncation at {len} bytes"
        );
    }
}

#[test]
fn truncation_at_every_byte_of_a_real_message_never_panics() {
    let frame = base_response();
    for len in 0..frame.len() {
        let result = Message::decode(&frame[..len]);
        assert!(
            result.is_err(),
            "prefix of {len} bytes decoded successfully"
        );
    }
    assert!(
        Message::decode(&frame).is_ok(),
        "the full frame still parses"
    );
}

#[test]
fn pointer_loop_self_reference() {
    let frame = frame_with_raw_qname(&[0xC0, 0x0C]); // points at itself (offset 12)
    match Message::decode(&frame) {
        Err(WireError::ForwardPointer {
            offset: 12,
            target: 12,
        }) => {}
        other => panic!("expected ForwardPointer, got {other:?}"),
    }
}

#[test]
fn pointer_loop_mutual_references() {
    // Two names pointing at each other through the answer section.
    let mut frame = frame_with_raw_qname(&[0xC0, 0x10]); // forward into the frame
    frame.extend_from_slice(&[0xC0, 0x0C]); // and back
    match Message::decode(&frame) {
        Err(WireError::ForwardPointer { .. }) => {}
        other => panic!("expected ForwardPointer, got {other:?}"),
    }
}

#[test]
fn forward_pointer_is_named() {
    // QNAME is a pointer to the QTYPE field — forward of the name start.
    let frame = frame_with_raw_qname(&[0xC0, 0x0E]);
    match Message::decode(&frame) {
        Err(WireError::ForwardPointer {
            offset: 12,
            target: 14,
        }) => {}
        other => panic!("expected ForwardPointer, got {other:?}"),
    }
}

#[test]
fn deep_pointer_chain_hits_the_jump_budget() {
    // A strictly backward chain long enough to exhaust the jump budget.
    // Arbitrary bytes can only live inside RDATA, so the chain entries
    // are smuggled in as A-record addresses (two 2-byte pointers per
    // record); the final record's NAME enters at the deepest entry and
    // hops backward through all of them.
    let mut frame = vec![
        0x12, 0x34, // ID
        0x84, 0x00, // QR response, AA
        0x00, 0x01, // QDCOUNT 1
        0x00, 0x0A, // ANCOUNT 10 (9 chain carriers + the trap)
        0x00, 0x00, 0x00, 0x00,
    ];
    frame.extend_from_slice(&[1, b'a', 0]); // QNAME "a."
    frame.extend_from_slice(&1u16.to_be_bytes()); // QTYPE A
    frame.extend_from_slice(&1u16.to_be_bytes()); // QCLASS IN

    let mut entries: Vec<usize> = Vec::new();
    for _ in 0..9 {
        frame.extend_from_slice(&[0xC0, 0x0C]); // NAME → QNAME
        frame.extend_from_slice(&1u16.to_be_bytes()); // TYPE A
        frame.extend_from_slice(&1u16.to_be_bytes()); // CLASS IN
        frame.extend_from_slice(&300u32.to_be_bytes()); // TTL
        frame.extend_from_slice(&4u16.to_be_bytes()); // RDLENGTH
        for _ in 0..2 {
            // Each entry is a pointer to the previous entry; the very
            // first points at the QNAME label, which would terminate.
            let target = *entries.last().unwrap_or(&12);
            entries.push(frame.len());
            frame.extend_from_slice(&(0xC000 | target as u16).to_be_bytes());
        }
    }
    assert_eq!(entries.len(), 18, "enough hops to exceed the budget of 16");

    // The trap record: NAME is a pointer to the deepest chain entry.
    let deepest = *entries.last().expect("chain built");
    frame.extend_from_slice(&(0xC000 | deepest as u16).to_be_bytes());
    frame.extend_from_slice(&1u16.to_be_bytes());
    frame.extend_from_slice(&1u16.to_be_bytes());
    frame.extend_from_slice(&300u32.to_be_bytes());
    frame.extend_from_slice(&4u16.to_be_bytes());
    frame.extend_from_slice(&[10, 0, 0, 1]);

    match Message::decode(&frame) {
        Err(WireError::PointerLimit { .. }) => {}
        other => panic!("expected PointerLimit, got {other:?}"),
    }
}

#[test]
fn oversized_name_expansion_is_bounded() {
    // Four 63-byte labels: 255 presentation chars, over the 253 limit.
    let mut qname = Vec::new();
    for _ in 0..4 {
        qname.push(63);
        qname.extend(std::iter::repeat_n(b'a', 63));
    }
    qname.push(0);
    let frame = frame_with_raw_qname(&qname);
    match Message::decode(&frame) {
        Err(WireError::NameTooLong { offset: 12 }) => {}
        other => panic!("expected NameTooLong, got {other:?}"),
    }
}

#[test]
fn reserved_label_types_are_named() {
    for byte in [0x40u8, 0x80] {
        let frame = frame_with_raw_qname(&[byte, 0x00]);
        match Message::decode(&frame) {
            Err(WireError::BadLabelType {
                offset: 12,
                byte: b,
            }) if b == byte => {}
            other => panic!("expected BadLabelType for {byte:#04x}, got {other:?}"),
        }
    }
}

#[test]
fn non_hostname_bytes_are_rejected() {
    let frame = frame_with_raw_qname(&[3, b'w', b' ', b'w', 0]);
    match Message::decode(&frame) {
        Err(WireError::BadName { offset: 12 }) => {}
        other => panic!("expected BadName, got {other:?}"),
    }
}

#[test]
fn unknown_rr_type_is_typed_unsupported() {
    // AAAA (28) in the question.
    let mut frame = base_query();
    let qtype_at = frame.len() - 4;
    frame[qtype_at..qtype_at + 2].copy_from_slice(&28u16.to_be_bytes());
    match Message::decode(&frame) {
        Err(WireError::UnsupportedType { rtype: 28, .. }) => {}
        other => panic!("expected UnsupportedType, got {other:?}"),
    }
    // OPT (41) in an answer record.
    let mut frame = base_response();
    // The answer RR follows the question; its TYPE sits 2 bytes after
    // the name (a compression pointer here, so name is 2 bytes).
    let answer_type_at = base_query().len() + 2;
    frame[answer_type_at..answer_type_at + 2].copy_from_slice(&41u16.to_be_bytes());
    match Message::decode(&frame) {
        Err(WireError::UnsupportedType { rtype: 41, .. }) => {}
        other => panic!("expected UnsupportedType, got {other:?}"),
    }
}

#[test]
fn unknown_class_is_typed() {
    let mut frame = base_query();
    let qclass_at = frame.len() - 2;
    frame[qclass_at..qclass_at + 2].copy_from_slice(&3u16.to_be_bytes()); // CHAOS
    match Message::decode(&frame) {
        Err(WireError::UnsupportedClass { class: 3, .. }) => {}
        other => panic!("expected UnsupportedClass, got {other:?}"),
    }
}

#[test]
fn non_query_opcode_is_typed() {
    let mut frame = base_query();
    frame[2] |= 2 << 3; // opcode STATUS (2) in bits 14-11
    match Message::decode(&frame) {
        Err(WireError::BadOpcode {
            opcode: 2,
            offset: 2,
        }) => {}
        other => panic!("expected BadOpcode, got {other:?}"),
    }
}

#[test]
fn unknown_rcode_is_typed() {
    let mut frame = base_response();
    frame[3] = (frame[3] & 0xF0) | 1; // FORMERR
    match Message::decode(&frame) {
        Err(WireError::BadRcode {
            rcode: 1,
            offset: 2,
        }) => {}
        other => panic!("expected BadRcode, got {other:?}"),
    }
}

#[test]
fn multi_question_count_is_typed() {
    let mut frame = base_query();
    frame[5] = 7;
    match Message::decode(&frame) {
        Err(WireError::QuestionCount { count: 7 }) => {}
        other => panic!("expected QuestionCount, got {other:?}"),
    }
}

#[test]
fn rdlength_mismatches_are_bad_rdata() {
    // An A record claiming 5 bytes of RDATA.
    let query = Query::new("www.example.com".parse().expect("name"), RecordType::A);
    let mut frame = Message::query(1, &query).encode().expect("encodes");
    frame[7] = 1; // ANCOUNT 1
    frame.extend_from_slice(&[0xC0, 0x0C]); // name: pointer to QNAME
    frame.extend_from_slice(&1u16.to_be_bytes()); // TYPE A
    frame.extend_from_slice(&1u16.to_be_bytes()); // CLASS IN
    frame.extend_from_slice(&300u32.to_be_bytes()); // TTL
    frame.extend_from_slice(&5u16.to_be_bytes()); // RDLENGTH 5 (wrong)
    frame.extend_from_slice(&[1, 2, 3, 4, 5]);
    match Message::decode(&frame) {
        Err(WireError::BadRdata { rtype: 1, .. }) => {}
        other => panic!("expected BadRdata, got {other:?}"),
    }
}

#[test]
fn rdata_overrunning_the_frame_is_truncated() {
    let query = Query::new("www.example.com".parse().expect("name"), RecordType::A);
    let mut frame = Message::query(1, &query).encode().expect("encodes");
    frame[7] = 1; // ANCOUNT 1
    frame.extend_from_slice(&[0xC0, 0x0C]);
    frame.extend_from_slice(&1u16.to_be_bytes());
    frame.extend_from_slice(&1u16.to_be_bytes());
    frame.extend_from_slice(&300u32.to_be_bytes());
    frame.extend_from_slice(&200u16.to_be_bytes()); // RDLENGTH 200, but no bytes follow
    match Message::decode(&frame) {
        Err(WireError::Truncated { needed: 200, .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn txt_chunk_overrunning_rdlength_is_bad_rdata() {
    let query = Query::new("t.example.com".parse().expect("name"), RecordType::Txt);
    let mut frame = Message::query(1, &query).encode().expect("encodes");
    frame[7] = 1; // ANCOUNT 1
    frame.extend_from_slice(&[0xC0, 0x0C]);
    frame.extend_from_slice(&16u16.to_be_bytes()); // TYPE TXT
    frame.extend_from_slice(&1u16.to_be_bytes());
    frame.extend_from_slice(&60u32.to_be_bytes());
    frame.extend_from_slice(&3u16.to_be_bytes()); // RDLENGTH 3
    frame.extend_from_slice(&[10, b'a', b'b']); // chunk claims 10 bytes, only 2 present
    match Message::decode(&frame) {
        Err(WireError::BadRdata { rtype: 16, .. }) => {}
        other => panic!("expected BadRdata, got {other:?}"),
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut frame = base_response();
    frame.extend_from_slice(&[0xDE, 0xAD]);
    match Message::decode(&frame) {
        Err(WireError::TrailingBytes { .. }) => {}
        other => panic!("expected TrailingBytes, got {other:?}"),
    }
}

#[test]
fn counted_records_that_do_not_exist_are_truncated() {
    let mut frame = base_query();
    frame[7] = 3; // claim three answers, provide none
    match Message::decode(&frame) {
        Err(WireError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn huge_claimed_counts_do_not_preallocate() {
    // ANCOUNT 65535 with an empty body must fail fast on the first
    // missing record, not allocate 65535 slots up front.
    let mut frame = base_query();
    frame[6] = 0xFF;
    frame[7] = 0xFF;
    let before = std::time::Instant::now();
    assert!(Message::decode(&frame).is_err());
    assert!(
        before.elapsed() < std::time::Duration::from_millis(100),
        "decode of a lying header must be immediate"
    );
}

#[test]
fn every_error_reports_a_plausible_offset() {
    let corpus: Vec<Vec<u8>> = vec![
        frame_with_raw_qname(&[0xC0, 0x0C]),
        frame_with_raw_qname(&[0x40, 0x00]),
        frame_with_raw_qname(&[3, b'!', b'a', b'b', 0]),
        base_query()[..7].to_vec(),
    ];
    for frame in corpus {
        let err = Message::decode(&frame).expect_err("corpus frames are malformed");
        assert!(
            err.offset() <= frame.len(),
            "offset {} beyond frame length {} for {err}",
            err.offset(),
            frame.len()
        );
    }
}
