//! The classic origin-exposure vectors of Table I, as scanners.
//!
//! The paper positions residual resolution against the eight previously
//! known vectors of Vissers et al. \[10\] ("more than 70% of the evaluated
//! websites are vulnerable to at least one of the attack vectors"). This
//! module implements the three vectors our substrates expose, so the new
//! vector can be compared against the old ones on the same population:
//!
//! * **IP History** — historical DNS databases hold pre-DPS origin
//!   addresses. [`PassiveDnsDb`] accumulates every observed A record
//!   across collection rounds (this also captures the paper's "Temporary
//!   Exposure" vector: a pause window deposits the origin into history).
//! * **Subdomains** — unproxied auxiliary subdomains (`dev.<apex>`)
//!   hosted on the origin machine.
//! * **DNS Records (MX)** — mail hosts co-located with the web origin.
//!
//! Every candidate address is confirmed with the same HTML verification
//! the rest of the study uses.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::net::Ipv4Addr;

use remnant_dns::{DnsTransport, RecordType, RecursiveResolver};
use remnant_http::HttpTransport;
use remnant_net::Region;
use remnant_sim::SimClock;

use crate::adoption::{Adoption, DpsStatus};
use crate::collector::Target;
use crate::matchers::ProviderMatcher;
use crate::snapshot::DnsSnapshot;
use crate::verify::{HtmlVerifier, VerifyOutcome};

/// The implemented Table I vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExposureVector {
    /// Historical DNS records reveal the pre-DPS origin.
    IpHistory,
    /// An unprotected subdomain lives on the origin host.
    Subdomain,
    /// The MX host shares the origin's address.
    MxRecord,
}

impl ExposureVector {
    /// All implemented vectors.
    pub const ALL: [ExposureVector; 3] = [
        ExposureVector::IpHistory,
        ExposureVector::Subdomain,
        ExposureVector::MxRecord,
    ];
}

impl fmt::Display for ExposureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExposureVector::IpHistory => "IP History",
            ExposureVector::Subdomain => "Subdomains",
            ExposureVector::MxRecord => "DNS Records (MX)",
        })
    }
}

/// A passive-DNS style database: every address ever observed per site
/// (SecurityTrails / DNSDB stand-in).
#[derive(Clone, Debug, Default)]
pub struct PassiveDnsDb {
    history: HashMap<usize, BTreeSet<Ipv4Addr>>,
    observations: u64,
}

impl PassiveDnsDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        PassiveDnsDb::default()
    }

    /// Records every A address of a collection round.
    pub fn feed(&mut self, snapshot: &DnsSnapshot) {
        self.observations += 1;
        for loaded in snapshot.blocks() {
            for (i, site) in loaded.block.sites().enumerate() {
                if !site.a.is_empty() {
                    self.history
                        .entry(loaded.base_rank + i)
                        .or_default()
                        .extend(site.a.iter().copied());
                }
            }
        }
    }

    /// Historical addresses for one site.
    pub fn addresses(&self, rank: usize) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.history.get(&rank).into_iter().flatten().copied()
    }

    /// Number of collection rounds ingested.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of sites with history.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True if no history was recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

/// Per-vector results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VectorTally {
    /// Protected sites with at least one non-DPS candidate address.
    pub candidates: usize,
    /// Protected sites whose candidate verified as the live origin.
    pub verified: usize,
}

/// The scan outcome over all protected sites.
#[derive(Clone, Debug, Default)]
pub struct VectorScanReport {
    /// Protected (ON) sites examined.
    pub protected_sites: usize,
    /// Per-vector tallies, in [`ExposureVector::ALL`] order.
    pub per_vector: Vec<(ExposureVector, VectorTally)>,
    /// Sites exposed through at least one vector.
    pub exposed_sites: usize,
}

impl VectorScanReport {
    /// Fraction of protected sites exposed through ≥1 vector (compare to
    /// the ≥70% of \[10\], who evaluated eight vectors).
    pub fn exposed_fraction(&self) -> f64 {
        if self.protected_sites == 0 {
            0.0
        } else {
            self.exposed_sites as f64 / self.protected_sites as f64
        }
    }

    /// The tally for one vector.
    pub fn tally(&self, vector: ExposureVector) -> VectorTally {
        self.per_vector
            .iter()
            .find(|(v, _)| *v == vector)
            .map(|(_, t)| *t)
            .unwrap_or_default()
    }
}

/// The Table I vector scanner.
#[derive(Debug)]
pub struct VectorScanner {
    resolver: RecursiveResolver,
    verifier: HtmlVerifier,
    matcher: ProviderMatcher,
    clock: SimClock,
}

impl VectorScanner {
    /// Creates a scanner resolving from `region`, fetching from
    /// `scanner_src`.
    pub fn new(clock: SimClock, region: Region, scanner_src: Ipv4Addr) -> Self {
        VectorScanner {
            resolver: RecursiveResolver::new(clock.clone(), region),
            verifier: HtmlVerifier::new(scanner_src),
            matcher: ProviderMatcher::new(),
            clock,
        }
    }

    /// Scans every currently protected site for the three vectors.
    ///
    /// `classes` is the latest classification of `targets`; `history` the
    /// accumulated passive-DNS database.
    pub fn scan<T: DnsTransport + HttpTransport>(
        &mut self,
        transport: &mut T,
        targets: &[Target],
        classes: &[Adoption],
        history: &PassiveDnsDb,
    ) -> VectorScanReport {
        assert_eq!(targets.len(), classes.len(), "classes cover the targets");
        self.resolver.purge_cache();
        let mut report = VectorScanReport {
            per_vector: ExposureVector::ALL
                .into_iter()
                .map(|v| (v, VectorTally::default()))
                .collect(),
            ..VectorScanReport::default()
        };

        for (rank, (apex, www)) in targets.iter().enumerate() {
            if classes[rank].status != DpsStatus::On {
                continue;
            }
            report.protected_sites += 1;

            // Reference: the currently served (edge) address and set.
            let public = self
                .resolver
                .resolve(transport, www, RecordType::A)
                .map(|r| r.addresses())
                .unwrap_or_default();
            let Some(reference) = public.last().copied() else {
                continue;
            };

            let mut site_exposed = false;
            for (vector, tally) in &mut report.per_vector {
                let candidates: Vec<Ipv4Addr> = match vector {
                    ExposureVector::IpHistory => history
                        .addresses(rank)
                        .filter(|a| !public.contains(a))
                        .collect(),
                    ExposureVector::Subdomain => {
                        let Ok(dev) = apex.prepend("dev") else {
                            continue;
                        };
                        self.resolver
                            .resolve(transport, &dev, RecordType::A)
                            .map(|r| r.addresses())
                            .unwrap_or_default()
                    }
                    ExposureVector::MxRecord => {
                        let exchanges = self
                            .resolver
                            .resolve(transport, apex, RecordType::Mx)
                            .map(|r| {
                                r.records
                                    .iter()
                                    .filter_map(|rr| match &rr.data {
                                        remnant_dns::RecordData::Mx { exchange, .. } => {
                                            Some(exchange.clone())
                                        }
                                        _ => None,
                                    })
                                    .collect::<Vec<_>>()
                            })
                            .unwrap_or_default();
                        exchanges
                            .iter()
                            .flat_map(|exchange| {
                                self.resolver
                                    .resolve(transport, exchange, RecordType::A)
                                    .map(|r| r.addresses())
                                    .unwrap_or_default()
                            })
                            .collect()
                    }
                };
                // Only non-DPS addresses are origin candidates.
                let candidates: Vec<Ipv4Addr> = candidates
                    .into_iter()
                    .filter(|a| self.matcher.a_match(*a).is_none())
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                tally.candidates += 1;
                let now = self.clock.now();
                let confirmed = candidates.iter().any(|candidate| {
                    self.verifier
                        .verify(transport, now, www.as_str(), reference, *candidate)
                        == VerifyOutcome::Verified
                });
                if confirmed {
                    tally.verified += 1;
                    site_exposed = true;
                }
            }
            if site_exposed {
                report.exposed_sites += 1;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::RecordCollector;
    use crate::BehaviorDetector;
    use crate::SCANNER_SOURCE;
    use remnant_provider::{ProviderId, ReroutingMethod, ServicePlan};
    use remnant_world::{SiteState, World, WorldConfig};

    fn world(seed: u64) -> World {
        World::generate(WorldConfig {
            population: 1_200,
            seed,
            warmup_days: 0,
            calibration: remnant_world::Calibration::paper(),
        })
    }

    fn targets(world: &World) -> Vec<Target> {
        world
            .sites()
            .iter()
            .map(|s| (s.apex.clone(), s.www.clone()))
            .collect()
    }

    fn scan(world: &mut World, history: &PassiveDnsDb) -> VectorScanReport {
        let targets = targets(world);
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        let snapshot = collector.collect(world, &targets, 99);
        let classes = BehaviorDetector::new().classify_snapshot(&snapshot);
        let mut scanner = VectorScanner::new(world.clock(), Region::Ashburn, SCANNER_SOURCE);
        scanner.scan(world, &targets, &classes, history)
    }

    #[test]
    fn leaky_subdomains_expose_protected_origins() {
        let mut w = world(31);
        let report = scan(&mut w, &PassiveDnsDb::new());
        assert!(report.protected_sites > 0);
        let subdomain = report.tally(ExposureVector::Subdomain);
        assert!(subdomain.candidates > 0, "leaky dev subdomains exist");
        assert!(subdomain.verified > 0, "and they verify as origins");
        // Calibration: ~30% of sites leak a subdomain; verified ≈ that
        // times verification success.
        let fraction = subdomain.verified as f64 / report.protected_sites as f64;
        assert!(
            (0.1..0.5).contains(&fraction),
            "subdomain exposure fraction {fraction}"
        );
    }

    #[test]
    fn colocated_mx_exposes_but_mail_farm_does_not() {
        let mut w = world(32);
        let report = scan(&mut w, &PassiveDnsDb::new());
        let mx = report.tally(ExposureVector::MxRecord);
        assert!(mx.candidates > 0, "mail candidates exist");
        assert!(mx.verified > 0, "co-located mail verifies");
        assert!(
            mx.verified < mx.candidates,
            "mail-farm hosted MX never verifies ({} of {})",
            mx.verified,
            mx.candidates
        );
    }

    #[test]
    fn ip_history_catches_join_without_rotation() {
        let mut w = world(33);
        let targets = targets(&w);
        let mut collector = RecordCollector::new(w.clock(), Region::Ashburn);
        let mut history = PassiveDnsDb::new();

        // Observe the world while a site is still self-hosted...
        let site = w
            .sites()
            .iter()
            .find(|s| {
                let clean = !s.firewalled && !s.dynamic_meta && !s.leaky_subdomain;
                s.state == SiteState::SelfHosted && clean && !(s.has_mx && s.mx_colocated)
            })
            .unwrap()
            .clone();
        history.feed(&collector.collect(&mut w, &targets, 0));
        assert!(history
            .addresses(site.id.0 as usize)
            .any(|a| a == site.origin));

        // ...then it joins a DPS *without* rotating its origin.
        w.force_join(
            site.id,
            ProviderId::Cloudflare,
            ReroutingMethod::Ns,
            ServicePlan::Free,
        );
        w.step_days(1);

        let report = scan(&mut w, &history);
        let history_tally = report.tally(ExposureVector::IpHistory);
        assert!(
            history_tally.verified > 0,
            "pre-join origin found in history"
        );
    }

    #[test]
    fn rotating_the_origin_defeats_ip_history() {
        let mut w = world(34);
        let targets = targets(&w);
        let mut collector = RecordCollector::new(w.clock(), Region::Ashburn);
        let mut history = PassiveDnsDb::new();
        let site = w
            .sites()
            .iter()
            .find(|s| {
                s.state == SiteState::SelfHosted
                    && !s.leaky_subdomain
                    && !s.has_mx
                    && !s.firewalled
                    && !s.dynamic_meta
            })
            .unwrap()
            .clone();
        history.feed(&collector.collect(&mut w, &targets, 0));

        w.force_join(
            site.id,
            ProviderId::Cloudflare,
            ReroutingMethod::Ns,
            ServicePlan::Free,
        );
        // Best practice: new origin after joining (Sec IV-C.3).
        w.rotate_origin(site.id);
        w.step_days(1);

        let snapshot = collector.collect(&mut w, &targets, 1);
        let classes = BehaviorDetector::new().classify_snapshot(&snapshot);
        let mut scanner = VectorScanner::new(w.clock(), Region::Ashburn, SCANNER_SOURCE);
        let report = scanner.scan(&mut w, &targets, &classes, &history);
        // This particular site must not be exposed through history: the
        // historical address is dead.
        let rank = site.id.0 as usize;
        let public = classes[rank];
        assert_eq!(public.status, DpsStatus::On);
        // The site has no other leak surface, so per-site exposure via
        // history must fail; we assert at the aggregate level that history
        // candidates exist but this one did not verify by checking that
        // verified < candidates or no candidates at all.
        let tally = report.tally(ExposureVector::IpHistory);
        assert!(tally.verified <= tally.candidates);
    }

    #[test]
    fn passive_dns_accumulates_across_rounds() {
        let mut db = PassiveDnsDb::new();
        assert!(db.is_empty());
        let one_site = |addr| {
            let mut b = DnsSnapshot::builder(remnant_sim::SimTime::EPOCH, 0, 1);
            b.push(crate::snapshot::SiteRecords {
                a: vec![addr],
                ..Default::default()
            });
            b.finish()
        };
        db.feed(&one_site(Ipv4Addr::new(1, 1, 1, 1)));
        db.feed(&one_site(Ipv4Addr::new(2, 2, 2, 2)));
        let addrs: Vec<Ipv4Addr> = db.addresses(0).collect();
        assert_eq!(addrs.len(), 2);
        assert_eq!(db.observations(), 2);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn vector_display_names_match_table1() {
        assert_eq!(ExposureVector::IpHistory.to_string(), "IP History");
        assert_eq!(ExposureVector::Subdomain.to_string(), "Subdomains");
        assert_eq!(ExposureVector::MxRecord.to_string(), "DNS Records (MX)");
    }

    #[test]
    fn empty_report_fraction_is_zero() {
        assert_eq!(VectorScanReport::default().exposed_fraction(), 0.0);
    }
}
