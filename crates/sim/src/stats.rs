//! Statistics containers used to regenerate the paper's figures.
//!
//! The paper reports daily behavior counts (Fig 3), CDFs of pause periods
//! (Fig 5), adoption breakdowns (Fig 2/6), and weekly exposure series
//! (Fig 9). These containers collect raw samples during a simulation run and
//! expose the derived shapes the figures plot.

use std::collections::BTreeMap;
use std::fmt;

/// A labelled monotone counter.
///
/// # Example
///
/// ```
/// use remnant_sim::stats::Counter;
///
/// let mut joins = Counter::new("JOIN");
/// joins.add(3);
/// joins.incr();
/// assert_eq!(joins.value(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counter {
    label: String,
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new(label: impl Into<String>) -> Self {
        Counter {
            label: label.into(),
            value: 0,
        }
    }

    /// The counter's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The current count.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.value += 1;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.label, self.value)
    }
}

/// An empirical distribution built from `f64` samples.
///
/// Used for the pause-period CDF (Fig 5): samples are pause durations in
/// days; the figure plots `P[duration <= x]`.
///
/// # Example
///
/// ```
/// use remnant_sim::stats::Ecdf;
///
/// let mut cdf = Ecdf::new();
/// cdf.extend([1.0, 2.0, 6.0, 8.0]);
/// assert_eq!(cdf.fraction_le(2.0), 0.5);
/// assert_eq!(cdf.fraction_gt(5.0), 0.5);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Ecdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Ecdf {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Ecdf::default()
    }

    /// Adds one sample. Non-finite samples are ignored.
    pub fn push(&mut self, sample: f64) {
        if sample.is_finite() {
            self.samples.push(sample);
            self.sorted = false;
        }
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("non-finite samples are rejected"));
            self.sorted = true;
        }
    }

    /// Fraction of samples `<= x`; 0.0 for an empty distribution.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self.samples.iter().filter(|s| **s <= x).count();
        n as f64 / self.samples.len() as f64
    }

    /// Fraction of samples `> x`; 0.0 for an empty distribution.
    pub fn fraction_gt(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        1.0 - self.fraction_le(x)
    }

    /// The `q`-th quantile (0.0..=1.0) using nearest-rank.
    ///
    /// Returns `None` for an empty distribution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in 0..=1");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Mean of the samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Evaluates the CDF at each x in `xs`, yielding `(x, P[sample <= x])`
    /// pairs ready for plotting.
    pub fn curve(&self, xs: impl IntoIterator<Item = f64>) -> Vec<(f64, f64)> {
        xs.into_iter().map(|x| (x, self.fraction_le(x))).collect()
    }
}

impl Extend<f64> for Ecdf {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for s in iter {
            self.push(s);
        }
    }
}

impl FromIterator<f64> for Ecdf {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut cdf = Ecdf::new();
        cdf.extend(iter);
        cdf
    }
}

/// A labelled (x, y) series, e.g. "JOIN events per day" for Fig 3.
///
/// # Example
///
/// ```
/// use remnant_sim::stats::Series;
///
/// let mut s = Series::new("JOIN");
/// s.push(0.0, 190.0);
/// s.push(1.0, 201.0);
/// assert_eq!(s.mean_y(), Some(195.5));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The collected points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the y values, or `None` if empty.
    pub fn mean_y(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|(_, y)| y).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Maximum y value, or `None` if empty.
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, y)| *y)
            .fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.max(y))))
    }
}

/// A categorical breakdown (label -> count), e.g. per-provider adoption for
/// Fig 2. Iteration order is the labels' sort order, which keeps rendered
/// tables stable.
///
/// # Example
///
/// ```
/// use remnant_sim::stats::Breakdown;
///
/// let mut b = Breakdown::new();
/// b.add("Cloudflare", 790);
/// b.add("Incapsula", 37);
/// assert_eq!(b.total(), 827);
/// assert!((b.share("Cloudflare").unwrap() - 0.9553).abs() < 1e-3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    counts: BTreeMap<String, u64>,
}

impl Breakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Adds `n` to `label`'s bucket, creating it if absent.
    pub fn add(&mut self, label: impl Into<String>, n: u64) {
        *self.counts.entry(label.into()).or_insert(0) += n;
    }

    /// Adds one to `label`'s bucket.
    pub fn incr(&mut self, label: impl Into<String>) {
        self.add(label, 1);
    }

    /// The count for `label`, if present.
    pub fn get(&self, label: &str) -> Option<u64> {
        self.counts.get(label).copied()
    }

    /// Sum of all buckets.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// `label`'s share of the total, or `None` if the label is absent or the
    /// total is zero.
    pub fn share(&self, label: &str) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        self.counts.get(label).map(|n| *n as f64 / total as f64)
    }

    /// Iterates `(label, count)` in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if no labels were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

impl<'a> IntoIterator for &'a Breakdown {
    type Item = (&'a str, u64);
    type IntoIter = std::vec::IntoIter<(&'a str, u64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

impl FromIterator<(String, u64)> for Breakdown {
    fn from_iter<T: IntoIterator<Item = (String, u64)>>(iter: T) -> Self {
        let mut b = Breakdown::new();
        for (label, n) in iter {
            b.add(label, n);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.to_string(), "x=5");
    }

    #[test]
    fn ecdf_fractions() {
        let cdf: Ecdf = [1.0, 2.0, 3.0, 10.0].into_iter().collect();
        assert_eq!(cdf.fraction_le(3.0), 0.75);
        assert_eq!(cdf.fraction_gt(3.0), 0.25);
        assert_eq!(cdf.fraction_le(0.0), 0.0);
        assert_eq!(cdf.fraction_le(100.0), 1.0);
    }

    #[test]
    fn ecdf_empty_is_safe() {
        let mut cdf = Ecdf::new();
        assert_eq!(cdf.fraction_le(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.mean(), None);
        assert!(cdf.is_empty());
    }

    #[test]
    fn ecdf_rejects_non_finite() {
        let mut cdf = Ecdf::new();
        cdf.push(f64::NAN);
        cdf.push(f64::INFINITY);
        cdf.push(1.0);
        assert_eq!(cdf.len(), 1);
    }

    #[test]
    fn ecdf_quantiles_nearest_rank() {
        let mut cdf: Ecdf = (1..=10).map(|i| i as f64).collect();
        assert_eq!(cdf.quantile(0.5), Some(5.0));
        assert_eq!(cdf.quantile(1.0), Some(10.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
    }

    #[test]
    fn ecdf_curve_is_monotone() {
        let cdf: Ecdf = [2.0, 4.0, 4.0, 9.0].into_iter().collect();
        let curve = cdf.curve((0..12).map(|x| x as f64));
        for pair in curve.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn series_stats() {
        let mut s = Series::new("L");
        assert!(s.is_empty());
        assert_eq!(s.mean_y(), None);
        s.push(0.0, 140.0);
        s.push(1.0, 150.0);
        assert_eq!(s.mean_y(), Some(145.0));
        assert_eq!(s.max_y(), Some(150.0));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn breakdown_shares() {
        let mut b = Breakdown::new();
        b.add("a", 3);
        b.incr("b");
        b.incr("a");
        assert_eq!(b.get("a"), Some(4));
        assert_eq!(b.total(), 5);
        assert_eq!(b.share("b"), Some(0.2));
        assert_eq!(b.share("missing"), None);
        let labels: Vec<&str> = b.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["a", "b"]);
    }

    #[test]
    fn breakdown_empty_share_is_none() {
        let b = Breakdown::new();
        assert_eq!(b.share("a"), None);
        assert!(b.is_empty());
    }
}
