//! The multi-tenant isolation contract, end to end: N concurrent
//! same-config sessions hosted by one [`StudyService`] must each produce
//! a report byte-identical to a solo [`PaperStudy`] run of that config —
//! including the full observability snapshot, which is how cross-session
//! telemetry leakage would first show up — at any worker count.

use remnant::core::study::{PaperStudy, StudyConfig, StudyReport};
use remnant::core::StudyService;
use remnant::world::{World, WorldConfig};

const SESSIONS: usize = 3;

fn base_world() -> World {
    World::generate(WorldConfig::new(1_500, 5))
}

fn study_config(workers: usize) -> StudyConfig {
    StudyConfig::builder()
        .weeks(1)
        .seed(9)
        .workers(workers)
        .build()
        .expect("test config is in bounds")
}

/// Field-for-field and byte-for-byte equality between a hosted session's
/// report and the solo reference.
fn assert_matches_solo(session: usize, hosted: &StudyReport, solo: &StudyReport) {
    assert_eq!(hosted.adoption(), solo.adoption(), "session {session}");
    assert_eq!(
        hosted.residual().cloudflare.weekly,
        solo.residual().cloudflare.weekly,
        "session {session}"
    );
    assert_eq!(
        hosted.residual().incapsula.weekly,
        solo.residual().incapsula.weekly,
        "session {session}"
    );
    assert_eq!(
        hosted.unchanged().rows,
        solo.unchanged().rows,
        "session {session}"
    );
    assert_eq!(
        hosted.behaviors().interval_hours,
        solo.behaviors().interval_hours,
        "session {session}"
    );
    assert_eq!(hosted.collection(), solo.collection(), "session {session}");
    // The strongest isolation check: the whole telemetry snapshot.
    // A single counter bleeding between concurrently running sessions
    // (or from the service) would break this byte equality.
    assert_eq!(
        hosted.obs().to_json(),
        solo.obs().to_json(),
        "session {session}: ObsReport must be isolated per session"
    );
}

#[test]
fn concurrent_same_config_sessions_match_a_solo_run() {
    for workers in [1, 8] {
        let config = study_config(workers);
        let service = StudyService::new(base_world(), workers);

        // The solo reference runs on its own fork of the same base world
        // — exactly the timeline every hosted session starts from.
        let mut solo_world = service.fork_world();
        let solo = PaperStudy::new(config.clone()).run(&mut solo_world);

        let configs = vec![config; SESSIONS];
        let mut rounds_seen = vec![0u32; SESSIONS];
        let reports = service
            .run_campaigns(&configs, |progress| {
                rounds_seen[progress.session] += 1;
                assert_eq!(progress.sites, 1_500);
            })
            .expect("batch validates");

        assert_eq!(reports.len(), SESSIONS, "workers {workers}");
        assert_eq!(
            rounds_seen,
            vec![7; SESSIONS],
            "workers {workers}: every session streamed every round"
        );
        for (session, hosted) in reports.iter().enumerate() {
            assert_matches_solo(session, hosted, &solo);
        }
        assert_eq!(
            service.pool().available(),
            workers,
            "workers {workers}: shared budget fully returned"
        );
    }
}
