//! The snapshot-derived analysis passes, as one reusable fold.
//!
//! [`SnapshotPasses`] is the single implementation of every analysis that
//! depends only on the daily record snapshots: adoption classification
//! (Fig 2 / Fig 6), behavior diffing (Fig 3), FSM validation (Fig 4), and
//! pause tracking (Fig 5). [`crate::study::PaperStudy`] feeds it each
//! round as it is collected; the `remnant-query` crate feeds it the same
//! rounds replayed from a persisted spill directory. Because both paths
//! run the identical fold over identical snapshots, their reports are
//! byte-identical by construction — the query-equivalence differential
//! test pins this down.
//!
//! Analyses that need a live transport (the Table V unchanged study, the
//! weekly residual scans) are *not* part of this fold: the fold hands the
//! per-round filtered behaviors back to the caller, which decides whether
//! to verify them against a world or merely to extract candidates.

use remnant_provider::{ProviderId, ReroutingMethod};
use remnant_sim::stats::Series;
use remnant_sim::SimTime;
use remnant_world::BehaviorKind;

use crate::adoption::{Adoption, DpsStatus};
use crate::behavior::{BehaviorDetector, ObservedBehavior};
use crate::fsm::{self, DpsState};
use crate::pause::PauseTracker;
use crate::snapshot::DnsSnapshot;
use crate::study::{AdoptionReport, BehaviorReport, PauseReport};

/// The reports produced by a completed [`SnapshotPasses`] fold.
#[derive(Clone, Debug, Default)]
pub struct SnapshotAggregates {
    /// Fig 2 / Fig 6.
    pub adoption: AdoptionReport,
    /// Fig 3 / Fig 4.
    pub behaviors: BehaviorReport,
    /// Fig 5.
    pub pauses: PauseReport,
}

/// Streaming fold over a campaign's daily snapshots (see module docs).
///
/// Feed rounds in day order via [`observe`](SnapshotPasses::observe), then
/// take the reports with [`finish`](SnapshotPasses::finish).
#[derive(Clone, Debug)]
pub struct SnapshotPasses {
    detector: BehaviorDetector,
    pause_tracker: PauseTracker,
    total_sites: usize,
    top_band: usize,
    series: Vec<(BehaviorKind, Series)>,
    adoption_sum_by_provider: Vec<(ProviderId, f64)>,
    overall_rate_sum: f64,
    top_band_rate_sum: f64,
    cf_ns_sum: u64,
    cf_cname_sum: u64,
    first_day_rate: f64,
    last_day_rate: f64,
    fsm_states: Vec<DpsState>,
    fsm_violations: usize,
    multi_cdn: Vec<bool>,
    interval_hours: Vec<u64>,
    prev_taken_at: Option<SimTime>,
    prev_classes: Option<Vec<Adoption>>,
    rounds: u32,
}

impl SnapshotPasses {
    /// Creates a fold over a campaign of `total_sites` ranked targets.
    pub fn new(total_sites: usize) -> Self {
        SnapshotPasses {
            detector: BehaviorDetector::new(),
            pause_tracker: PauseTracker::new(),
            total_sites,
            top_band: (total_sites / 100).max(1),
            series: BehaviorKind::ALL
                .into_iter()
                .map(|k| (k, Series::new(k.to_string())))
                .collect(),
            adoption_sum_by_provider: ProviderId::ALL.into_iter().map(|p| (p, 0.0)).collect(),
            overall_rate_sum: 0.0,
            top_band_rate_sum: 0.0,
            cf_ns_sum: 0,
            cf_cname_sum: 0,
            first_day_rate: 0.0,
            last_day_rate: 0.0,
            fsm_states: Vec::new(),
            fsm_violations: 0,
            multi_cdn: vec![false; total_sites],
            interval_hours: Vec::new(),
            prev_taken_at: None,
            prev_classes: None,
            rounds: 0,
        }
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The detector the fold classifies with (fresh detectors over the
    /// standard catalog are interchangeable, so a classification cache
    /// can classify with this one or its own).
    pub fn detector(&self) -> &BehaviorDetector {
        &self.detector
    }

    /// Folds in one daily snapshot and returns the day's observed
    /// behaviors, already filtered of multi-CDN front-ends (empty on the
    /// first round — there is nothing to diff against).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not cover the configured site count.
    pub fn observe(&mut self, day: u32, snapshot: &DnsSnapshot) -> Vec<ObservedBehavior> {
        assert_eq!(
            snapshot.len(),
            self.total_sites,
            "snapshot covers the configured targets"
        );
        // One pass per block: classification and the multi-CDN filter
        // read the same records, so a spilled block is loaded once.
        let mut classes = Vec::with_capacity(snapshot.len());
        let mut multi_cdn_ranks = Vec::new();
        for loaded in snapshot.blocks() {
            let (block_classes, flagged) = self.detector.classify_block(&loaded.block);
            multi_cdn_ranks.extend(flagged.iter().map(|&i| loaded.base_rank + i as usize));
            classes.extend(block_classes);
        }
        self.observe_columns(day, snapshot.taken_at, classes, &multi_cdn_ranks)
    }

    /// [`observe`](SnapshotPasses::observe) over pre-classified columns:
    /// the per-site adoption column for the round plus the global ranks
    /// flagged as multi-CDN front-ends (Sec IV-B.3). This is the entry
    /// point for the per-shard classification cache — both the live
    /// delta-collection path and the query layer's `ClassifiedStore`
    /// feed cached columns through here, so the fold's arithmetic (and
    /// therefore every derived report) is shared, not re-implemented.
    ///
    /// # Panics
    ///
    /// Panics if the column does not cover the configured site count.
    pub fn observe_columns(
        &mut self,
        day: u32,
        taken_at: SimTime,
        classes: Vec<Adoption>,
        multi_cdn_ranks: &[usize],
    ) -> Vec<ObservedBehavior> {
        assert_eq!(
            classes.len(),
            self.total_sites,
            "columns cover the configured targets"
        );
        // Multi-CDN front-ends are identified by their balancer CNAMEs
        // and excluded from behavior analysis (Sec IV-B.3).
        for &rank in multi_cdn_ranks {
            self.multi_cdn[rank] = true;
        }

        // Adoption accumulation (Fig 2 / Fig 6).
        let adopted = classes.iter().filter(|c| c.is_adopted()).count();
        let rate = adopted as f64 / self.total_sites as f64;
        self.overall_rate_sum += rate;
        if self.rounds == 0 {
            self.first_day_rate = rate;
            self.fsm_states = classes.iter().map(adoption_to_state).collect();
        }
        self.last_day_rate = rate;
        let top_adopted = classes[..self.top_band]
            .iter()
            .filter(|c| c.is_adopted())
            .count();
        self.top_band_rate_sum += top_adopted as f64 / self.top_band as f64;
        for class in &classes {
            if let Some(provider) = class.provider {
                let slot = &mut self.adoption_sum_by_provider[provider.index()];
                debug_assert_eq!(slot.0, provider);
                slot.1 += 1.0;
                if provider == ProviderId::Cloudflare && class.status == DpsStatus::On {
                    match class.rerouting {
                        Some(ReroutingMethod::Ns) => self.cf_ns_sum += 1,
                        Some(ReroutingMethod::Cname) => self.cf_cname_sum += 1,
                        _ => {}
                    }
                }
            }
        }

        // Pause windows (Fig 5).
        self.pause_tracker.observe(taken_at, &classes);

        // The time between consecutive experiments is recoverable from
        // the snapshots themselves: only the between-round step advances
        // the virtual clock, so consecutive `taken_at` instants differ by
        // exactly the interval.
        if let Some(prev) = self.prev_taken_at {
            self.interval_hours.push(taken_at.since(prev).as_hours());
        }
        self.prev_taken_at = Some(taken_at);

        // Behaviors (Fig 3) + FSM validation (Fig 4).
        let mut behaviors = Vec::new();
        if let Some(prev) = &self.prev_classes {
            behaviors = self.detector.diff(prev, &classes);
            behaviors.retain(|b| !self.multi_cdn[b.rank]);
            for (kind, series) in &mut self.series {
                let count = behaviors.iter().filter(|b| b.kind == *kind).count();
                series.push(f64::from(day), count as f64);
            }
            for behavior in &behaviors {
                match fsm::apply(self.fsm_states[behavior.rank], behavior.kind, behavior.to) {
                    Ok(next) => self.fsm_states[behavior.rank] = next,
                    Err(_) => {
                        self.fsm_violations += 1;
                        self.fsm_states[behavior.rank] = adoption_to_state(&classes[behavior.rank]);
                    }
                }
            }
            // Re-anchor paused observations the FSM optimistically set
            // to ON (the paper's "joins start ON" assumption).
            for behavior in &behaviors {
                let observed = adoption_to_state(&classes[behavior.rank]);
                if self.fsm_states[behavior.rank].provider() == observed.provider() {
                    self.fsm_states[behavior.rank] = observed;
                }
            }
        }

        self.prev_classes = Some(classes);
        self.rounds += 1;
        behaviors
    }

    /// Finalizes the fold into the adoption, behavior and pause reports.
    pub fn finish(self) -> SnapshotAggregates {
        let days = f64::from(self.rounds.max(1));
        let mut adoption = AdoptionReport {
            total_sites: self.total_sites,
            days_observed: self.rounds,
            avg_by_provider: self
                .adoption_sum_by_provider
                .into_iter()
                .map(|(p, sum)| (p, sum / days))
                .collect(),
            overall_rate: self.overall_rate_sum / days,
            top_band_rate: self.top_band_rate_sum / days,
            first_day_rate: self.first_day_rate,
            last_day_rate: self.last_day_rate,
            ..AdoptionReport::default()
        };
        let cf_total = (self.cf_ns_sum + self.cf_cname_sum).max(1) as f64;
        adoption.cloudflare_ns_share = self.cf_ns_sum as f64 / cf_total;
        adoption.cloudflare_cname_share = self.cf_cname_sum as f64 / cf_total;

        let behaviors = BehaviorReport {
            series: self.series,
            interval_hours: self.interval_hours,
            fsm_violations: self.fsm_violations,
            multi_cdn_excluded: self.multi_cdn.iter().filter(|m| **m).count(),
        };

        #[allow(deprecated)]
        let pauses = PauseReport {
            overall: self.pause_tracker.cdf_overall(),
            cloudflare: self.pause_tracker.cdf_for(ProviderId::Cloudflare),
            incapsula: self.pause_tracker.cdf_for(ProviderId::Incapsula),
        };

        SnapshotAggregates {
            adoption,
            behaviors,
            pauses,
        }
    }
}

/// Maps an observed classification to an FSM state.
fn adoption_to_state(adoption: &Adoption) -> DpsState {
    match (adoption.status, adoption.provider) {
        (DpsStatus::On, Some(p)) => DpsState::On(p),
        (DpsStatus::Off, Some(p)) => DpsState::Off(p),
        _ => DpsState::None,
    }
}
