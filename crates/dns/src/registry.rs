//! The delegation registry — the collapsed root/TLD layer.
//!
//! When a website joins an NS-based DPS (e.g. Cloudflare), its administrator
//! "configures these nameservers as its authoritative nameservers via its
//! domain control panel" (Sec II-A.2). That control panel ultimately edits
//! the TLD zone. [`Registry`] collapses root + TLD into one component: it
//! stores, per registered apex domain, the delegation NS set with glue
//! addresses, and answers queries with referrals exactly like a TLD server.
//!
//! Crucially for the vulnerability: changing a delegation here does *not*
//! invalidate NS records already cached by resolvers — those keep pointing
//! at the previous DPS provider until their (long) TTL expires, which is why
//! providers keep answering (Sec VI-A).

use std::collections::BTreeMap;

use remnant_sim::SimTime;

use crate::authority::Authoritative;
use crate::message::{Query, Rcode, Response};
use crate::name::DomainName;
use crate::record::{RecordData, ResourceRecord, Ttl};

/// Default TTL for delegation NS records — two days, matching the long NS
/// TTLs the paper cites as the reason stale delegations persist (\[24\], \[25\]).
pub const DELEGATION_TTL: Ttl = Ttl::days(2);

/// One registered delegation: nameserver hostnames plus glue addresses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delegation {
    /// `(nameserver hostname, glue IPv4 address)` pairs.
    pub nameservers: Vec<(DomainName, std::net::Ipv4Addr)>,
    /// TTL applied to the NS and glue records.
    pub ttl: Ttl,
}

/// The root/TLD delegation registry.
///
/// # Example
///
/// ```
/// use remnant_dns::{DomainName, Registry};
///
/// let mut registry = Registry::new();
/// let apex: DomainName = "example.com".parse()?;
/// registry.delegate(apex.clone(), vec![("kate.ns.cloudflare.com".parse()?, "173.245.59.1".parse()?)]);
/// assert!(registry.delegation(&apex).is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    delegations: BTreeMap<DomainName, Delegation>,
    /// Per-apex delegation generation. Bumped on every `delegate`/`undelegate`
    /// and kept after removal, so re-registering an apex never repeats an old
    /// generation. Compared only for equality (see [`ZoneGenerationProbe`]).
    generations: BTreeMap<DomainName, u64>,
    queries_served: u64,
}

/// A cheap probe for "has this apex's authoritative data changed?".
///
/// Implementors return a generation counter per apex that changes whenever
/// the answers the authority would give for that apex could have changed.
/// Equal generations across two probes guarantee identical answers; the
/// numeric value carries no other meaning (no ordering, no deltas).
pub trait ZoneGenerationProbe {
    /// The current generation for one apex. Unknown apexes return 0.
    fn generation_of(&self, apex: &DomainName) -> u64;

    /// Batched probe over many apexes, in input order. The default loops
    /// over [`ZoneGenerationProbe::generation_of`]; implementors with a
    /// cheaper bulk path may override it.
    fn generations_for(&self, apexes: &[&DomainName]) -> Vec<u64> {
        apexes.iter().map(|apex| self.generation_of(apex)).collect()
    }
}

impl ZoneGenerationProbe for Registry {
    fn generation_of(&self, apex: &DomainName) -> u64 {
        self.generations.get(apex).copied().unwrap_or(0)
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or replaces) the delegation for `apex` with the default
    /// two-day TTL.
    pub fn delegate(
        &mut self,
        apex: DomainName,
        nameservers: Vec<(DomainName, std::net::Ipv4Addr)>,
    ) {
        self.delegate_with_ttl(apex, nameservers, DELEGATION_TTL);
    }

    /// Registers (or replaces) the delegation for `apex` with a custom TTL.
    pub fn delegate_with_ttl(
        &mut self,
        apex: DomainName,
        nameservers: Vec<(DomainName, std::net::Ipv4Addr)>,
        ttl: Ttl,
    ) {
        *self.generations.entry(apex.clone()).or_insert(0) += 1;
        self.delegations
            .insert(apex, Delegation { nameservers, ttl });
    }

    /// Removes the delegation for `apex`, returning it.
    pub fn undelegate(&mut self, apex: &DomainName) -> Option<Delegation> {
        let removed = self.delegations.remove(apex);
        if removed.is_some() {
            *self.generations.entry(apex.clone()).or_insert(0) += 1;
        }
        removed
    }

    /// The delegation for exactly `apex`, if registered.
    pub fn delegation(&self, apex: &DomainName) -> Option<&Delegation> {
        self.delegations.get(apex)
    }

    /// The registered apex covering `name` (longest registered suffix), with
    /// its delegation.
    pub fn covering_delegation(&self, name: &DomainName) -> Option<(DomainName, &Delegation)> {
        name.suffixes()
            .find_map(|suffix| self.delegations.get(&suffix).map(|d| (suffix.clone(), d)))
    }

    /// Number of registered apexes.
    pub fn len(&self) -> usize {
        self.delegations.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.delegations.is_empty()
    }

    /// Number of queries served via [`Authoritative::answer`].
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Builds the referral response for `query` against `apex`/`delegation`.
    fn referral_for(query: &Query, apex: &DomainName, delegation: &Delegation) -> Response {
        let authority = delegation
            .nameservers
            .iter()
            .map(|(host, _)| {
                ResourceRecord::new(apex.clone(), delegation.ttl, RecordData::Ns(host.clone()))
            })
            .collect::<Vec<_>>();
        let additional = delegation
            .nameservers
            .iter()
            .map(|(host, addr)| {
                ResourceRecord::new(host.clone(), delegation.ttl, RecordData::A(*addr))
            })
            .collect::<Vec<_>>();
        Response::referral(query.clone(), authority, additional)
    }
}

impl Authoritative for Registry {
    /// Answers like a TLD server: referrals for registered names, NXDOMAIN
    /// for unregistered ones. Never ignores a query — the registry models
    /// well-run TLD infrastructure.
    fn answer(&mut self, _now: SimTime, query: &Query) -> Option<Response> {
        self.queries_served += 1;
        match self.covering_delegation(&query.name) {
            Some((apex, delegation)) => Some(Self::referral_for(query, &apex, delegation)),
            None => Some(Response::empty(query.clone(), Rcode::NxDomain)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordType;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.delegate(
            name("example.com"),
            vec![
                (
                    name("kate.ns.cloudflare.com"),
                    Ipv4Addr::new(173, 245, 59, 1),
                ),
                (
                    name("rob.ns.cloudflare.com"),
                    Ipv4Addr::new(173, 245, 59, 2),
                ),
            ],
        );
        r
    }

    #[test]
    fn referral_includes_ns_and_glue() {
        let mut r = registry();
        let resp = r
            .answer(
                SimTime::EPOCH,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .unwrap();
        assert!(resp.is_referral());
        assert_eq!(resp.authority.len(), 2);
        assert_eq!(resp.additional.len(), 2);
        // NS owner is the apex, not the queried subdomain.
        assert_eq!(resp.authority[0].name, name("example.com"));
        assert_eq!(resp.authority[0].ttl, DELEGATION_TTL);
    }

    #[test]
    fn unregistered_is_nxdomain() {
        let mut r = registry();
        let resp = r
            .answer(
                SimTime::EPOCH,
                &Query::new(name("www.unknown.net"), RecordType::A),
            )
            .unwrap();
        assert_eq!(resp.rcode, Rcode::NxDomain);
    }

    #[test]
    fn redelegation_replaces() {
        let mut r = registry();
        r.delegate(
            name("example.com"),
            vec![(name("ns1.newdps.net"), Ipv4Addr::new(9, 9, 9, 9))],
        );
        let d = r.delegation(&name("example.com")).unwrap();
        assert_eq!(d.nameservers.len(), 1);
        assert_eq!(d.nameservers[0].0, name("ns1.newdps.net"));
    }

    #[test]
    fn undelegate_removes() {
        let mut r = registry();
        assert!(r.undelegate(&name("example.com")).is_some());
        assert!(r.is_empty());
        assert!(r.undelegate(&name("example.com")).is_none());
    }

    #[test]
    fn covering_delegation_prefers_longest_suffix() {
        let mut r = registry();
        r.delegate(
            name("sub.example.com"),
            vec![(name("ns.sub-host.net"), Ipv4Addr::new(8, 8, 8, 8))],
        );
        let (apex, _) = r.covering_delegation(&name("www.sub.example.com")).unwrap();
        assert_eq!(apex, name("sub.example.com"));
        let (apex, _) = r.covering_delegation(&name("www.example.com")).unwrap();
        assert_eq!(apex, name("example.com"));
    }

    #[test]
    fn generations_track_delegation_changes() {
        let mut r = Registry::new();
        let apex = name("example.com");
        let other = name("other.net");
        assert_eq!(r.generation_of(&apex), 0);
        r.delegate(
            apex.clone(),
            vec![(name("ns1.webhost1.net"), Ipv4Addr::new(1, 1, 1, 1))],
        );
        assert_eq!(r.generation_of(&apex), 1);
        // Re-delegation (provider switch) bumps again.
        r.delegate(
            apex.clone(),
            vec![(name("kate.ns.cloudflare.com"), Ipv4Addr::new(2, 2, 2, 2))],
        );
        assert_eq!(r.generation_of(&apex), 2);
        // Removal bumps; removing nothing does not.
        assert!(r.undelegate(&apex).is_some());
        assert_eq!(r.generation_of(&apex), 3);
        assert!(r.undelegate(&apex).is_none());
        assert_eq!(r.generation_of(&apex), 3);
        // Re-registration continues the counter instead of restarting it.
        r.delegate(
            apex.clone(),
            vec![(name("ns1.webhost1.net"), Ipv4Addr::new(1, 1, 1, 1))],
        );
        assert_eq!(r.generation_of(&apex), 4);
        // Batched probe preserves input order and defaults unknowns to 0.
        assert_eq!(r.generations_for(&[&other, &apex]), vec![0, 4]);
    }

    #[test]
    fn custom_ttl_is_used() {
        let mut r = Registry::new();
        r.delegate_with_ttl(
            name("fast.com"),
            vec![(name("ns.fast.com"), Ipv4Addr::new(1, 1, 1, 1))],
            Ttl::secs(60),
        );
        let mut r2 = r.clone();
        let resp = r2
            .answer(SimTime::EPOCH, &Query::new(name("fast.com"), RecordType::A))
            .unwrap();
        assert_eq!(resp.authority[0].ttl, Ttl::secs(60));
    }
}
