//! The origin-IP unchanged study (Sec IV-C.3, Table V).
//!
//! For every observed JOIN or RESUME: IP1 is the address the site resolved
//! to *before* the action (its then-exposed origin), IP2 the address it
//! resolves to *after* (a DPS edge). Fetching the landing page via IP2 and
//! directly from IP1 and comparing titles/meta decides whether the site
//! kept its origin address — the unsafe practice the paper quantifies at
//! 58.6% overall.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use remnant_http::HttpTransport;
use remnant_provider::ProviderId;
use remnant_sim::SimTime;
use remnant_world::BehaviorKind;

use crate::behavior::ObservedBehavior;
use crate::collector::Target;
use crate::snapshot::DnsSnapshot;
use crate::verify::{HtmlVerifier, VerifyOutcome};

/// Per-provider tally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnchangedTally {
    /// JOIN + RESUME events examined.
    pub events: u64,
    /// Events whose pre-action address still served the site (verified).
    pub unchanged: u64,
}

impl UnchangedTally {
    /// The unchanged rate, if any events were seen.
    pub fn rate(&self) -> Option<f64> {
        (self.events > 0).then(|| self.unchanged as f64 / self.events as f64)
    }
}

/// The streaming Table V study.
#[derive(Clone, Debug)]
pub struct UnchangedStudy {
    verifier: HtmlVerifier,
    tallies: BTreeMap<ProviderId, UnchangedTally>,
}

impl UnchangedStudy {
    /// Creates a study fetching from `scanner_src`.
    pub fn new(scanner_src: Ipv4Addr) -> Self {
        UnchangedStudy {
            verifier: HtmlVerifier::new(scanner_src),
            tallies: BTreeMap::new(),
        }
    }

    /// Examines one day's observed behaviors against the two snapshots
    /// that produced them.
    ///
    /// SWITCH is deliberately excluded (Sec IV-C.3: switching does not
    /// require an address change but is covered by the residual study).
    pub fn observe<T: HttpTransport>(
        &mut self,
        transport: &mut T,
        now: SimTime,
        targets: &[Target],
        behaviors: &[ObservedBehavior],
        prev: &DnsSnapshot,
        curr: &DnsSnapshot,
    ) {
        for behavior in behaviors {
            if !matches!(behavior.kind, BehaviorKind::Join | BehaviorKind::Resume) {
                continue;
            }
            let Some(provider) = behavior.to else {
                continue;
            };
            let Some(ip1) = prev.site(behavior.rank).and_then(|r| r.a.first().copied()) else {
                continue;
            };
            let Some(ip2) = curr.site(behavior.rank).and_then(|r| r.a.last().copied()) else {
                continue;
            };
            let host = targets[behavior.rank].1.as_str();
            let outcome = self.verifier.verify(transport, now, host, ip2, ip1);
            let tally = self.tallies.entry(provider).or_default();
            tally.events += 1;
            if outcome == VerifyOutcome::Verified {
                tally.unchanged += 1;
            }
        }
    }

    /// The tally for one provider.
    pub fn tally(&self, provider: ProviderId) -> UnchangedTally {
        self.tallies.get(&provider).copied().unwrap_or_default()
    }

    /// Table V rows: `(provider, events, unchanged, rate)` in catalog
    /// order, providers with no events omitted.
    pub fn rows(&self) -> Vec<(ProviderId, u64, u64, f64)> {
        ProviderId::ALL
            .into_iter()
            .filter_map(|p| {
                let t = self.tally(p);
                t.rate().map(|rate| (p, t.events, t.unchanged, rate))
            })
            .collect()
    }

    /// The bottom "Total" row of Table V.
    pub fn total(&self) -> UnchangedTally {
        let mut total = UnchangedTally::default();
        for tally in self.tallies.values() {
            total.events += tally.events;
            total.unchanged += tally.unchanged;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::RecordCollector;
    use crate::BehaviorDetector;
    use crate::SCANNER_SOURCE;
    use remnant_net::Region;
    use remnant_provider::{ReroutingMethod, ServicePlan};
    use remnant_world::{SiteState, World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig {
            population: 400,
            seed: 33,
            warmup_days: 0,
            calibration: remnant_world::Calibration::paper(),
        })
    }

    fn targets(world: &World) -> Vec<Target> {
        world
            .sites()
            .iter()
            .map(|s| (s.apex.clone(), s.www.clone()))
            .collect()
    }

    #[test]
    fn join_without_ip_change_counts_as_unchanged() {
        let mut w = world();
        let targets = targets(&w);
        let site = w
            .sites()
            .iter()
            .find(|s| s.state == SiteState::SelfHosted && !s.firewalled && !s.dynamic_meta)
            .unwrap()
            .clone();
        let mut collector = RecordCollector::new(w.clock(), Region::Ashburn);
        let detector = BehaviorDetector::new();

        let snap0 = collector.collect(&mut w, &targets, 0);
        // The site joins Cloudflare keeping its origin.
        w.force_join(
            site.id,
            ProviderId::Cloudflare,
            ReroutingMethod::Ns,
            ServicePlan::Free,
        );
        w.step_hours(24);
        let snap1 = collector.collect(&mut w, &targets, 1);

        let prev = detector.classify_snapshot(&snap0);
        let curr = detector.classify_snapshot(&snap1);
        let behaviors = detector.diff(&prev, &curr);
        assert!(behaviors
            .iter()
            .any(|b| b.rank == site.id.0 as usize && b.kind == BehaviorKind::Join));

        let now = w.now();
        let mut study = UnchangedStudy::new(SCANNER_SOURCE);
        study.observe(&mut w, now, &targets, &behaviors, &snap0, &snap1);
        let tally = study.tally(ProviderId::Cloudflare);
        assert!(tally.events >= 1);
        assert!(tally.unchanged >= 1, "origin kept and verifiable");
    }

    #[test]
    fn join_with_ip_change_counts_as_changed() {
        let mut w = world();
        let targets = targets(&w);
        let site = w
            .sites()
            .iter()
            .find(|s| s.state == SiteState::SelfHosted && !s.firewalled && !s.dynamic_meta)
            .unwrap()
            .clone();
        let mut collector = RecordCollector::new(w.clock(), Region::Ashburn);
        let detector = BehaviorDetector::new();

        let snap0 = collector.collect(&mut w, &targets, 0);
        w.force_join(
            site.id,
            ProviderId::Cloudflare,
            ReroutingMethod::Ns,
            ServicePlan::Free,
        );
        w.step_hours(24);
        let snap1 = collector.collect(&mut w, &targets, 1);

        let prev = detector.classify_snapshot(&snap0);
        let curr = detector.classify_snapshot(&snap1);
        let behaviors = detector.diff(&prev, &curr);
        let now = w.now();
        let mut study = UnchangedStudy::new(SCANNER_SOURCE);
        study.observe(&mut w, now, &targets, &behaviors, &snap0, &snap1);
        // Origin was kept in this variant, so it verifies; the changed-IP
        // path is exercised by the end-to-end study tests where the
        // dynamics engine rotates origins per Table V probabilities.
        assert!(study.total().events >= 1);
    }

    #[test]
    fn switches_are_excluded() {
        let mut w = world();
        let targets = targets(&w);
        let site = w
            .sites()
            .iter()
            .find(|s| {
                matches!(
                    s.state,
                    SiteState::Dps {
                        provider: ProviderId::Cloudflare,
                        paused: false,
                        ..
                    }
                )
            })
            .unwrap()
            .clone();
        let mut collector = RecordCollector::new(w.clock(), Region::Ashburn);
        let detector = BehaviorDetector::new();
        let snap0 = collector.collect(&mut w, &targets, 0);
        w.force_switch(
            site.id,
            ProviderId::Fastly,
            ReroutingMethod::Cname,
            ServicePlan::Pro,
            true,
        );
        w.step_hours(24);
        let snap1 = collector.collect(&mut w, &targets, 1);
        let behaviors = detector.diff(
            &detector.classify_snapshot(&snap0),
            &detector.classify_snapshot(&snap1),
        );
        assert!(behaviors
            .iter()
            .any(|b| b.rank == site.id.0 as usize && b.kind == BehaviorKind::Switch));
        let now = w.now();
        let mut study = UnchangedStudy::new(SCANNER_SOURCE);
        study.observe(&mut w, now, &targets, &behaviors, &snap0, &snap1);
        assert_eq!(study.total().events, 0, "SWITCH is excluded from Table V");
    }

    #[test]
    fn rates_and_rows() {
        let mut study = UnchangedStudy::new(SCANNER_SOURCE);
        study.tallies.insert(
            ProviderId::Cloudflare,
            UnchangedTally {
                events: 10,
                unchanged: 6,
            },
        );
        study.tallies.insert(
            ProviderId::Incapsula,
            UnchangedTally {
                events: 4,
                unchanged: 3,
            },
        );
        let rows = study.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, ProviderId::Cloudflare);
        assert!((rows[0].3 - 0.6).abs() < 1e-9);
        let total = study.total();
        assert_eq!(total.events, 14);
        assert_eq!(total.unchanged, 9);
        assert_eq!(UnchangedTally::default().rate(), None);
    }
}
