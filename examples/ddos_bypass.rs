//! The end-to-end threat model of Fig 1: a Tbps botnet is absorbed by the
//! victim's DPS, until the adversary extracts the origin address from the
//! victim's *previous* provider and floods it directly.
//!
//! Run with:
//! ```text
//! cargo run --release --example ddos_bypass
//! ```

use remnant::attack::bypass::RemnantProbe;
use remnant::attack::{Botnet, DdosAttack, ResidualBypassAttack};
use remnant::provider::{ProviderId, ReroutingMethod, ServicePlan};
use remnant::world::{SiteState, World, WorldConfig};

fn main() {
    let mut world = World::generate(WorldConfig::new(5_000, 1234));

    // Pick a Cloudflare NS-based customer as the victim.
    let victim = world
        .sites()
        .iter()
        .find(|s| {
            !s.firewalled
                && !s.dynamic_meta
                && matches!(
                    s.state,
                    SiteState::Dps {
                        provider: ProviderId::Cloudflare,
                        rerouting: ReroutingMethod::Ns,
                        paused: false,
                        ..
                    }
                )
        })
        .expect("cloudflare customer exists")
        .clone();
    println!(
        "victim: {} (origin {}, protected by Cloudflare)",
        victim.www, victim.origin
    );

    // Step 1: while protected, a Mirai-class flood on the edge fails.
    let botnet = Botnet::mirai_class();
    println!("attacker: {botnet}");
    let edge = world
        .provider(ProviderId::Cloudflare)
        .account(&victim.apex)
        .expect("enrolled")
        .edge;
    let frontal = DdosAttack::new(botnet, 0.5).launch(&world, edge);
    println!("frontal flood at edge {edge}: {frontal}");
    assert!(frontal.service_survives());

    // Step 2: the victim switches to Incapsula (keeping its origin — the
    // 90% case), informing Cloudflare, which keeps a remnant record.
    world.force_switch(
        victim.id,
        ProviderId::Incapsula,
        ReroutingMethod::Cname,
        ServicePlan::Pro,
        true,
    );
    world.step_days(3); // stale delegations age out of caches
    println!("\nvictim switched to Incapsula; public DNS now shows the new provider");

    // Step 3: the adversary interrogates the previous provider.
    let mut adversary = ResidualBypassAttack::new(&world, botnet);
    let report = adversary.execute(
        &mut world,
        &victim.www,
        ProviderId::Cloudflare,
        RemnantProbe::DirectNsQuery,
    );

    println!("public address  : {:?}", report.public_address);
    println!("leaked address  : {:?}", report.leaked_address);
    println!("leak verified   : {}", report.leak_verified);
    if let Some(outcome) = &report.frontal_attack {
        println!("frontal attack  : {outcome}");
    }
    if let Some(outcome) = &report.bypass_attack {
        println!("bypass attack   : {outcome}");
    }
    println!("\n{report}");
    assert!(report.bypass_succeeded(), "the remnant told the secret");
}
