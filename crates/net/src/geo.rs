//! Geographic regions and points of presence (PoPs).
//!
//! The paper's residual-resolution experiment queried Cloudflare's anycast
//! nameservers from five vantage points (Oregon, London, Sydney, Singapore,
//! Tokyo — Fig 7) to spread load across five PoPs of the provider's global
//! anycast infrastructure (100+ PoPs). [`Region`] enumerates the world
//! regions used for both vantage points and PoP placement; [`Pop`] is one
//! provider site.

use std::fmt;

/// A coarse world region used for vantage-point placement and anycast
/// catchment.
///
/// The first five variants are the paper's vantage-point regions (Fig 7);
/// the rest host additional provider PoPs so anycast has realistic spread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Region {
    /// US West (paper vantage point: Oregon).
    Oregon,
    /// Western Europe (paper vantage point: London).
    London,
    /// Oceania (paper vantage point: Sydney).
    Sydney,
    /// Southeast Asia (paper vantage point: Singapore).
    Singapore,
    /// East Asia (paper vantage point: Tokyo).
    Tokyo,
    /// US East.
    Ashburn,
    /// Central Europe.
    Frankfurt,
    /// South America.
    SaoPaulo,
    /// South Asia.
    Mumbai,
    /// East Asia (China periphery).
    HongKong,
}

impl Region {
    /// All regions, in stable order.
    pub const ALL: [Region; 10] = [
        Region::Oregon,
        Region::London,
        Region::Sydney,
        Region::Singapore,
        Region::Tokyo,
        Region::Ashburn,
        Region::Frankfurt,
        Region::SaoPaulo,
        Region::Mumbai,
        Region::HongKong,
    ];

    /// The paper's five vantage-point regions (Fig 7).
    pub const VANTAGE_POINTS: [Region; 5] = [
        Region::Oregon,
        Region::London,
        Region::Sydney,
        Region::Singapore,
        Region::Tokyo,
    ];

    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            Region::Oregon => "Oregon",
            Region::London => "London",
            Region::Sydney => "Sydney",
            Region::Singapore => "Singapore",
            Region::Tokyo => "Tokyo",
            Region::Ashburn => "Ashburn",
            Region::Frankfurt => "Frankfurt",
            Region::SaoPaulo => "Sao Paulo",
            Region::Mumbai => "Mumbai",
            Region::HongKong => "Hong Kong",
        }
    }

    /// A stable small integer for indexing.
    pub const fn index(self) -> usize {
        match self {
            Region::Oregon => 0,
            Region::London => 1,
            Region::Sydney => 2,
            Region::Singapore => 3,
            Region::Tokyo => 4,
            Region::Ashburn => 5,
            Region::Frankfurt => 6,
            Region::SaoPaulo => 7,
            Region::Mumbai => 8,
            Region::HongKong => 9,
        }
    }

    /// Preference order of fallback regions when a provider has no PoP in
    /// this region: nearby regions first. Deterministic and total — every
    /// other region appears exactly once.
    pub fn proximity_order(self) -> Vec<Region> {
        // Hand-written adjacency preferences; ties broken by stable order.
        let preferred: &[Region] = match self {
            Region::Oregon => &[Region::Ashburn, Region::Tokyo, Region::London],
            Region::London => &[Region::Frankfurt, Region::Ashburn, Region::Mumbai],
            Region::Sydney => &[Region::Singapore, Region::Tokyo, Region::HongKong],
            Region::Singapore => &[Region::HongKong, Region::Tokyo, Region::Mumbai],
            Region::Tokyo => &[Region::HongKong, Region::Singapore, Region::Oregon],
            Region::Ashburn => &[Region::Oregon, Region::London, Region::SaoPaulo],
            Region::Frankfurt => &[Region::London, Region::Mumbai, Region::Ashburn],
            Region::SaoPaulo => &[Region::Ashburn, Region::Oregon, Region::London],
            Region::Mumbai => &[Region::Singapore, Region::Frankfurt, Region::HongKong],
            Region::HongKong => &[Region::Singapore, Region::Tokyo, Region::Mumbai],
        };
        let mut order: Vec<Region> = preferred.to_vec();
        for r in Region::ALL {
            if r != self && !order.contains(&r) {
                order.push(r);
            }
        }
        order
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier of one provider PoP, unique within that provider.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PopId(pub u32);

impl fmt::Display for PopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pop{}", self.0)
    }
}

/// One point of presence: a provider site hosting edge servers, a scrubbing
/// center, and (for anycast DNS providers) nameserver instances.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pop {
    id: PopId,
    region: Region,
    name: String,
}

impl Pop {
    /// Creates a PoP.
    pub fn new(id: PopId, region: Region, name: impl Into<String>) -> Self {
        Pop {
            id,
            region,
            name: name.into(),
        }
    }

    /// The PoP's identifier.
    pub const fn id(&self) -> PopId {
        self.id
    }

    /// The region the PoP sits in.
    pub const fn region(&self) -> Region {
        self.region
    }

    /// The PoP's human-readable name (e.g. "cloudflare-lhr-1").
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Pop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn vantage_points_match_paper() {
        let names: Vec<&str> = Region::VANTAGE_POINTS.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec!["Oregon", "London", "Sydney", "Singapore", "Tokyo"]
        );
    }

    #[test]
    fn indices_are_unique_and_dense() {
        let idx: BTreeSet<usize> = Region::ALL.iter().map(|r| r.index()).collect();
        assert_eq!(idx.len(), Region::ALL.len());
        assert_eq!(*idx.iter().max().unwrap(), Region::ALL.len() - 1);
    }

    #[test]
    fn proximity_order_is_a_permutation_of_others() {
        for region in Region::ALL {
            let order = region.proximity_order();
            assert_eq!(order.len(), Region::ALL.len() - 1, "{region}");
            assert!(!order.contains(&region), "{region} must not prefer itself");
            let set: BTreeSet<Region> = order.iter().copied().collect();
            assert_eq!(set.len(), order.len(), "{region} has duplicates");
        }
    }

    #[test]
    fn pop_accessors() {
        let pop = Pop::new(PopId(3), Region::London, "cf-lhr-3");
        assert_eq!(pop.id(), PopId(3));
        assert_eq!(pop.region(), Region::London);
        assert_eq!(pop.name(), "cf-lhr-3");
        assert_eq!(pop.to_string(), "cf-lhr-3 (London)");
    }
}
