//! The daily DNS record collector (Sec IV-B.1).
//!
//! "we set a recursive DNS resolver inside Amazon EC2 ... and send DNS
//! queries for the tested domains to obtain their A, CNAME, and NS records.
//! ... we purge the DNS cache of the resolver before performing each
//! experiment."

use remnant_dns::{
    CountingTransport, DnsTransport, DomainName, Instrumented, RecordType, RecursiveResolver,
    ShardableTransport,
};
use remnant_engine::{ScanEngine, SweepStats, TaskResult};
use remnant_net::Region;
use remnant_sim::SimClock;

use crate::snapshot::{DnsSnapshot, SiteRecords};

/// A collection target: `(apex, www host)`.
pub type Target = (DomainName, DomainName);

/// The record collector: a cache-purging recursive resolver sweeping the
/// target list.
#[derive(Debug)]
pub struct RecordCollector {
    clock: SimClock,
    region: Region,
    resolver: RecursiveResolver,
    rounds: u32,
}

impl RecordCollector {
    /// Creates a collector resolving from `region` (the paper used
    /// us-east-1, our [`Region::Ashburn`]).
    pub fn new(clock: SimClock, region: Region) -> Self {
        RecordCollector {
            resolver: RecursiveResolver::new(clock.clone(), region),
            clock,
            region,
            rounds: 0,
        }
    }

    /// Number of collection rounds performed.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Collects one snapshot over `targets`, purging the resolver cache
    /// first so the round is independent of the previous one.
    ///
    /// Per-site failures (timeouts, NXDOMAIN) are recorded as empty
    /// [`SiteRecords`] — one dead site must not abort a million-site sweep.
    pub fn collect<T: DnsTransport>(
        &mut self,
        transport: &mut T,
        targets: &[Target],
        day: u32,
    ) -> DnsSnapshot {
        self.resolver.purge_cache();
        self.rounds += 1;
        let mut snapshot = DnsSnapshot::new(self.clock.now(), day, targets.len());
        for (apex, www) in targets {
            snapshot
                .records
                .push(self.collect_site(transport, apex, www));
        }
        snapshot
    }

    /// Collects one snapshot over `targets` through `engine`, sharding the
    /// target list over the engine's workers.
    ///
    /// Every shard resolves through its own fresh [`RecursiveResolver`], so
    /// each is as cold as a freshly purged cache and the snapshot is
    /// bit-identical for every worker count. The returned [`SweepStats`]
    /// carry per-shard query counts and wall times, and each shard's
    /// resolver exports its full counter surface (per-qtype queries,
    /// delegation depths, cache hits/misses/expirations) into the shard's
    /// metrics once at shard end — off the per-item hot path.
    pub fn collect_with<T: ShardableTransport>(
        &mut self,
        engine: &ScanEngine,
        transport: &T,
        targets: &[Target],
        day: u32,
    ) -> (DnsSnapshot, SweepStats) {
        self.rounds += 1;
        let clock = self.clock.clone();
        let region = self.region;
        let sweep = engine.sweep_with_finish(
            transport,
            targets,
            |_shard| RecursiveResolver::new(clock.clone(), region),
            |transport, resolver, scope, _rank, (apex, www)| {
                let mut counting = CountingTransport::new(transport);
                let (hits_before, misses_before) = resolver.cache().stats();
                let records = resolve_site(resolver, &mut counting, apex, www);
                let (hits_after, misses_after) = resolver.cache().stats();
                scope.add_queries(counting.query_stats().sent);
                scope.add_cache_stats(hits_after - hits_before, misses_after - misses_before);
                TaskResult::Done(records)
            },
            |resolver, scope| resolver.export_into(scope.metrics()),
        );
        let mut snapshot = DnsSnapshot::new(self.clock.now(), day, targets.len());
        snapshot.records = sweep.outputs;
        (snapshot, sweep.stats)
    }

    /// Collects A + CNAME chain for the www host and NS for the apex.
    fn collect_site<T: DnsTransport>(
        &mut self,
        transport: &mut T,
        apex: &DomainName,
        www: &DomainName,
    ) -> SiteRecords {
        resolve_site(&mut self.resolver, transport, apex, www)
    }
}

/// The per-site record collection both paths share: A + CNAME chain for the
/// www host, NS for the apex.
fn resolve_site<T: DnsTransport>(
    resolver: &mut RecursiveResolver,
    transport: &mut T,
    apex: &DomainName,
    www: &DomainName,
) -> SiteRecords {
    let mut records = SiteRecords::default();
    if let Ok(res) = resolver.resolve(transport, www, RecordType::A) {
        records.a = res.addresses();
        records.cnames = res.cnames();
    }
    if let Ok(res) = resolver.resolve(transport, apex, RecordType::Ns) {
        records.ns = res.ns_hosts();
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use remnant_world::{World, WorldConfig};

    fn tiny_world() -> World {
        World::generate(WorldConfig {
            population: 200,
            seed: 9,
            warmup_days: 0,
            calibration: remnant_world::Calibration::paper(),
        })
    }

    fn targets(world: &World) -> Vec<Target> {
        world
            .sites()
            .iter()
            .map(|s| (s.apex.clone(), s.www.clone()))
            .collect()
    }

    #[test]
    fn collects_every_site() {
        let mut world = tiny_world();
        let targets = targets(&world);
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        let snapshot = collector.collect(&mut world, &targets, 0);
        assert_eq!(snapshot.records.len(), 200);
        assert_eq!(snapshot.resolved_count(), 200, "every site resolves");
        assert_eq!(collector.rounds(), 1);
    }

    #[test]
    fn self_hosted_records_point_at_origin_with_hosting_ns() {
        let mut world = tiny_world();
        let site = world
            .sites()
            .iter()
            .find(|s| s.state == remnant_world::SiteState::SelfHosted)
            .unwrap()
            .clone();
        let targets = targets(&world);
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        let snapshot = collector.collect(&mut world, &targets, 0);
        let records = snapshot.site(site.id.0 as usize).unwrap();
        assert_eq!(records.a, vec![site.origin]);
        assert!(records.cnames.is_empty());
        assert_eq!(records.ns.len(), 2);
        assert!(records.ns[0].contains_label_substring("webhost"));
    }

    #[test]
    fn cname_customers_show_their_token_chain() {
        let mut world = tiny_world();
        let site = world
            .sites()
            .iter()
            .find(|s| {
                matches!(
                    s.state,
                    remnant_world::SiteState::Dps {
                        rerouting: remnant_provider::ReroutingMethod::Cname,
                        paused: false,
                        ..
                    }
                )
            })
            .unwrap()
            .clone();
        let targets = targets(&world);
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        let snapshot = collector.collect(&mut world, &targets, 0);
        let records = snapshot.site(site.id.0 as usize).unwrap();
        assert_eq!(records.cnames.len(), 1, "CNAME chain captured");
        assert!(!records.a.is_empty());
    }

    #[test]
    fn sharded_collection_matches_sequential() {
        use remnant_engine::EngineConfig;

        let mut world = tiny_world();
        let targets = targets(&world);
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        let sequential = collector.collect(&mut world, &targets, 0);

        let engine = |workers| {
            ScanEngine::new(EngineConfig {
                workers,
                shard_size: 32,
                seed: 1,
                ..EngineConfig::default()
            })
        };
        let (snap1, stats1) = collector.collect_with(&engine(1), &world, &targets, 0);
        let (snap4, stats4) = collector.collect_with(&engine(4), &world, &targets, 0);
        assert_eq!(
            sequential.records, snap1.records,
            "engine path sees the same records"
        );
        assert_eq!(
            snap1.records, snap4.records,
            "worker count never changes the snapshot"
        );
        assert_eq!(
            stats1.shards, stats4.shards,
            "per-shard counters are worker-invariant"
        );
        assert!(stats1.queries() > 0);
        assert_eq!(collector.rounds(), 3);

        // The finish hook exported each shard's resolver telemetry, and the
        // merged registry is worker-invariant like everything else.
        let merged1 = stats1.merged_metrics();
        let merged4 = stats4.merged_metrics();
        assert_eq!(merged1, merged4, "resolver metrics are worker-invariant");
        let a_queries: u64 = merged1
            .counters_named("resolver.queries")
            .filter(|(k, _)| k.label("qtype") == Some("A"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(a_queries, targets.len() as u64, "one A lookup per site");
    }

    #[test]
    fn rounds_are_independent_after_purge() {
        let mut world = tiny_world();
        let targets = targets(&world);
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        let s1 = collector.collect(&mut world, &targets, 0);
        let (q_after_first, _) = world.traffic_stats();
        let s2 = collector.collect(&mut world, &targets, 1);
        let (q_after_second, _) = world.traffic_stats();
        assert_eq!(
            s1.records, s2.records,
            "static world yields identical rounds"
        );
        // The purge forces real re-resolution (roughly as many queries).
        assert!(q_after_second - q_after_first > targets.len() as u64);
    }
}
