//! HTML landing pages: templates, rendering, generation.

use std::collections::BTreeMap;
use std::fmt;

use remnant_sim::SeedSeq;

/// A rendered HTML document: the parts the paper's verifier inspects
/// (title and meta tags) plus the raw markup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HtmlDocument {
    /// `<title>` content.
    pub title: String,
    /// `<meta name="..." content="...">` pairs, in name order.
    pub meta: BTreeMap<String, String>,
    /// Full rendered markup.
    pub raw: String,
}

impl fmt::Display for HtmlDocument {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

/// A landing-page template: static title/meta/body plus optional *dynamic*
/// meta keys whose values change on every request (the paper's
/// false-negative source for HTML verification).
///
/// # Example
///
/// ```
/// use remnant_http::PageTemplate;
///
/// let mut template = PageTemplate::generate("shop-site.com", 42);
/// template.add_dynamic_meta("csrf-token");
/// let a = template.render(1);
/// let b = template.render(2);
/// assert_eq!(a.title, b.title);
/// assert_ne!(a.meta["csrf-token"], b.meta["csrf-token"]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageTemplate {
    title: String,
    static_meta: BTreeMap<String, String>,
    dynamic_meta: Vec<String>,
    body: String,
}

impl PageTemplate {
    /// Creates a template from explicit parts.
    pub fn new(
        title: impl Into<String>,
        static_meta: BTreeMap<String, String>,
        body: impl Into<String>,
    ) -> Self {
        PageTemplate {
            title: title.into(),
            static_meta,
            dynamic_meta: Vec::new(),
            body: body.into(),
        }
    }

    /// Deterministically generates a realistic landing page for `domain`.
    /// The same `(domain, seed)` always yields the same template; different
    /// domains yield distinguishable titles and meta sets.
    pub fn generate(domain: &str, seed: u64) -> Self {
        let seq = SeedSeq::new(seed).child(domain);
        let sld = domain.split('.').next().unwrap_or(domain);
        let flavor = FLAVORS[(seq.derive("flavor") % FLAVORS.len() as u64) as usize];
        let title = format!("{} — {}", capitalize(sld), flavor);
        let mut static_meta = BTreeMap::new();
        static_meta.insert(
            "description".to_owned(),
            format!(
                "{flavor} by {sld}; established site #{:06x}",
                seq.derive("id") & 0xff_ffff
            ),
        );
        static_meta.insert(
            "keywords".to_owned(),
            format!(
                "{sld},{},{}",
                flavor.to_ascii_lowercase(),
                KEYWORDS[(seq.derive("kw") % KEYWORDS.len() as u64) as usize]
            ),
        );
        static_meta.insert(
            "generator".to_owned(),
            GENERATORS[(seq.derive("gen") % GENERATORS.len() as u64) as usize].to_owned(),
        );
        static_meta.insert("og:site_name".to_owned(), capitalize(sld));
        let body = format!(
            "<h1>Welcome to {sld}</h1><p>{flavor}.</p><p>ref {:08x}</p>",
            seq.derive("body")
        );
        PageTemplate::new(title, static_meta, body)
    }

    /// The page title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Declares `key` as a dynamic meta tag: each render gets a different
    /// value for it.
    pub fn add_dynamic_meta(&mut self, key: impl Into<String>) {
        self.dynamic_meta.push(key.into());
    }

    /// True if the template has any dynamic meta tags.
    pub fn has_dynamic_meta(&self) -> bool {
        !self.dynamic_meta.is_empty()
    }

    /// Renders a concrete document. `nonce` feeds the dynamic meta values
    /// (real servers use timestamps, visitor IDs, CSRF tokens, …).
    pub fn render(&self, nonce: u64) -> HtmlDocument {
        let mut meta = self.static_meta.clone();
        for key in &self.dynamic_meta {
            let value = SeedSeq::new(nonce).derive(key);
            meta.insert(key.clone(), format!("{value:016x}"));
        }
        let meta_markup: String = meta
            .iter()
            .map(|(k, v)| format!("<meta name=\"{k}\" content=\"{v}\">"))
            .collect();
        let raw = format!(
            "<!doctype html><html><head><title>{}</title>{}</head><body>{}</body></html>",
            self.title, meta_markup, self.body
        );
        HtmlDocument {
            title: self.title.clone(),
            meta,
            raw,
        }
    }
}

/// Site flavors for generated titles.
const FLAVORS: [&str; 8] = [
    "Online Store",
    "News & Media",
    "Community Forum",
    "Tech Blog",
    "Travel Portal",
    "Game Hub",
    "Finance Tracker",
    "Photo Gallery",
];

/// Keyword fillers for generated meta.
const KEYWORDS: [&str; 6] = ["shop", "news", "forum", "blog", "travel", "games"];

/// Generator strings (CMS fingerprints) for generated meta.
const GENERATORS: [&str; 5] = [
    "WordPress 4.9",
    "Drupal 8",
    "Joomla 3.8",
    "Hugo 0.36",
    "custom",
];

/// Uppercases the first ASCII character.
fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_ascii_uppercase().to_string() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = PageTemplate::generate("example.com", 1);
        let b = PageTemplate::generate("example.com", 1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_domains_get_different_pages() {
        let a = PageTemplate::generate("alpha.com", 1);
        let b = PageTemplate::generate("beta.com", 1);
        assert_ne!(a.render(0).title, b.render(0).title);
    }

    #[test]
    fn static_renders_are_nonce_independent() {
        let t = PageTemplate::generate("example.com", 1);
        assert_eq!(t.render(1), t.render(99));
        assert!(!t.has_dynamic_meta());
    }

    #[test]
    fn dynamic_meta_varies_per_render() {
        let mut t = PageTemplate::generate("example.com", 1);
        t.add_dynamic_meta("visitor-id");
        assert!(t.has_dynamic_meta());
        let a = t.render(1);
        let b = t.render(2);
        assert_eq!(a.title, b.title);
        assert_ne!(a.meta["visitor-id"], b.meta["visitor-id"]);
        // Same nonce reproduces the same value.
        assert_eq!(t.render(5), t.render(5));
    }

    #[test]
    fn render_embeds_title_and_meta_in_markup() {
        let t = PageTemplate::generate("example.com", 1);
        let doc = t.render(0);
        assert!(doc.raw.contains(&format!("<title>{}</title>", doc.title)));
        for (k, v) in &doc.meta {
            assert!(doc.raw.contains(&format!("name=\"{k}\" content=\"{v}\"")));
        }
    }

    #[test]
    fn generated_meta_has_expected_keys() {
        let doc = PageTemplate::generate("example.com", 3).render(0);
        for key in ["description", "keywords", "generator", "og:site_name"] {
            assert!(doc.meta.contains_key(key), "missing {key}");
        }
    }

    #[test]
    fn capitalize_edge_cases() {
        assert_eq!(capitalize(""), "");
        assert_eq!(capitalize("x"), "X");
        assert_eq!(capitalize("abc"), "Abc");
    }
}
