//! DNS queries and responses (typed, not wire-format).

use std::fmt;
use std::net::Ipv4Addr;

use crate::name::DomainName;
use crate::record::{empty_record_set, RecordSet, RecordType, ResourceRecord};

/// A single-question DNS query.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    /// Queried name.
    pub name: DomainName,
    /// Queried type.
    pub rtype: RecordType,
}

impl Query {
    /// Creates a query.
    pub fn new(name: DomainName, rtype: RecordType) -> Self {
        Query { name, rtype }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}?", self.name, self.rtype)
    }
}

/// DNS response codes used in the simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rcode {
    /// Success (possibly with an empty answer section — NODATA).
    #[default]
    NoError,
    /// The queried name does not exist.
    NxDomain,
    /// The server refuses to answer for this name.
    Refused,
    /// Internal server failure.
    ServFail,
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rcode::NoError => "NOERROR",
            Rcode::NxDomain => "NXDOMAIN",
            Rcode::Refused => "REFUSED",
            Rcode::ServFail => "SERVFAIL",
        };
        f.write_str(s)
    }
}

/// A DNS response with the three standard record sections.
///
/// Sections are shared [`RecordSet`]s: a zone answer, a cache insert and a
/// `Resolution` chain can all reference one allocation. Constructors accept
/// anything `Into<RecordSet>`, so `vec![rr]` call sites keep working.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The query being answered.
    pub query: Query,
    /// Response code.
    pub rcode: Rcode,
    /// True if this server is authoritative for the answer.
    pub authoritative: bool,
    /// Answer section.
    pub answers: RecordSet,
    /// Authority section (NS records at a zone cut, or SOA for negatives).
    pub authority: RecordSet,
    /// Additional section (e.g. glue A records for authority NS hosts).
    pub additional: RecordSet,
}

impl Response {
    /// A successful authoritative answer.
    pub fn answer(query: Query, answers: impl Into<RecordSet>) -> Self {
        Response {
            query,
            rcode: Rcode::NoError,
            authoritative: true,
            answers: answers.into(),
            authority: empty_record_set(),
            additional: empty_record_set(),
        }
    }

    /// An empty authoritative response with the given code (NXDOMAIN,
    /// NODATA via `NoError`, REFUSED, …).
    pub fn empty(query: Query, rcode: Rcode) -> Self {
        Response {
            query,
            rcode,
            authoritative: true,
            answers: empty_record_set(),
            authority: empty_record_set(),
            additional: empty_record_set(),
        }
    }

    /// A referral to another zone: NS records in the authority section and
    /// glue addresses in the additional section.
    pub fn referral(
        query: Query,
        authority: impl Into<RecordSet>,
        additional: impl Into<RecordSet>,
    ) -> Self {
        Response {
            query,
            rcode: Rcode::NoError,
            authoritative: false,
            answers: empty_record_set(),
            authority: authority.into(),
            additional: additional.into(),
        }
    }

    /// True if this is a referral (no answers, NS records in authority).
    pub fn is_referral(&self) -> bool {
        self.rcode == Rcode::NoError
            && self.answers.is_empty()
            && self
                .authority
                .iter()
                .any(|rr| rr.record_type() == RecordType::Ns)
    }

    /// All IPv4 addresses in the answer section.
    pub fn answer_addresses(&self) -> Vec<Ipv4Addr> {
        self.answers
            .iter()
            .filter_map(|rr| rr.data.as_a())
            .collect()
    }

    /// The first CNAME target in the answer section, if any.
    pub fn answer_cname(&self) -> Option<&DomainName> {
        self.answers.iter().find_map(|rr| rr.data.as_cname())
    }

    /// Records of `rtype` in the answer section.
    pub fn answers_of(&self, rtype: RecordType) -> impl Iterator<Item = &ResourceRecord> {
        self.answers
            .iter()
            .filter(move |rr| rr.record_type() == rtype)
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} ({} answers, {} authority, {} additional)",
            self.query,
            self.rcode,
            self.answers.len(),
            self.authority.len(),
            self.additional.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordData, Ttl};

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    fn a(owner: &str, ip: [u8; 4]) -> ResourceRecord {
        ResourceRecord::new(name(owner), Ttl::secs(60), RecordData::A(ip.into()))
    }

    #[test]
    fn answer_helpers() {
        let q = Query::new(name("www.example.com"), RecordType::A);
        let resp = Response::answer(
            q.clone(),
            vec![
                a("www.example.com", [1, 2, 3, 4]),
                a("www.example.com", [5, 6, 7, 8]),
            ],
        );
        assert!(resp.authoritative);
        assert_eq!(resp.answer_addresses().len(), 2);
        assert_eq!(resp.answer_cname(), None);
        assert_eq!(resp.answers_of(RecordType::A).count(), 2);
        assert!(!resp.is_referral());
    }

    #[test]
    fn cname_answer_detected() {
        let q = Query::new(name("www.example.com"), RecordType::A);
        let rr = ResourceRecord::new(
            name("www.example.com"),
            Ttl::secs(300),
            RecordData::Cname(name("x.incapdns.net")),
        );
        let resp = Response::answer(q, vec![rr]);
        assert_eq!(resp.answer_cname(), Some(&name("x.incapdns.net")));
        assert!(resp.answer_addresses().is_empty());
    }

    #[test]
    fn referral_detection() {
        let q = Query::new(name("www.example.com"), RecordType::A);
        let ns = ResourceRecord::new(
            name("example.com"),
            Ttl::days(2),
            RecordData::Ns(name("kate.ns.cloudflare.com")),
        );
        let glue = a("kate.ns.cloudflare.com", [173, 245, 59, 1]);
        let resp = Response::referral(q, vec![ns], vec![glue]);
        assert!(resp.is_referral());
        assert!(!resp.authoritative);
    }

    #[test]
    fn empty_rcodes() {
        let q = Query::new(name("gone.example.com"), RecordType::A);
        let resp = Response::empty(q.clone(), Rcode::NxDomain);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert!(!Response::empty(q, Rcode::Refused).is_referral());
    }

    #[test]
    fn display_formats() {
        let q = Query::new(name("example.com"), RecordType::Ns);
        assert_eq!(q.to_string(), "example.com NS?");
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
    }
}
