//! Property tests for provider customer lifecycles: arbitrary sequences of
//! control-plane operations must keep the provider's answers consistent
//! with its residual policy.

use proptest::prelude::*;

use remnant_dns::{Authoritative, DomainName, Query, RecordType};
use remnant_provider::{DpsProvider, ProviderId, ReroutingMethod, ServicePlan, ServiceStatus};
use remnant_sim::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// One control-plane action.
#[derive(Clone, Copy, Debug)]
enum Op {
    Enroll,
    Pause,
    Resume,
    UpdateOrigin,
    TerminateInformed,
    TerminateUninformed,
    AdvanceDays(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Enroll),
        Just(Op::Pause),
        Just(Op::Resume),
        Just(Op::UpdateOrigin),
        Just(Op::TerminateInformed),
        Just(Op::TerminateUninformed),
        (1u8..20).prop_map(Op::AdvanceDays),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lifecycle_never_breaks_answer_invariants(
        ops in prop::collection::vec(op_strategy(), 1..40),
        seed in 0u64..1000,
    ) {
        let mut provider = DpsProvider::build(ProviderId::Cloudflare, seed);
        let domain: DomainName = "victim.com".parse().unwrap();
        let www: DomainName = "www.victim.com".parse().unwrap();
        let mut now = SimTime::EPOCH;
        let mut origin = Ipv4Addr::new(100, 64, 9, 1);
        let mut origin_counter = 1u8;
        let mut enrolled = false;

        for op in ops {
            match op {
                Op::Enroll
                    if !enrolled => {
                        provider
                            .enroll(now, &domain, origin, ServicePlan::Free, ReroutingMethod::Ns)
                            .unwrap();
                        enrolled = true;
                    }
                Op::Pause if enrolled => provider.pause(&domain).unwrap(),
                Op::Resume if enrolled => provider.resume(&domain).unwrap(),
                Op::UpdateOrigin if enrolled => {
                    origin_counter = origin_counter.wrapping_add(1);
                    origin = Ipv4Addr::new(100, 64, 9, origin_counter.max(1));
                    provider.update_origin(&domain, origin).unwrap();
                }
                Op::TerminateInformed if enrolled => {
                    provider.terminate(now, &domain, true).unwrap();
                    enrolled = false;
                }
                Op::TerminateUninformed if enrolled => {
                    provider.terminate(now, &domain, false).unwrap();
                    enrolled = false;
                }
                Op::AdvanceDays(d) => now += SimDuration::days(u64::from(d)),
                _ => {}
            }

            // Invariants after every step.
            let answer = provider.answer(now, &Query::new(www.clone(), RecordType::A));
            match (enrolled, provider.account(&domain).map(|a| a.status)) {
                (true, Some(ServiceStatus::Active)) => {
                    // Active: an edge address, never the origin.
                    let addrs = answer.expect("active customers are answered").answer_addresses();
                    prop_assert_eq!(addrs.len(), 1);
                    prop_assert!(provider.is_edge_address(addrs[0]));
                    prop_assert_ne!(addrs[0], origin);
                }
                (true, Some(ServiceStatus::Paused)) => {
                    // Paused: exactly the current origin.
                    let addrs = answer.expect("paused customers are answered").answer_addresses();
                    prop_assert_eq!(addrs, vec![origin]);
                }
                (false, _) => {
                    // Terminated: either silence (purged / never stored) or
                    // a remnant answer consistent with its record.
                    if let Some(response) = answer {
                        let addrs = response.answer_addresses();
                        prop_assert_eq!(addrs.len(), 1);
                        let record = provider.residual(&domain).expect("answer implies remnant");
                        prop_assert!(record.is_live(now));
                        prop_assert_eq!(addrs[0], record.answer_address());
                        if record.informed {
                            prop_assert!(
                                !provider.is_edge_address(addrs[0]),
                                "informed remnants answer the stored origin"
                            );
                        } else {
                            prop_assert!(
                                provider.is_edge_address(addrs[0]),
                                "uninformed remnants keep the edge config"
                            );
                        }
                    }
                }
                (true, None) => prop_assert!(false, "enrolled implies account"),
            }
        }
    }

    #[test]
    fn remnant_lifetime_respects_plan_policy(
        plan_idx in 0usize..4,
        probe_days in prop::collection::btree_set(1u64..120, 1..8),
    ) {
        let plan = ServicePlan::ALL[plan_idx];
        let mut provider = DpsProvider::build(ProviderId::Cloudflare, 7);
        let domain: DomainName = "victim.com".parse().unwrap();
        let www: DomainName = "www.victim.com".parse().unwrap();
        let origin = Ipv4Addr::new(100, 64, 1, 1);
        provider
            .enroll(SimTime::EPOCH, &domain, origin, plan, ReroutingMethod::Ns)
            .unwrap();
        provider.terminate(SimTime::EPOCH, &domain, true).unwrap();
        let purge_after = provider.policy().purge_after(plan);

        for day in probe_days {
            let when = SimTime::from_days(day);
            let answered = provider
                .answer(when, &Query::new(www.clone(), RecordType::A))
                .is_some_and(|r| !r.answers.is_empty());
            let expected = match purge_after {
                None => true,
                Some(window) => when < SimTime::EPOCH + window,
            };
            prop_assert_eq!(answered, expected, "day {}: plan {}", day, plan);
        }
    }
}
