//! Named configuration-validation errors.
//!
//! The engine sits at the bottom of the workspace's dependency graph, so
//! the shared builder-validation error lives here and the higher layers
//! (`remnant-core`'s `StudyConfig`, the `repro` CLI) re-export it — one
//! type, one rendering, everywhere a builder rejects a field.

use std::error::Error;
use std::fmt;

/// A named configuration-validation failure: which field, what value, and
/// why it was rejected — so a bad builder call reads like the `repro`
/// CLI's bad-flag errors instead of leaving the caller guessing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigFieldError {
    /// The rejected field's name.
    pub field: &'static str,
    /// The offending value, rendered.
    pub value: String,
    /// Why the value was rejected.
    pub reason: &'static str,
}

impl ConfigFieldError {
    /// Creates an error for `field` holding `value`, rejected for `reason`.
    pub fn new(field: &'static str, value: impl fmt::Display, reason: &'static str) -> Self {
        ConfigFieldError {
            field,
            value: value.to_string(),
            reason,
        }
    }
}

impl fmt::Display for ConfigFieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid value for {}: '{}' ({})",
            self.field, self.value, self.reason
        )
    }
}

impl Error for ConfigFieldError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_field_value_and_reason() {
        let err = ConfigFieldError::new("workers", 0, "at least one worker thread is required");
        assert_eq!(err.field, "workers");
        assert_eq!(err.value, "0");
        assert_eq!(
            err.to_string(),
            "invalid value for workers: '0' (at least one worker thread is required)"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ConfigFieldError>();
    }
}
