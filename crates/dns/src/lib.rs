//! Simulated DNS ecosystem.
//!
//! The entire study — both the authors' measurement pipeline and the
//! residual-resolution vulnerability itself — lives inside the DNS. This
//! crate implements the pieces of the DNS ecosystem the paper interacts
//! with:
//!
//! * [`DomainName`] and typed resource records ([`ResourceRecord`],
//!   [`RecordType`], [`RecordData`]) for A / CNAME / NS / MX / TXT / SOA;
//! * [`Zone`] with real lookup semantics (exact match, CNAME indirection,
//!   zone cuts / delegations, NODATA vs NXDOMAIN);
//! * an [`Authoritative`] server trait plus a stock [`ZoneServer`], so DPS
//!   providers can implement their own answer *policies* (Cloudflare and
//!   Incapsula keep answering for terminated customers — the residual
//!   resolution bug; other providers refuse);
//! * a delegation [`Registry`] standing in for the root/TLD layer — the
//!   thing a website administrator edits when delegating to, or leaving,
//!   an NS-based DPS provider;
//! * a caching, CNAME-chasing, delegation-following [`RecursiveResolver`]
//!   over an abstract [`DnsTransport`]. Resolver caches honor TTLs against
//!   the simulation clock and can be purged before each measurement round,
//!   exactly as the paper's EC2 collector did (Sec IV-B.1). Stale cached NS
//!   records naturally keep steering queries to a previous provider after a
//!   switch — the root cause of residual resolution (Sec VI-A).
//!
//! # Example: a zone answering through a resolver
//!
//! ```
//! use remnant_dns::{
//!     DomainName, Query, RecordData, RecordType, Registry, ResourceRecord,
//!     RecursiveResolver, StaticTransport, Ttl, Zone, ZoneServer,
//! };
//! use remnant_net::Region;
//! use remnant_sim::SimClock;
//!
//! let clock = SimClock::new();
//! let apex: DomainName = "example.com".parse()?;
//! let www: DomainName = "www.example.com".parse()?;
//! let ns_name: DomainName = "ns1.example-dns.net".parse()?;
//! let ns_ip = "192.0.2.53".parse()?;
//!
//! let mut zone = Zone::new(apex.clone());
//! zone.add(ResourceRecord::new(
//!     www.clone(),
//!     Ttl::secs(300),
//!     RecordData::A("203.0.113.10".parse()?),
//! ));
//!
//! let mut registry = Registry::new();
//! registry.delegate(apex, vec![(ns_name, ns_ip)]);
//!
//! let mut transport = StaticTransport::new(registry);
//! transport.add_server(ns_ip, ZoneServer::new(vec![zone]));
//!
//! let mut resolver = RecursiveResolver::new(clock, Region::Oregon);
//! let res = resolver.resolve(&mut transport, &www, RecordType::A)?;
//! assert_eq!(res.addresses(), vec!["203.0.113.10".parse::<std::net::Ipv4Addr>()?]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod authority;
pub mod cache;
pub mod error;
pub mod message;
pub mod name;
pub mod record;
pub mod registry;
pub mod resolver;
pub mod transport;
pub mod zone;

pub use authority::{Authoritative, ZoneServer};
pub use cache::ResolverCache;
pub use error::DnsError;
pub use message::{Query, Rcode, Response};
pub use name::DomainName;
pub use record::{empty_record_set, RecordData, RecordSet, RecordType, ResourceRecord, Ttl};
pub use registry::{Registry, ZoneGenerationProbe};
pub use remnant_obs::Instrumented;
pub use resolver::{RecursiveResolver, Resolution, ResolverStats};
pub use transport::{
    CountingTransport, DnsTransport, QueryStats, ShardableTransport, StaticTransport,
};
pub use zone::{Zone, ZoneAnswer};
