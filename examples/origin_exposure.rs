//! Comparing origin-exposure attack surfaces: the classic Table I vectors
//! (IP history, subdomains, MX records) versus the paper's new residual
//! resolution vector, on the same protected population.
//!
//! Run with:
//! ```text
//! cargo run --release --example origin_exposure
//! ```

use remnant::core::collector::{RecordCollector, Target};
use remnant::core::report::{percent, TextTable};
use remnant::core::residual::{CloudflareScanner, FilterPipeline};
use remnant::core::vectors::{ExposureVector, PassiveDnsDb, VectorScanner};
use remnant::core::{BehaviorDetector, SCANNER_SOURCE};
use remnant::net::Region;
use remnant::provider::ProviderId;
use remnant::world::{World, WorldConfig};

fn main() {
    let mut world = World::generate(WorldConfig::new(12_000, 77));
    let targets: Vec<Target> = world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect();

    // Two weeks of daily observation: builds the attacker's passive-DNS
    // history and harvests the Cloudflare fleet for the residual scan.
    let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
    let mut history = PassiveDnsDb::new();
    let mut cf_scanner = CloudflareScanner::new(world.clock(), "cloudflare");
    let mut last_snapshot = None;
    for day in 0..14 {
        let snapshot = collector.collect(&mut world, &targets, day);
        history.feed(&snapshot);
        cf_scanner.harvest_fleet(&mut world, &snapshot);
        last_snapshot = Some(snapshot);
        world.step_hours(24);
    }
    let classes =
        BehaviorDetector::new().classify_snapshot(&last_snapshot.expect("collection rounds ran"));

    // Classic vectors against all currently protected sites.
    let mut scanner = VectorScanner::new(world.clock(), Region::Ashburn, SCANNER_SOURCE);
    let vector_report = scanner.scan(&mut world, &targets, &classes, &history);

    // Residual resolution against the previous provider.
    let raw = cf_scanner.scan(&mut world, &targets, 2);
    let mut pipeline = FilterPipeline::new(world.clock(), Region::Ashburn, SCANNER_SOURCE);
    let residual = pipeline.run(&mut world, ProviderId::Cloudflare, 2, &raw, &targets);

    println!(
        "protected sites examined: {} (of {} total)\n",
        vector_report.protected_sites,
        world.population()
    );
    let mut table = TextTable::new(["Attack vector", "Sites w/ candidates", "Verified origins"]);
    for vector in ExposureVector::ALL {
        let tally = vector_report.tally(vector);
        table.row([
            format!("{vector} (Table I)"),
            tally.candidates.to_string(),
            tally.verified.to_string(),
        ]);
    }
    table.row([
        "Residual resolution (this paper)".to_owned(),
        residual.hidden.len().to_string(),
        residual.verified.len().to_string(),
    ]);
    print!("{table}");
    println!(
        "\nclassic vectors expose {} of protected sites ({});\n\
         residual resolution adds origins even for sites that rotated their\n\
         defenses correctly against the old vectors — the previous provider\n\
         remembers what the public DNS no longer shows.",
        vector_report.exposed_sites,
        percent(vector_report.exposed_fraction()),
    );
}
