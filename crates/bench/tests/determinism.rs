//! The engine's determinism contract, end to end: a full study run with
//! `--workers 8` must produce output byte-identical to `--workers 1`.

use remnant_bench::{
    render_fig2, render_fig3, render_fig4, render_fig5, render_fig6, render_fig7, render_fig8,
    render_fig8_from_obs, render_fig9, render_table5, render_table6, run_study, ReproConfig,
};

fn config(workers: usize) -> ReproConfig {
    ReproConfig {
        population: 3_000,
        weeks: 2,
        seed: 11,
        even_intervals: false,
        workers,
        ..ReproConfig::default()
    }
}

/// Everything `repro` prints from the study report, in `repro all` order.
fn rendered_output(
    config: &ReproConfig,
    world: &remnant::world::World,
    report: &remnant::core::study::StudyReport,
) -> String {
    [
        render_fig2(config, report),
        render_fig3(config, report),
        render_fig4(report),
        render_fig5(report),
        render_fig6(report),
        render_fig7(world),
        render_fig8(report),
        render_fig9(config, report),
        render_table5(config, report),
        render_table6(config, report),
    ]
    .join("\n")
}

#[test]
fn study_is_worker_count_invariant() {
    let sequential_config = config(1);
    let parallel_config = config(8);
    let (world1, report1) = run_study(&sequential_config);
    let (world8, report8) = run_study(&parallel_config);

    // The structured reports match field for field...
    assert_eq!(report1.adoption(), report8.adoption());
    assert_eq!(
        report1.residual().cloudflare.weekly,
        report8.residual().cloudflare.weekly
    );
    assert_eq!(
        report1.residual().incapsula.weekly,
        report8.residual().incapsula.weekly
    );
    assert_eq!(report1.residual().fleet_size, report8.residual().fleet_size);
    assert_eq!(
        report1.residual().harvested_tokens,
        report8.residual().harvested_tokens
    );
    assert_eq!(report1.unchanged().rows, report8.unchanged().rows);
    assert_eq!(
        report1.behaviors().interval_hours,
        report8.behaviors().interval_hours
    );
    assert_eq!(
        report1.behaviors().fsm_violations,
        report8.behaviors().fsm_violations
    );

    // ...the deterministic engine counters match (only wall times may
    // differ)...
    assert_eq!(report1.engine().sweeps, report8.engine().sweeps);
    assert_eq!(report1.engine().shards, report8.engine().shards);
    assert_eq!(report1.engine().queries, report8.engine().queries);
    assert_eq!(report1.engine().attempts, report8.engine().attempts);
    assert_eq!(report1.engine().retries, report8.engine().retries);
    assert_eq!(report1.engine().exhausted, report8.engine().exhausted);
    assert_eq!(report1.engine().workers, 1);
    assert_eq!(report8.engine().workers, 8);

    // ...the worlds saw identical query volume...
    assert_eq!(world1.traffic_stats(), world8.traffic_stats());

    // ...and the rendered stdout is byte-identical.
    assert_eq!(
        rendered_output(&sequential_config, &world1, &report1),
        rendered_output(&parallel_config, &world8, &report8),
    );

    // The observability snapshot holds to the same contract: every counter,
    // histogram, and journal event rides on virtual time and shard-ordered
    // merges, so the exported JSON is byte-identical too (`repro
    // --metrics out.json` is reproducible at any worker count).
    assert_eq!(
        report1.obs().to_json(),
        report8.obs().to_json(),
        "ObsReport must not vary with worker count"
    );
    // And the Fig 8 funnel rebuilt from those metrics alone matches the
    // funnel rendered from the structured report.
    let body = |s: &str| s.split_once('\n').map(|(_, t)| t.to_owned()).unwrap();
    assert_eq!(
        body(&render_fig8_from_obs(report1.obs())),
        body(&render_fig8(&report1))
    );
}
