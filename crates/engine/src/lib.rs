//! # remnant-engine
//!
//! A sharded, deterministic parallel scan engine for million-site sweeps.
//!
//! The paper's measurement pipeline resolves the Alexa top one million
//! every day for three months (Sec IV-A). Sequentially, each site is
//! independent of the others within a round — which makes the sweep
//! embarrassingly parallel, *if* parallelism can be added without
//! perturbing the study's outputs. This crate provides that: a
//! [`ScanEngine`] that splits a target list into deterministic shards,
//! drives `N` worker threads (each with its own per-shard state and RNG
//! stream), and merges shard outputs back into target order so results
//! are **bit-identical regardless of worker count**.
//!
//! ## Determinism contract
//!
//! For a fixed target list, seed, shard size and retry policy, the
//! [`Sweep::outputs`] vector and every [`ShardStats`] counter are
//! identical for every `workers` value. Only wall-clock timings
//! ([`SweepStats::timings`], [`SweepStats::wall`]) vary. This holds
//! because shard layout, per-shard RNG seeds and per-shard worker state
//! are all functions of the shard index — never of the thread that
//! happens to execute the shard. See [`ScanEngine::sweep`] for the three
//! invariants.
//!
//! ## Example
//!
//! ```
//! use remnant_engine::{EngineConfig, ScanEngine, TaskResult};
//!
//! let items: Vec<u32> = (0..10_000).collect();
//! let engine = ScanEngine::new(EngineConfig::with_workers(8, 42)?);
//! let sweep = engine.sweep(
//!     &(),
//!     &items,
//!     |_shard| (),
//!     |_ctx, _worker, _scope, _rank, item| TaskResult::Done(item * 2),
//! );
//! assert_eq!(sweep.outputs[7], 14);
//! assert_eq!(sweep.stats.items(), 10_000);
//! # Ok::<(), remnant_engine::ConfigFieldError>(())
//! ```
//!
//! ## Scheduling
//!
//! Execution is *work-claiming*: the planned shard list feeds a shared
//! injector queue ([`ShardQueue`]) that worker threads drain
//! first-come-first-served, and results land in plan-positional slots
//! ([`SlotVec`]). A straggling shard therefore delays only itself — the
//! other threads keep claiming past it — without any effect on output
//! bytes. Multi-tenant hosts hand every engine the same [`WorkerPool`] so
//! concurrent sweeps share one thread budget.

pub mod claim;
pub mod config;
pub mod error;
pub mod limiter;
pub mod pool;
pub mod shard;
pub mod stats;
pub mod sweep;

pub use claim::{ShardClaim, ShardQueue, SlotVec};
pub use config::{EngineConfig, EngineConfigBuilder, RateLimit, RetryPolicy};
pub use error::ConfigFieldError;
pub use limiter::TokenBucket;
pub use pool::{PoolGrant, WorkerPool};
pub use remnant_obs::{Instrumented, MetricsRegistry};
pub use shard::plan_shards;
pub use stats::{ShardStats, ShardTiming, SweepStats};
pub use sweep::{ScanEngine, ShardScope, Sweep, TaskResult};
