//! Scrubbing centers.
//!
//! "at each \[PoP\] a scrubbing center is deployed ... responsible for
//! cleaning the traffic and blocking the malicious on its way to the origin.
//! The total capacity of such networks can reach several Tbps" (Sec II-A.1).
//!
//! The model is intentionally coarse — the paper never benchmarks scrubbing
//! itself, it only needs the qualitative behavior: attack traffic routed
//! *through* the DPS is absorbed; attack traffic aimed *directly at the
//! origin* is not.

use std::fmt;

/// Traffic volumes in Gbps.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScrubOutcome {
    /// Malicious traffic that leaked through to the origin (Gbps).
    pub malicious_passed: f64,
    /// Legitimate traffic delivered to the origin (Gbps).
    pub legit_passed: f64,
    /// Malicious traffic absorbed by the scrubbing center (Gbps).
    pub absorbed: f64,
}

impl ScrubOutcome {
    /// True if essentially no malicious traffic reached the origin.
    pub fn attack_mitigated(&self) -> bool {
        self.malicious_passed < 1e-9
    }
}

/// One PoP's scrubbing center.
///
/// * While offered load (legit + malicious) is within `capacity_gbps`, the
///   center drops `filter_efficiency` of the malicious traffic and passes
///   everything else.
/// * Beyond capacity, the center saturates: excess traffic of both kinds is
///   dropped proportionally, degrading legitimate delivery (how a DPS loses
///   against a large enough attack).
///
/// # Example
///
/// ```
/// use remnant_provider::ScrubbingCenter;
///
/// let center = ScrubbingCenter::new(500.0, 1.0);
/// let outcome = center.scrub(100.0, 2.0);
/// assert!(outcome.attack_mitigated());
/// assert!((outcome.legit_passed - 2.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScrubbingCenter {
    capacity_gbps: f64,
    filter_efficiency: f64,
}

impl ScrubbingCenter {
    /// Creates a center with `capacity_gbps` total capacity that filters
    /// `filter_efficiency` (0.0–1.0) of malicious traffic.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_gbps` is not positive or `filter_efficiency` is
    /// outside `0.0..=1.0`.
    pub fn new(capacity_gbps: f64, filter_efficiency: f64) -> Self {
        assert!(capacity_gbps > 0.0, "capacity must be positive");
        assert!(
            (0.0..=1.0).contains(&filter_efficiency),
            "efficiency must be a fraction"
        );
        ScrubbingCenter {
            capacity_gbps,
            filter_efficiency,
        }
    }

    /// The center's capacity in Gbps.
    pub const fn capacity_gbps(&self) -> f64 {
        self.capacity_gbps
    }

    /// Processes offered traffic and reports what reaches the origin.
    pub fn scrub(&self, malicious_gbps: f64, legit_gbps: f64) -> ScrubOutcome {
        let offered = malicious_gbps + legit_gbps;
        let admit_fraction = if offered <= self.capacity_gbps || offered == 0.0 {
            1.0
        } else {
            self.capacity_gbps / offered
        };
        let admitted_malicious = malicious_gbps * admit_fraction;
        let admitted_legit = legit_gbps * admit_fraction;
        let filtered = admitted_malicious * self.filter_efficiency;
        ScrubOutcome {
            malicious_passed: admitted_malicious - filtered,
            legit_passed: admitted_legit,
            absorbed: filtered + (malicious_gbps - admitted_malicious),
        }
    }
}

impl fmt::Display for ScrubbingCenter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scrubbing center ({} Gbps, {:.0}% filter)",
            self.capacity_gbps,
            self.filter_efficiency * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_capacity_fully_filters() {
        let c = ScrubbingCenter::new(1000.0, 1.0);
        let out = c.scrub(500.0, 10.0);
        assert!(out.attack_mitigated());
        assert_eq!(out.legit_passed, 10.0);
        assert_eq!(out.absorbed, 500.0);
    }

    #[test]
    fn partial_efficiency_leaks_a_fraction() {
        let c = ScrubbingCenter::new(1000.0, 0.99);
        let out = c.scrub(100.0, 0.0);
        assert!((out.malicious_passed - 1.0).abs() < 1e-9);
        assert!(!out.attack_mitigated());
    }

    #[test]
    fn saturation_drops_legit_traffic_proportionally() {
        let c = ScrubbingCenter::new(100.0, 1.0);
        let out = c.scrub(300.0, 100.0); // 4x over capacity
        assert!((out.legit_passed - 25.0).abs() < 1e-9);
        // Admitted malicious (75) is fully filtered; the rest is dropped at
        // the edge — either way the origin never sees it.
        assert!(out.attack_mitigated());
        assert!((out.absorbed - 300.0).abs() < 1e-9);
    }

    #[test]
    fn zero_traffic_is_a_noop() {
        let c = ScrubbingCenter::new(100.0, 1.0);
        let out = c.scrub(0.0, 0.0);
        assert_eq!(out, ScrubOutcome::default());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = ScrubbingCenter::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "efficiency must be a fraction")]
    fn rejects_bad_efficiency() {
        let _ = ScrubbingCenter::new(10.0, 1.5);
    }
}
