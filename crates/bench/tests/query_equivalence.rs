//! The query layer's headline contract: every figure and table that was
//! rewritten as a query plan renders byte-identically to the legacy live
//! pass, at workers 1 and 8, whether the store holds resident snapshots
//! (in-memory campaign) or reopens spill files (full and delta modes).
//!
//! Both sides of each comparison come from ONE campaign: the legacy side
//! renders straight from the `StudyReport`, the query side re-derives the
//! same sub-reports from a `SnapshotStore` (via `PassesPlan` and friends)
//! and renders through the shared `render_*_<subreport>` functions.

use std::path::PathBuf;

use proptest::prelude::*;
use remnant::core::collector::Target;
use remnant::core::residual::ExposureTracker;
use remnant::core::study::{CollectionMode, PaperStudy, StudyConfig, StudyReport};
use remnant::core::{DnsSnapshot, SpillConfig};
use remnant::query::{PassesPlan, QueryPlan, SnapshotStore, UnchangedCandidatesPlan};
use remnant::world::{World, WorldConfig};
use remnant_bench::{
    render_fig2, render_fig2_adoption, render_fig3, render_fig3_behaviors, render_fig4,
    render_fig4_behaviors, render_fig5, render_fig5_pauses, render_fig6, render_fig6_adoption,
    render_fig8, render_fig8_from_obs, render_fig9, render_fig9_exposure, render_table5,
    ReproConfig,
};

const POPULATION: usize = 2_000;
const WEEKS: u32 = 2;
const SEED: u64 = 41;

/// Mirrors `run_study`'s `ReproConfig -> StudyConfig` mapping, so the
/// differential exercises exactly the configuration the CLI runs.
fn study_config(config: &ReproConfig) -> StudyConfig {
    StudyConfig {
        weeks: config.weeks,
        uneven_intervals: !config.even_intervals,
        workers: config.workers,
        collection_mode: config.collection_mode,
        spill: config.spill_dir.clone().map(SpillConfig::new),
        ..StudyConfig::default()
    }
}

/// Runs one campaign, capturing every daily snapshot for the in-memory
/// store variant.
fn run_captured(config: &ReproConfig) -> (Vec<DnsSnapshot>, StudyReport) {
    let mut world = World::generate(WorldConfig::new(config.population, config.seed));
    let mut snapshots = Vec::new();
    let report = PaperStudy::new(study_config(config)).run_with(&mut world, |snapshot| {
        snapshots.push(snapshot.clone());
    });
    (snapshots, report)
}

fn fresh_spill_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remnant-query-equiv-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp spill dir");
    dir
}

fn campaign_targets(config: &ReproConfig) -> Vec<Target> {
    let world = World::generate(WorldConfig::new(config.population, config.seed));
    world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect()
}

/// The differential itself: every query-rewritten figure/table vs its
/// legacy render, byte for byte.
fn assert_query_matches_legacy(
    config: &ReproConfig,
    store: &SnapshotStore,
    report: &StudyReport,
    context: &str,
) {
    let aggregates = PassesPlan.execute(store);
    assert_eq!(
        render_fig2_adoption(config, &aggregates.adoption),
        render_fig2(config, report),
        "{context}: fig 2"
    );
    assert_eq!(
        render_fig3_behaviors(config, &aggregates.behaviors),
        render_fig3(config, report),
        "{context}: fig 3"
    );
    assert_eq!(
        render_fig4_behaviors(&aggregates.behaviors),
        render_fig4(report),
        "{context}: fig 4"
    );
    assert_eq!(
        render_fig5_pauses(&aggregates.pauses),
        render_fig5(report),
        "{context}: fig 5"
    );
    assert_eq!(
        render_fig6_adoption(&aggregates.adoption),
        render_fig6(report),
        "{context}: fig 6"
    );

    // Fig 9: the query-side fold over the persisted weekly reports renders
    // identically to the live study's incrementally-built tracker.
    let folded = ExposureTracker::fold(&report.residual().cloudflare.weekly);
    assert_eq!(
        render_fig9_exposure(config, &folded),
        render_fig9(config, report),
        "{context}: fig 9"
    );

    // Fig 8: the funnel_rows fold over recorded metrics produces the same
    // table body as the legacy weekly-report path (titles differ by design).
    let body = |s: &str| s.split_once('\n').map(|(_, rest)| rest.to_owned()).unwrap();
    assert_eq!(
        body(&render_fig8_from_obs(report.obs())),
        body(&render_fig8(report)),
        "{context}: fig 8 funnel body"
    );

    // Table V: the candidate plan re-derives exactly one candidate per
    // unchanged event the live study verified and rendered.
    let plan = UnchangedCandidatesPlan {
        targets: campaign_targets(config),
    };
    let candidates = plan.execute(store);
    let live_events: u64 = report.unchanged().rows.iter().map(|row| row.1).sum();
    assert_eq!(
        candidates.len() as u64,
        live_events,
        "{context}: table 5 events\n{}",
        render_table5(config, report)
    );
}

#[test]
fn in_memory_campaigns_match_legacy_figures() {
    for workers in [1usize, 8] {
        let config = ReproConfig::builder()
            .population(POPULATION)
            .weeks(WEEKS)
            .seed(SEED)
            .workers(workers)
            .build()
            .expect("valid config");
        let (snapshots, report) = run_captured(&config);
        let store = SnapshotStore::in_memory(snapshots).expect("in-memory store");
        assert_query_matches_legacy(&config, &store, &report, &format!("in-memory w{workers}"));
    }
}

#[test]
fn spill_full_campaigns_match_legacy_figures() {
    for workers in [1usize, 8] {
        let dir = fresh_spill_dir(&format!("full-w{workers}"));
        let config = ReproConfig::builder()
            .population(POPULATION)
            .weeks(WEEKS)
            .seed(SEED)
            .workers(workers)
            .collection_mode(CollectionMode::Full)
            .spill_dir(dir.clone())
            .build()
            .expect("valid config");
        let (_, report) = run_captured(&config);
        let store = SnapshotStore::open(&dir).expect("store opens");
        assert_query_matches_legacy(&config, &store, &report, &format!("spill-full w{workers}"));
    }
}

#[test]
fn spill_delta_campaigns_match_legacy_figures() {
    for workers in [1usize, 8] {
        let dir = fresh_spill_dir(&format!("delta-w{workers}"));
        let config = ReproConfig::builder()
            .population(POPULATION)
            .weeks(WEEKS)
            .seed(SEED)
            .workers(workers)
            .collection_mode(CollectionMode::Delta)
            .spill_dir(dir.clone())
            .build()
            .expect("valid config");
        let (_, report) = run_captured(&config);
        let store = SnapshotStore::open(&dir).expect("store opens");
        assert_query_matches_legacy(&config, &store, &report, &format!("spill-delta w{workers}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 3,
        ..ProptestConfig::default()
    })]

    /// Differential property: for arbitrary small campaigns — any seed,
    /// population, worker count, and persistence mode — the query-rewritten
    /// figures stay byte-identical to the legacy passes.
    #[test]
    fn query_figures_match_legacy_for_arbitrary_campaigns(
        seed in 0u64..1_000,
        population in 300usize..600,
        workers in prop_oneof![Just(1usize), Just(8usize)],
        delta in proptest::arbitrary::any::<bool>(),
    ) {
        let mode = if delta { CollectionMode::Delta } else { CollectionMode::Full };
        let dir = fresh_spill_dir(&format!("prop-{seed}-{population}-{workers}-{delta}"));
        let config = ReproConfig::builder()
            .population(population)
            .weeks(1)
            .seed(seed)
            .workers(workers)
            .collection_mode(mode)
            .spill_dir(dir.clone())
            .build()
            .expect("valid config");
        let (_, report) = run_captured(&config);
        let store = SnapshotStore::open(&dir).expect("store opens");
        assert_query_matches_legacy(
            &config,
            &store,
            &report,
            &format!("prop seed={seed} pop={population} w{workers} {mode:?}"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
