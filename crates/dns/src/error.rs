//! Error type for the DNS substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the DNS substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DnsError {
    /// A domain name failed validation.
    ParseName(String),
    /// No configured nameserver answered (all ignored/dropped the query).
    Timeout {
        /// The name being resolved.
        name: String,
    },
    /// No nameservers could be found for the name (no delegation anywhere).
    NoNameservers {
        /// The name being resolved.
        name: String,
    },
    /// CNAME chain exceeded the chase limit (loop or excessive depth).
    CnameChain {
        /// The name resolution started from.
        name: String,
    },
    /// A record was inserted into a zone it does not belong to.
    OutOfZone {
        /// The zone origin.
        zone: String,
        /// The offending record owner.
        name: String,
    },
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::ParseName(s) => write!(f, "invalid domain name syntax: {s:?}"),
            DnsError::Timeout { name } => write!(f, "no nameserver answered for {name}"),
            DnsError::NoNameservers { name } => {
                write!(f, "no nameservers found for {name}")
            }
            DnsError::CnameChain { name } => {
                write!(f, "cname chain too long or looping while resolving {name}")
            }
            DnsError::OutOfZone { zone, name } => {
                write!(f, "record owner {name} is outside zone {zone}")
            }
        }
    }
}

impl Error for DnsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_well_formed() {
        let errs = [
            DnsError::ParseName("..".into()),
            DnsError::Timeout {
                name: "a.com".into(),
            },
            DnsError::NoNameservers {
                name: "a.com".into(),
            },
            DnsError::CnameChain {
                name: "a.com".into(),
            },
            DnsError::OutOfZone {
                zone: "a.com".into(),
                name: "b.org".into(),
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DnsError>();
    }
}
