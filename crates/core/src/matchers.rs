//! A/CNAME/NS matching (Sec IV-B.2, Table II).
//!
//! * **A-matching** resolves an IP address to a provider via the providers'
//!   announced ranges (RouteView in the paper, the catalog blocks here).
//! * **CNAME-matching** looks for provider-unique substrings in CNAME
//!   targets.
//! * **NS-matching** looks for provider-unique substrings in NS hostnames.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::RwLock;

use remnant_dns::DomainName;
use remnant_net::IpRangeDb;
use remnant_provider::ProviderId;

use crate::snapshot::SiteRecords;

/// The three fingerprint matchers over the Table II catalog.
///
/// CNAME- and NS-matching memoize their verdict per [`DomainName`]: names
/// are process-wide interned handles with a precomputed hash and
/// pointer-identity equality, so the memo key costs O(1) and the table is
/// bounded by the name universe the interner already holds. Matching is a
/// pure function of the name and the static catalog, so memoized answers
/// are byte-identical to recomputed ones, and keeping the handle as the
/// key pins its payload for the matcher's lifetime.
#[derive(Debug)]
pub struct ProviderMatcher {
    ranges: IpRangeDb<ProviderId>,
    cname_memo: RwLock<HashMap<DomainName, Option<ProviderId>>>,
    ns_memo: RwLock<HashMap<DomainName, Option<ProviderId>>>,
}

impl Clone for ProviderMatcher {
    fn clone(&self) -> Self {
        ProviderMatcher {
            ranges: self.ranges.clone(),
            cname_memo: RwLock::new(self.cname_memo.read().expect(MEMO_LOCK).clone()),
            ns_memo: RwLock::new(self.ns_memo.read().expect(MEMO_LOCK).clone()),
        }
    }
}

const MEMO_LOCK: &str = "matcher memo lock";

/// Looks `name` up in a match memo, computing and recording the verdict
/// on first sight. Read-mostly: the write lock is only taken for names
/// the matcher has never seen.
fn memoized(
    memo: &RwLock<HashMap<DomainName, Option<ProviderId>>>,
    name: &DomainName,
    slow: impl FnOnce() -> Option<ProviderId>,
) -> Option<ProviderId> {
    if let Some(hit) = memo.read().expect(MEMO_LOCK).get(name) {
        return *hit;
    }
    let verdict = slow();
    memo.write().expect(MEMO_LOCK).insert(name.clone(), verdict);
    verdict
}

impl Default for ProviderMatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl ProviderMatcher {
    /// Builds the matcher from the provider catalog.
    pub fn new() -> Self {
        let mut ranges = IpRangeDb::new();
        for provider in ProviderId::ALL {
            for block in provider.info().ip_blocks {
                ranges.insert(block.parse().expect("catalog blocks are valid"), provider);
            }
        }
        ProviderMatcher {
            ranges,
            cname_memo: RwLock::new(HashMap::new()),
            ns_memo: RwLock::new(HashMap::new()),
        }
    }

    /// A-matching: the provider announcing `addr`, if any.
    pub fn a_match(&self, addr: Ipv4Addr) -> Option<ProviderId> {
        self.ranges.lookup(addr).copied()
    }

    /// A-matching over a record set: the first provider hit.
    pub fn a_match_any(&self, addrs: &[Ipv4Addr]) -> Option<ProviderId> {
        addrs.iter().find_map(|a| self.a_match(*a))
    }

    /// CNAME-matching: the provider whose substring appears in `target`.
    pub fn cname_match(&self, target: &DomainName) -> Option<ProviderId> {
        memoized(&self.cname_memo, target, || {
            ProviderId::ALL.into_iter().find(|p| {
                p.info()
                    .cname_substrings
                    .iter()
                    .any(|needle| target.contains_label_substring(needle))
            })
        })
    }

    /// CNAME-matching over a chain: the first provider hit.
    pub fn cname_match_any(&self, targets: &[DomainName]) -> Option<ProviderId> {
        targets.iter().find_map(|t| self.cname_match(t))
    }

    /// NS-matching: the provider whose substring appears in `host`.
    pub fn ns_match(&self, host: &DomainName) -> Option<ProviderId> {
        memoized(&self.ns_memo, host, || {
            ProviderId::ALL.into_iter().find(|p| {
                p.info()
                    .ns_substrings
                    .iter()
                    .any(|needle| host.contains_label_substring(needle))
            })
        })
    }

    /// NS-matching over a record set: the first provider hit.
    pub fn ns_match_any(&self, hosts: &[DomainName]) -> Option<ProviderId> {
        hosts.iter().find_map(|h| self.ns_match(h))
    }

    /// All three matches for one site's collected records.
    pub fn match_records(&self, records: &SiteRecords) -> RecordMatches {
        self.match_view(records.view())
    }

    /// [`ProviderMatcher::match_records`] over borrowed columns — the form
    /// snapshot consumers use when iterating [`RecordBlock`](crate::snapshot::RecordBlock)s
    /// without materializing per-site records.
    pub fn match_view(&self, site: crate::snapshot::SiteView<'_>) -> RecordMatches {
        RecordMatches {
            a: self.a_match_any(site.a),
            cname: self.cname_match_any(site.cnames),
            ns: self.ns_match_any(site.ns),
        }
    }
}

/// The outcome of running all three matchers on one site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecordMatches {
    /// A-matched provider.
    pub a: Option<ProviderId>,
    /// CNAME-matched provider.
    pub cname: Option<ProviderId>,
    /// NS-matched provider.
    pub ns: Option<ProviderId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    #[test]
    fn a_matching_hits_catalog_blocks() {
        let m = ProviderMatcher::new();
        assert_eq!(
            m.a_match("104.20.3.4".parse().unwrap()),
            Some(ProviderId::Cloudflare)
        );
        assert_eq!(
            m.a_match("199.83.130.1".parse().unwrap()),
            Some(ProviderId::Incapsula)
        );
        assert_eq!(
            m.a_match("151.101.7.7".parse().unwrap()),
            Some(ProviderId::Fastly)
        );
        assert_eq!(
            m.a_match("100.64.0.5".parse().unwrap()),
            None,
            "hosting space"
        );
        assert_eq!(m.a_match("8.8.8.8".parse().unwrap()), None);
    }

    #[test]
    fn cname_matching_uses_published_substrings() {
        let m = ProviderMatcher::new();
        assert_eq!(
            m.cname_match(&name("x123.incapdns.net")),
            Some(ProviderId::Incapsula)
        );
        assert_eq!(
            m.cname_match(&name("site.edgekey.net")),
            Some(ProviderId::Akamai)
        );
        assert_eq!(
            m.cname_match(&name("d1234.cloudfront.net")),
            Some(ProviderId::Cloudfront)
        );
        assert_eq!(
            m.cname_match(&name("host.netdna-cdn.com")),
            Some(ProviderId::Stackpath)
        );
        assert_eq!(m.cname_match(&name("www.example.com")), None);
    }

    #[test]
    fn ns_matching_uses_published_substrings() {
        let m = ProviderMatcher::new();
        assert_eq!(
            m.ns_match(&name("kate.ns.cloudflare.com")),
            Some(ProviderId::Cloudflare)
        );
        assert_eq!(m.ns_match(&name("a1-2.akam.net")), Some(ProviderId::Akamai));
        assert_eq!(
            m.ns_match(&name("ns1.cdnetdns.net")),
            Some(ProviderId::CdNetworks)
        );
        assert_eq!(m.ns_match(&name("ns1.webhost1.net")), None);
    }

    #[test]
    fn any_variants_scan_whole_sets() {
        let m = ProviderMatcher::new();
        let addrs = vec!["100.64.0.9".parse().unwrap(), "13.32.0.5".parse().unwrap()];
        assert_eq!(m.a_match_any(&addrs), Some(ProviderId::Cloudfront));
        let chain = vec![name("cdn.something.org"), name("global.fastly.net")];
        assert_eq!(m.cname_match_any(&chain), Some(ProviderId::Fastly));
        assert_eq!(m.ns_match_any(&[]), None);
    }

    #[test]
    fn match_records_combines_all_three() {
        let m = ProviderMatcher::new();
        let records = SiteRecords {
            a: vec!["104.16.9.9".parse().unwrap()],
            cnames: vec![],
            ns: vec![name("rob.ns.cloudflare.com")],
        };
        let matches = m.match_records(&records);
        assert_eq!(matches.a, Some(ProviderId::Cloudflare));
        assert_eq!(matches.cname, None);
        assert_eq!(matches.ns, Some(ProviderId::Cloudflare));
    }

    #[test]
    fn memoized_verdicts_match_fresh_recomputation() {
        let warm = ProviderMatcher::new();
        let hosts = [
            "kate.ns.cloudflare.com",
            "x123.incapdns.net",
            "ns1.webhost1.net",
            "global.fastly.net",
        ];
        // First pass populates the memo; second pass must agree with a
        // matcher that has never seen the names.
        for host in hosts {
            let d = name(host);
            warm.ns_match(&d);
            warm.cname_match(&d);
        }
        for host in hosts {
            let d = name(host);
            let fresh = ProviderMatcher::new();
            assert_eq!(warm.ns_match(&d), fresh.ns_match(&d));
            assert_eq!(warm.cname_match(&d), fresh.cname_match(&d));
        }
    }

    #[test]
    fn matching_is_case_insensitive_via_name_normalization() {
        let m = ProviderMatcher::new();
        assert_eq!(
            m.cname_match(&name("X.INCAPDNS.NET")),
            Some(ProviderId::Incapsula)
        );
    }
}
