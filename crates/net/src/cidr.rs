//! IPv4 CIDR blocks.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use crate::error::NetError;

/// An IPv4 CIDR block, e.g. `104.16.0.0/12`.
///
/// The stored network address is always masked to the prefix length, so two
/// spellings of the same block compare equal:
///
/// ```
/// use remnant_net::Ipv4Cidr;
///
/// let a: Ipv4Cidr = "10.1.2.3/16".parse()?;
/// let b: Ipv4Cidr = "10.1.0.0/16".parse()?;
/// assert_eq!(a, b);
/// assert!(a.contains("10.1.255.255".parse()?));
/// assert!(!a.contains("10.2.0.0".parse()?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Cidr {
    network: u32,
    prefix_len: u8,
}

impl Ipv4Cidr {
    /// Creates a block from an address and prefix length, masking the
    /// address down to its network part.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PrefixLength`] if `prefix_len > 32`.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Result<Self, NetError> {
        if prefix_len > 32 {
            return Err(NetError::PrefixLength(prefix_len));
        }
        let network = u32::from(addr) & mask(prefix_len);
        Ok(Ipv4Cidr {
            network,
            prefix_len,
        })
    }

    /// The masked network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// The prefix length in bits.
    pub const fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// The last address in the block.
    pub fn last(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network | !mask(self.prefix_len))
    }

    /// Number of addresses in the block (2^(32-len)); saturates at
    /// `u64::MAX` never — a /0 holds 2^32 which fits in u64.
    pub const fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// True if `addr` falls inside this block.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & mask(self.prefix_len) == self.network
    }

    /// True if `other` is entirely inside this block.
    pub fn contains_block(&self, other: &Ipv4Cidr) -> bool {
        other.prefix_len >= self.prefix_len && self.contains(other.network())
    }

    /// The `index`-th address of the block, or `None` past the end.
    pub fn nth(&self, index: u64) -> Option<Ipv4Addr> {
        if index >= self.size() {
            None
        } else {
            Some(Ipv4Addr::from(self.network + index as u32))
        }
    }

    /// Splits the block into its two halves (one extra prefix bit), or
    /// `None` for a /32.
    pub fn split(&self) -> Option<(Ipv4Cidr, Ipv4Cidr)> {
        if self.prefix_len == 32 {
            return None;
        }
        let len = self.prefix_len + 1;
        let lo = Ipv4Cidr {
            network: self.network,
            prefix_len: len,
        };
        let hi = Ipv4Cidr {
            network: self.network | (1 << (32 - len)),
            prefix_len: len,
        };
        Some((lo, hi))
    }

    /// Iterates every address in the block in order.
    ///
    /// Intended for small provider pools; iterating a /0 would yield 2^32
    /// items.
    pub fn iter(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        (0..self.size()).map_while(|i| self.nth(i))
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.prefix_len)
    }
}

impl fmt::Debug for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ipv4Cidr({self})")
    }
}

impl FromStr for Ipv4Cidr {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| NetError::ParseCidr(s.to_owned()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| NetError::ParseCidr(s.to_owned()))?;
        let len: u8 = len.parse().map_err(|_| NetError::ParseCidr(s.to_owned()))?;
        Ipv4Cidr::new(addr, len)
    }
}

/// Network mask for a prefix length. `mask(0) == 0`, `mask(32) == !0`.
const fn mask(prefix_len: u8) -> u32 {
    if prefix_len == 0 {
        0
    } else {
        u32::MAX << (32 - prefix_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().expect("test cidr")
    }

    #[test]
    fn parse_masks_host_bits() {
        assert_eq!(cidr("192.168.5.7/24"), cidr("192.168.5.0/24"));
        assert_eq!(
            cidr("192.168.5.7/24").network(),
            Ipv4Addr::new(192, 168, 5, 0)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("1.2.3.4".parse::<Ipv4Cidr>().is_err());
        assert!("1.2.3.4/33".parse::<Ipv4Cidr>().is_err());
        assert!("1.2.3/8".parse::<Ipv4Cidr>().is_err());
        assert!("x/8".parse::<Ipv4Cidr>().is_err());
        assert!("1.2.3.4/x".parse::<Ipv4Cidr>().is_err());
    }

    #[test]
    fn containment_edges() {
        let block = cidr("10.0.0.0/8");
        assert!(block.contains(Ipv4Addr::new(10, 0, 0, 0)));
        assert!(block.contains(Ipv4Addr::new(10, 255, 255, 255)));
        assert!(!block.contains(Ipv4Addr::new(11, 0, 0, 0)));
        assert!(!block.contains(Ipv4Addr::new(9, 255, 255, 255)));
    }

    #[test]
    fn slash_zero_contains_everything() {
        let all = cidr("0.0.0.0/0");
        assert!(all.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(all.contains(Ipv4Addr::new(0, 0, 0, 0)));
        assert_eq!(all.size(), 1u64 << 32);
    }

    #[test]
    fn slash_32_is_a_single_host() {
        let host = cidr("1.2.3.4/32");
        assert_eq!(host.size(), 1);
        assert!(host.contains(Ipv4Addr::new(1, 2, 3, 4)));
        assert!(!host.contains(Ipv4Addr::new(1, 2, 3, 5)));
        assert_eq!(host.split(), None);
    }

    #[test]
    fn nth_and_last() {
        let block = cidr("10.0.0.0/30");
        assert_eq!(block.nth(0), Some(Ipv4Addr::new(10, 0, 0, 0)));
        assert_eq!(block.nth(3), Some(Ipv4Addr::new(10, 0, 0, 3)));
        assert_eq!(block.nth(4), None);
        assert_eq!(block.last(), Ipv4Addr::new(10, 0, 0, 3));
    }

    #[test]
    fn split_partitions_block() {
        let block = cidr("10.0.0.0/24");
        let (lo, hi) = block.split().expect("splittable");
        assert_eq!(lo, cidr("10.0.0.0/25"));
        assert_eq!(hi, cidr("10.0.0.128/25"));
        assert!(block.contains_block(&lo));
        assert!(block.contains_block(&hi));
        assert_eq!(lo.size() + hi.size(), block.size());
    }

    #[test]
    fn contains_block_requires_full_containment() {
        assert!(cidr("10.0.0.0/8").contains_block(&cidr("10.1.0.0/16")));
        assert!(!cidr("10.1.0.0/16").contains_block(&cidr("10.0.0.0/8")));
        assert!(cidr("10.0.0.0/8").contains_block(&cidr("10.0.0.0/8")));
        assert!(!cidr("10.0.0.0/8").contains_block(&cidr("11.0.0.0/16")));
    }

    #[test]
    fn iter_yields_all_addresses() {
        let block = cidr("192.0.2.0/29");
        let addrs: Vec<Ipv4Addr> = block.iter().collect();
        assert_eq!(addrs.len(), 8);
        assert_eq!(addrs[0], Ipv4Addr::new(192, 0, 2, 0));
        assert_eq!(addrs[7], Ipv4Addr::new(192, 0, 2, 7));
    }

    #[test]
    fn display_round_trips() {
        for s in ["0.0.0.0/0", "104.16.0.0/12", "1.2.3.4/32"] {
            assert_eq!(cidr(s).to_string(), s);
        }
    }
}
