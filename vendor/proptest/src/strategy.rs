//! Value-generation strategies. Unlike upstream proptest, a strategy here
//! is just a deterministic sampler — there is no value tree and no
//! shrinking.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::Rng as _;

use crate::test_runner::TestRng;

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated type. `Debug` so failing inputs can be printed.
    type Value: fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

trait SampleObj<T> {
    fn sample_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> SampleObj<S::Value> for S {
    fn sample_obj(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn SampleObj<T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.sample_obj(rng)
    }
}

/// A uniform choice between several strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over `variants`; must be non-empty.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union(variants)
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String literals are regex strategies, as in upstream proptest
/// (restricted to the subset documented in [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A 0);
impl_tuple_strategy!(A 0, B 1);
impl_tuple_strategy!(A 0, B 1, C 2);
impl_tuple_strategy!(A 0, B 1, C 2, D 3);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
