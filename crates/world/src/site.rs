//! Websites: the population units of the synthetic Internet.

use std::fmt;
use std::net::Ipv4Addr;

use remnant_dns::DomainName;
use remnant_provider::{ProviderId, ReroutingMethod, ServicePlan};
use remnant_sim::SimTime;

/// Index of a site in the population (also its popularity rank, 0 = most
/// popular).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// A site's current DPS arrangement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SiteState {
    /// Not using any DPS: self-hosted DNS, A record points at the origin.
    SelfHosted,
    /// Enrolled with a DPS provider.
    Dps {
        /// The provider.
        provider: ProviderId,
        /// The rerouting mechanism in use.
        rerouting: ReroutingMethod,
        /// The plan purchased.
        plan: ServicePlan,
        /// True while the customer has paused protection (OFF status).
        paused: bool,
    },
    /// Offline / parked: the apex resolves to a parking service.
    Dark,
}

impl SiteState {
    /// The provider, if enrolled.
    pub fn provider(&self) -> Option<ProviderId> {
        match self {
            SiteState::Dps { provider, .. } => Some(*provider),
            _ => None,
        }
    }

    /// True if enrolled and not paused.
    pub fn is_protected(&self) -> bool {
        matches!(self, SiteState::Dps { paused: false, .. })
    }

    /// True if enrolled (paused or not).
    pub fn is_enrolled(&self) -> bool {
        matches!(self, SiteState::Dps { .. })
    }
}

/// One website.
///
/// Page content, firewalling and dynamic-meta behavior are derived
/// deterministically from the site's identity; heavyweight server objects
/// are materialized lazily by the [`crate::World`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Website {
    /// Identity / popularity rank.
    pub id: SiteId,
    /// Apex domain.
    pub apex: DomainName,
    /// The portal host, `www.<apex>` (the study's probe name, Sec IV-A).
    pub www: DomainName,
    /// Current origin server address.
    pub origin: Ipv4Addr,
    /// Which shared hosting-DNS provider serves the site's own zone.
    pub hosting: u8,
    /// Origin firewalled to DPS edges only (verification false negative).
    pub firewalled: bool,
    /// The site publishes an apex MX record.
    pub has_mx: bool,
    /// The mail host shares the web origin's address (leaky when true).
    pub mx_colocated: bool,
    /// The site runs an unproxied `dev.<apex>` subdomain on the origin.
    pub leaky_subdomain: bool,
    /// Multi-CDN balancing (Cedexis-style): resolution alternates daily
    /// between these two providers. Such sites are excluded from the
    /// behavior study, as in the paper (Sec IV-B.3).
    pub multi_cdn: Option<(ProviderId, ProviderId)>,
    /// Landing page has dynamic meta tags (verification false negative).
    pub dynamic_meta: bool,
    /// Current DPS arrangement.
    pub state: SiteState,
    /// When a paused site plans to resume (`None` = no plan).
    pub scheduled_resume: Option<SimTime>,
}

impl Website {
    /// True if the site currently resolves through a delegating DPS
    /// mechanism (the precondition for later residual exposure).
    pub fn delegates_to_dps(&self) -> bool {
        matches!(
            self.state,
            SiteState::Dps {
                rerouting: ReroutingMethod::Ns | ReroutingMethod::Cname,
                ..
            }
        )
    }
}

impl fmt::Display for Website {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.apex, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(state: SiteState) -> Website {
        Website {
            id: SiteId(3),
            apex: "example.com".parse().unwrap(),
            www: "www.example.com".parse().unwrap(),
            origin: Ipv4Addr::new(100, 64, 0, 1),
            hosting: 0,
            firewalled: false,
            has_mx: false,
            mx_colocated: false,
            leaky_subdomain: false,
            multi_cdn: None,
            dynamic_meta: false,
            state,
            scheduled_resume: None,
        }
    }

    #[test]
    fn state_queries() {
        assert!(!SiteState::SelfHosted.is_enrolled());
        assert!(!SiteState::Dark.is_protected());
        let on = SiteState::Dps {
            provider: ProviderId::Cloudflare,
            rerouting: ReroutingMethod::Ns,
            plan: ServicePlan::Free,
            paused: false,
        };
        assert!(on.is_protected());
        assert!(on.is_enrolled());
        assert_eq!(on.provider(), Some(ProviderId::Cloudflare));
        let off = SiteState::Dps {
            provider: ProviderId::Incapsula,
            rerouting: ReroutingMethod::Cname,
            plan: ServicePlan::Pro,
            paused: true,
        };
        assert!(!off.is_protected());
        assert!(off.is_enrolled());
    }

    #[test]
    fn delegation_depends_on_rerouting() {
        let a_based = site(SiteState::Dps {
            provider: ProviderId::DosArrest,
            rerouting: ReroutingMethod::A,
            plan: ServicePlan::Pro,
            paused: false,
        });
        assert!(!a_based.delegates_to_dps());
        let ns_based = site(SiteState::Dps {
            provider: ProviderId::Cloudflare,
            rerouting: ReroutingMethod::Ns,
            plan: ServicePlan::Free,
            paused: false,
        });
        assert!(ns_based.delegates_to_dps());
        assert!(!site(SiteState::SelfHosted).delegates_to_dps());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(site(SiteState::Dark).to_string(), "example.com (site#3)");
    }
}
