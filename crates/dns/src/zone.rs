//! Zones: sets of records under one origin, with real lookup semantics.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::DnsError;
use crate::name::DomainName;
use crate::record::{RecordSet, RecordType, ResourceRecord};

/// The outcome of looking a name/type up in a [`Zone`].
///
/// Record-carrying variants hold shared [`RecordSet`] handles to the zone's
/// own storage, so answering a query never copies records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ZoneAnswer {
    /// Records of exactly the queried type exist at the name.
    Records(RecordSet),
    /// The name is an alias; the resolver should chase the CNAME.
    Cname(ResourceRecord),
    /// The name falls under a delegated child zone; NS records of the cut.
    Delegation(RecordSet),
    /// The name exists but has no records of the queried type.
    NoData,
    /// The name does not exist in the zone.
    NxDomain,
}

/// A DNS zone: all records at or under an origin name, plus child zone cuts.
///
/// Lookup follows RFC 1034 semantics in miniature:
/// 1. if the (possibly empty) queried name sits under a child delegation,
///    return [`ZoneAnswer::Delegation`];
/// 2. exact (name, type) match returns [`ZoneAnswer::Records`];
/// 3. a CNAME at the name (for non-CNAME queries) returns
///    [`ZoneAnswer::Cname`];
/// 4. the name existing with other types returns [`ZoneAnswer::NoData`];
/// 5. otherwise [`ZoneAnswer::NxDomain`].
///
/// # Example
///
/// ```
/// use remnant_dns::{DomainName, RecordData, RecordType, ResourceRecord, Ttl, Zone, ZoneAnswer};
///
/// let apex: DomainName = "example.com".parse()?;
/// let mut zone = Zone::new(apex.clone());
/// zone.add(ResourceRecord::new(
///     apex.prepend("www")?,
///     Ttl::secs(300),
///     RecordData::A("203.0.113.7".parse()?),
/// ));
/// match zone.lookup(&apex.prepend("www")?, RecordType::A) {
///     ZoneAnswer::Records(rrs) => assert_eq!(rrs.len(), 1),
///     other => panic!("unexpected {other:?}"),
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Zone {
    origin: DomainName,
    /// (owner, type) -> records. BTreeMap keeps iteration deterministic.
    /// Sets are shared: lookups hand out refcounted handles, and the rare
    /// mutations (provider switches between sweeps) rebuild the set.
    records: BTreeMap<(DomainName, RecordType), RecordSet>,
    /// SOA-serial-style generation counter, bumped on every record mutation.
    /// Two equal generations guarantee the record contents are unchanged;
    /// the counter is compared only for equality, never for ordering.
    generation: u64,
}

impl Zone {
    /// Creates an empty zone rooted at `origin`.
    pub fn new(origin: DomainName) -> Self {
        Zone {
            origin,
            records: BTreeMap::new(),
            generation: 0,
        }
    }

    /// The zone's origin name.
    pub fn origin(&self) -> &DomainName {
        &self.origin
    }

    /// The zone's generation counter — an SOA-serial analogue that changes
    /// whenever any record is added, removed, or replaced. Delta collection
    /// compares generations between rounds to skip unchanged zones.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Adds a record. The owner must be at or under the origin.
    ///
    /// # Panics
    ///
    /// Panics if the record owner is outside the zone; use [`Zone::try_add`]
    /// for a fallible variant.
    pub fn add(&mut self, record: ResourceRecord) {
        self.try_add(record).expect("record belongs to this zone");
    }

    /// Adds a record, rejecting owners outside the zone.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::OutOfZone`] if the owner is not at/under the
    /// origin.
    pub fn try_add(&mut self, record: ResourceRecord) -> Result<(), DnsError> {
        if !record.name.is_subdomain_of(&self.origin) {
            return Err(DnsError::OutOfZone {
                zone: self.origin.to_string(),
                name: record.name.to_string(),
            });
        }
        let key = (record.name.clone(), record.record_type());
        match self.records.get_mut(&key) {
            // Mutation is cold (provider switches between sweeps); rebuild
            // the shared set rather than complicating the hot lookup path.
            Some(set) => {
                let mut rrs = set.to_vec();
                rrs.push(record);
                *set = rrs.into();
            }
            None => {
                self.records.insert(key, RecordSet::from(vec![record]));
            }
        }
        self.generation += 1;
        Ok(())
    }

    /// Removes all records of `rtype` at `name`, returning them.
    pub fn remove(&mut self, name: &DomainName, rtype: RecordType) -> Vec<ResourceRecord> {
        match self.records.remove(&(name.clone(), rtype)) {
            Some(set) => {
                self.generation += 1;
                set.to_vec()
            }
            None => Vec::new(),
        }
    }

    /// Removes every record at `name` (all types).
    pub fn remove_name(&mut self, name: &DomainName) -> usize {
        let keys: Vec<_> = self
            .records
            .keys()
            .filter(|(n, _)| n == name)
            .cloned()
            .collect();
        let mut removed = 0;
        for key in keys {
            removed += self.records.remove(&key).map_or(0, |set| set.len());
        }
        if removed > 0 {
            self.generation += 1;
        }
        removed
    }

    /// Replaces all records of `rtype` at `name` with `records`.
    pub fn replace(&mut self, name: &DomainName, rtype: RecordType, records: impl Into<RecordSet>) {
        let records: RecordSet = records.into();
        self.generation += 1;
        if records.is_empty() {
            self.records.remove(&(name.clone(), rtype));
            return;
        }
        debug_assert!(records
            .iter()
            .all(|rr| rr.record_type() == rtype && &rr.name == name));
        self.records.insert((name.clone(), rtype), records);
    }

    /// Direct records of `rtype` at `name` (no CNAME/delegation logic).
    pub fn get(&self, name: &DomainName, rtype: RecordType) -> &[ResourceRecord] {
        self.get_set(name, rtype).map_or(&[], |set| &set[..])
    }

    /// The shared record set of `rtype` at `name`, if present.
    fn get_set(&self, name: &DomainName, rtype: RecordType) -> Option<&RecordSet> {
        self.records.get(&(name.clone(), rtype))
    }

    /// True if any record exists at `name`.
    pub fn name_exists(&self, name: &DomainName) -> bool {
        RecordType::ALL
            .iter()
            .any(|t| self.records.contains_key(&(name.clone(), *t)))
    }

    /// Full RFC-1034-style lookup (see type docs).
    pub fn lookup(&self, name: &DomainName, rtype: RecordType) -> ZoneAnswer {
        if !name.is_subdomain_of(&self.origin) {
            return ZoneAnswer::NxDomain;
        }
        // 1. Child zone cut: an NS set at a *proper* descendant of the origin
        //    that is an ancestor of (or equal to) the queried name, unless
        //    we're asking the cut point for its own NS set.
        let mut cut = name.clone();
        loop {
            if cut != self.origin {
                let own_ns_query = cut == *name && rtype == RecordType::Ns;
                if !own_ns_query {
                    if let Some(ns) = self.get_set(&cut, RecordType::Ns) {
                        if !ns.is_empty() {
                            return ZoneAnswer::Delegation(RecordSet::clone(ns));
                        }
                    }
                }
            }
            match cut.parent() {
                Some(parent) if parent.is_subdomain_of(&self.origin) && parent != cut => {
                    cut = parent;
                }
                _ => break,
            }
        }
        // 2. Exact match.
        if let Some(exact) = self.get_set(name, rtype) {
            if !exact.is_empty() {
                return ZoneAnswer::Records(RecordSet::clone(exact));
            }
        }
        // 3. CNAME indirection (never for CNAME queries themselves).
        if rtype != RecordType::Cname {
            if let Some(cname) = self.get(name, RecordType::Cname).first() {
                return ZoneAnswer::Cname(cname.clone());
            }
        }
        // 4/5. NODATA vs NXDOMAIN.
        if self.name_exists(name) {
            ZoneAnswer::NoData
        } else {
            ZoneAnswer::NxDomain
        }
    }

    /// Number of records in the zone.
    pub fn len(&self) -> usize {
        self.records.values().map(|set| set.len()).sum()
    }

    /// True if the zone holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates all records in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &ResourceRecord> {
        self.records.values().flat_map(|set| set.iter())
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; zone {}", self.origin)?;
        for rr in self.iter() {
            writeln!(f, "{rr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordData, Ttl};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    fn a(owner: &str, ip: [u8; 4]) -> ResourceRecord {
        ResourceRecord::new(name(owner), Ttl::secs(300), RecordData::A(ip.into()))
    }

    fn zone_with_www() -> Zone {
        let mut z = Zone::new(name("example.com"));
        z.add(a("www.example.com", [203, 0, 113, 7]));
        z.add(ResourceRecord::new(
            name("example.com"),
            Ttl::hours(1),
            RecordData::Mx {
                preference: 10,
                exchange: name("mx.example.com"),
            },
        ));
        z
    }

    #[test]
    fn exact_match() {
        let z = zone_with_www();
        match z.lookup(&name("www.example.com"), RecordType::A) {
            ZoneAnswer::Records(rrs) => {
                assert_eq!(rrs[0].data.as_a(), Some(Ipv4Addr::new(203, 0, 113, 7)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nodata_vs_nxdomain() {
        let z = zone_with_www();
        assert_eq!(
            z.lookup(&name("www.example.com"), RecordType::Mx),
            ZoneAnswer::NoData
        );
        assert_eq!(
            z.lookup(&name("nope.example.com"), RecordType::A),
            ZoneAnswer::NxDomain
        );
    }

    #[test]
    fn out_of_zone_name_is_nxdomain() {
        let z = zone_with_www();
        assert_eq!(
            z.lookup(&name("www.other.org"), RecordType::A),
            ZoneAnswer::NxDomain
        );
    }

    #[test]
    fn cname_indirection() {
        let mut z = Zone::new(name("example.com"));
        z.add(ResourceRecord::new(
            name("www.example.com"),
            Ttl::secs(300),
            RecordData::Cname(name("x7f3.incapdns.net")),
        ));
        match z.lookup(&name("www.example.com"), RecordType::A) {
            ZoneAnswer::Cname(rr) => {
                assert_eq!(rr.data.as_cname(), Some(&name("x7f3.incapdns.net")));
            }
            other => panic!("unexpected {other:?}"),
        }
        // A CNAME query gets the CNAME as a plain record, not indirection.
        match z.lookup(&name("www.example.com"), RecordType::Cname) {
            ZoneAnswer::Records(rrs) => assert_eq!(rrs.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delegation_covers_descendants() {
        let mut z = Zone::new(name("com"));
        z.add(ResourceRecord::new(
            name("example.com"),
            Ttl::days(2),
            RecordData::Ns(name("kate.ns.cloudflare.com")),
        ));
        match z.lookup(&name("www.example.com"), RecordType::A) {
            ZoneAnswer::Delegation(ns) => assert_eq!(ns.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        // Asking the cut itself for NS returns the cut's NS set as a
        // delegation-shaped answer only for names *under* it; the cut name's
        // own NS query yields the records.
        match z.lookup(&name("example.com"), RecordType::Ns) {
            ZoneAnswer::Records(ns) => assert_eq!(ns.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        // A non-NS query at the cut is a delegation too.
        match z.lookup(&name("example.com"), RecordType::A) {
            ZoneAnswer::Delegation(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn apex_ns_is_not_a_delegation() {
        let mut z = Zone::new(name("example.com"));
        z.add(ResourceRecord::new(
            name("example.com"),
            Ttl::days(2),
            RecordData::Ns(name("ns1.example.com")),
        ));
        z.add(a("www.example.com", [1, 2, 3, 4]));
        // The origin's own NS records are authoritative data, not a cut.
        match z.lookup(&name("www.example.com"), RecordType::A) {
            ZoneAnswer::Records(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn try_add_rejects_foreign_records() {
        let mut z = Zone::new(name("example.com"));
        let err = z.try_add(a("www.other.org", [1, 2, 3, 4])).unwrap_err();
        assert!(matches!(err, DnsError::OutOfZone { .. }));
    }

    #[test]
    fn remove_and_replace() {
        let mut z = zone_with_www();
        assert_eq!(z.remove(&name("www.example.com"), RecordType::A).len(), 1);
        assert_eq!(
            z.lookup(&name("www.example.com"), RecordType::A),
            ZoneAnswer::NxDomain
        );
        z.replace(
            &name("www.example.com"),
            RecordType::A,
            vec![a("www.example.com", [9, 9, 9, 9])],
        );
        assert_eq!(z.get(&name("www.example.com"), RecordType::A).len(), 1);
    }

    #[test]
    fn remove_name_clears_all_types() {
        let mut z = Zone::new(name("example.com"));
        z.add(a("x.example.com", [1, 1, 1, 1]));
        z.add(ResourceRecord::new(
            name("x.example.com"),
            Ttl::secs(60),
            RecordData::Txt("hello".into()),
        ));
        assert_eq!(z.remove_name(&name("x.example.com")), 2);
        assert!(z.is_empty());
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut z = Zone::new(name("example.com"));
        assert_eq!(z.generation(), 0);
        z.add(a("www.example.com", [1, 2, 3, 4]));
        assert_eq!(z.generation(), 1);
        z.replace(
            &name("www.example.com"),
            RecordType::A,
            vec![a("www.example.com", [5, 6, 7, 8])],
        );
        assert_eq!(z.generation(), 2);
        z.remove(&name("www.example.com"), RecordType::A);
        assert_eq!(z.generation(), 3);
        // Removing what is not there is not a mutation.
        z.remove(&name("www.example.com"), RecordType::A);
        assert_eq!(z.remove_name(&name("www.example.com")), 0);
        assert_eq!(z.generation(), 3);
        z.add(a("x.example.com", [1, 1, 1, 1]));
        z.add(a("x.example.com", [2, 2, 2, 2]));
        assert_eq!(z.generation(), 5);
        assert_eq!(z.remove_name(&name("x.example.com")), 2);
        assert_eq!(z.generation(), 6);
        // Failed adds leave the generation untouched.
        assert!(z.try_add(a("www.other.org", [1, 2, 3, 4])).is_err());
        assert_eq!(z.generation(), 6);
    }

    #[test]
    fn len_counts_records() {
        let z = zone_with_www();
        assert_eq!(z.len(), 2);
        assert_eq!(z.iter().count(), 2);
    }
}
