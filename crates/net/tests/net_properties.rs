//! Property tests for the network substrate.

use proptest::prelude::*;

use remnant_net::{AnycastMap, Asn, IpAllocator, IpRangeDb, Ipv4Cidr, PopId, Region};
use std::net::Ipv4Addr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn allocator_yields_unique_in_pool_addresses(ip: u32, len in 20u8..28, take in 1usize..64) {
        let block = Ipv4Cidr::new(Ipv4Addr::from(ip), len).unwrap();
        let mut pool = IpAllocator::new("p", vec![block]);
        let capacity = pool.capacity() as usize;
        let n = take.min(capacity);
        let addrs = pool.allocate_n(n).unwrap();
        let unique: std::collections::BTreeSet<_> = addrs.iter().collect();
        prop_assert_eq!(unique.len(), n, "all distinct");
        for addr in &addrs {
            prop_assert!(block.contains(*addr), "{addr} inside {block}");
            // Network/broadcast addresses are never handed out for /<31.
            prop_assert_ne!(*addr, block.network());
            prop_assert_ne!(*addr, block.last());
        }
        prop_assert_eq!(pool.allocated(), n as u64);
    }

    #[test]
    fn allocator_exhausts_exactly_at_capacity(len in 26u8..31) {
        let block = Ipv4Cidr::new(Ipv4Addr::new(10, 7, 0, 0), len).unwrap();
        let mut pool = IpAllocator::new("p", vec![block]);
        let capacity = pool.capacity();
        for _ in 0..capacity {
            prop_assert!(pool.allocate().is_ok());
        }
        prop_assert!(pool.allocate().is_err());
    }

    #[test]
    fn range_db_insert_remove_roundtrip(
        blocks in prop::collection::btree_map((any::<u32>(), 8u8..=28), any::<u32>(), 1..16),
    ) {
        let mut db = IpRangeDb::new();
        let mut normalized = std::collections::BTreeMap::new();
        for ((ip, len), asn) in &blocks {
            let block = Ipv4Cidr::new(Ipv4Addr::from(*ip), *len).unwrap();
            db.insert(block, Asn::new(*asn));
            normalized.insert(block, Asn::new(*asn));
        }
        prop_assert_eq!(db.len(), normalized.len());
        // Every stored block's network address matches its own entry or a
        // longer one.
        for block in normalized.keys() {
            let hit = db.lookup_block(block.network()).expect("member matches");
            prop_assert!(hit.0.prefix_len() >= block.prefix_len());
        }
        // Removal empties the db.
        for (block, asn) in &normalized {
            prop_assert_eq!(db.remove(block), Some(*asn));
        }
        prop_assert!(db.is_empty());
    }

    #[test]
    fn anycast_catchment_is_total_once_announced(
        ip: u32,
        announce_regions in prop::collection::btree_set(0usize..10, 1..10),
    ) {
        let addr = Ipv4Addr::from(ip);
        let mut map = AnycastMap::new();
        for idx in &announce_regions {
            map.announce(addr, Region::ALL[*idx], PopId(*idx as u32));
        }
        // Every region — announced or not — reaches *some* announcing PoP.
        for region in Region::ALL {
            let pop = map.catchment(addr, region).unwrap();
            prop_assert!(announce_regions.contains(&(pop.0 as usize)));
        }
        // Announced regions reach their own PoP.
        for idx in &announce_regions {
            prop_assert_eq!(
                map.catchment(addr, Region::ALL[*idx]).unwrap(),
                PopId(*idx as u32)
            );
        }
    }

    #[test]
    fn cidr_nth_iterates_without_gaps(ip: u32, len in 24u8..=30) {
        let block = Ipv4Cidr::new(Ipv4Addr::from(ip), len).unwrap();
        let from_iter: Vec<Ipv4Addr> = block.iter().collect();
        prop_assert_eq!(from_iter.len() as u64, block.size());
        for (i, addr) in from_iter.iter().enumerate() {
            prop_assert_eq!(Some(*addr), block.nth(i as u64));
            prop_assert!(block.contains(*addr));
        }
        // Consecutive addresses differ by exactly one.
        for pair in from_iter.windows(2) {
            prop_assert_eq!(u32::from(pair[1]) - u32::from(pair[0]), 1);
        }
    }
}
