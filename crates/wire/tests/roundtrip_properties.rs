//! Codec differential properties: arbitrary messages survive
//! encode → decode byte-for-byte at the typed level, and the encoded
//! form itself is canonical (re-encoding the decoded message reproduces
//! the same bytes).

use std::net::Ipv4Addr;

use proptest::prelude::*;

use remnant_dns::{
    DomainName, Query, Rcode, RecordData, RecordType, ResourceRecord, Response, Ttl,
};
use remnant_wire::{Flags, Message};

fn label() -> impl Strategy<Value = String> {
    "[a-z]([a-z0-9_-]{0,6}[a-z0-9])?"
}

fn domain() -> impl Strategy<Value = DomainName> {
    prop::collection::vec(label(), 1..5).prop_map(|labels| {
        labels
            .join(".")
            .parse()
            .expect("generated labels are valid")
    })
}

fn rtype() -> impl Strategy<Value = RecordType> {
    prop::sample::select(RecordType::ALL.to_vec())
}

fn rcode() -> impl Strategy<Value = Rcode> {
    prop::sample::select(vec![
        Rcode::NoError,
        Rcode::NxDomain,
        Rcode::Refused,
        Rcode::ServFail,
    ])
}

fn record_data() -> impl Strategy<Value = RecordData> {
    prop_oneof![
        any::<u32>().prop_map(|ip| RecordData::A(Ipv4Addr::from(ip))),
        domain().prop_map(RecordData::Cname),
        domain().prop_map(RecordData::Ns),
        (any::<u16>(), domain()).prop_map(|(preference, exchange)| RecordData::Mx {
            preference,
            exchange,
        }),
        "[ -~]{0,60}".prop_map(RecordData::Txt),
        // TXT spanning multiple character-strings, with multi-byte chars.
        "[a-z€λ]{250,300}".prop_map(RecordData::Txt),
        (domain(), any::<u32>()).prop_map(|(mname, serial)| RecordData::Soa { mname, serial }),
    ]
}

fn record() -> impl Strategy<Value = ResourceRecord> {
    (domain(), any::<u32>(), record_data())
        .prop_map(|(name, ttl, data)| ResourceRecord::new(name, Ttl::secs(ttl), data))
}

fn flags() -> impl Strategy<Value = Flags> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        rcode(),
    )
        .prop_map(|(qr, aa, tc, rd, ra, rcode)| Flags {
            qr,
            aa,
            tc,
            rd,
            ra,
            rcode,
        })
}

fn message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        flags(),
        (any::<bool>(), domain(), rtype()),
        prop::collection::vec(record(), 0..6),
        prop::collection::vec(record(), 0..4),
        prop::collection::vec(record(), 0..4),
    )
        .prop_map(
            |(id, flags, (has_question, qname, qtype), answers, authority, additional)| Message {
                id,
                flags,
                question: has_question.then(|| Query::new(qname, qtype)),
                answers,
                authority,
                additional,
            },
        )
}

fn response() -> impl Strategy<Value = Response> {
    (
        (domain(), rtype()),
        rcode(),
        any::<bool>(),
        prop::collection::vec(record(), 0..6),
        prop::collection::vec(record(), 0..4),
        prop::collection::vec(record(), 0..4),
    )
        .prop_map(
            |((qname, qtype), rcode, authoritative, answers, authority, additional)| Response {
                query: Query::new(qname, qtype),
                rcode,
                authoritative,
                answers: answers.into(),
                authority: authority.into(),
                additional: additional.into(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity on typed messages.
    #[test]
    fn message_round_trips_losslessly(message in message()) {
        let wire = message.encode().expect("arbitrary message encodes");
        let decoded = Message::decode(&wire).expect("own encoding decodes");
        prop_assert_eq!(decoded, message);
    }

    /// The encoding is canonical: decode → encode reproduces the exact
    /// bytes, compression pointers included.
    #[test]
    fn encoding_is_canonical(message in message()) {
        let wire = message.encode().expect("encodes");
        let reencoded = Message::decode(&wire)
            .expect("decodes")
            .encode()
            .expect("re-encodes");
        prop_assert_eq!(reencoded, wire);
    }

    /// The Response ↔ Message conversion composed with the codec is
    /// lossless, so wire-path resolution can't skew measurements.
    #[test]
    fn response_survives_the_wire(response in response(), id in any::<u16>()) {
        let wire = Message::response(id, &response).encode().expect("encodes");
        let back = Message::decode(&wire)
            .expect("decodes")
            .to_response()
            .expect("response messages carry their question");
        prop_assert_eq!(back, response);
    }

    /// Query frames round-trip and keep their ID.
    #[test]
    fn query_survives_the_wire(name in domain(), qtype in rtype(), id in any::<u16>()) {
        let query = Query::new(name, qtype);
        let wire = Message::query(id, &query).encode().expect("encodes");
        let decoded = Message::decode(&wire).expect("decodes");
        prop_assert_eq!(decoded.id, id);
        prop_assert_eq!(decoded.question, Some(query));
        prop_assert!(decoded.answers.is_empty());
    }

    /// Compression never changes meaning: a message whose sections share
    /// suffixes decodes to the same records as one spelled in full.
    #[test]
    fn shared_suffixes_compress_reversibly(
        apex in domain(),
        hosts in prop::collection::vec(label(), 2..8),
        ttl in any::<u32>(),
    ) {
        let records: Vec<ResourceRecord> = hosts
            .iter()
            .enumerate()
            .map(|(i, host)| {
                let owner: DomainName = format!("{host}.{apex}")
                    .parse()
                    .expect("label under apex is valid");
                ResourceRecord::new(
                    owner,
                    Ttl::secs(ttl),
                    RecordData::A(Ipv4Addr::new(10, 0, 0, i as u8)),
                )
            })
            .collect();
        let query = Query::new(apex, RecordType::A);
        let response = Response::answer(query, records);
        let wire = Message::response(1, &response).encode().expect("encodes");
        let back = Message::decode(&wire).expect("decodes").to_response().expect("question");
        prop_assert_eq!(back, response);
    }
}
