//! Property tests pinning the interned [`DomainName`] to the semantics of
//! the original non-interned implementation.
//!
//! `reference` below is a faithful copy of the pre-interning parsing and
//! suffix logic (owned `String` + label offsets, no sharing). Every
//! property drives both implementations with the same inputs and demands
//! identical observable behavior, so the interner can never drift from the
//! documented normalization/validation semantics.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;

use remnant_dns::DomainName;

/// The pre-interning `DomainName` logic, kept as a behavioral oracle.
mod reference {
    const MAX_NAME_LEN: usize = 253;
    const MAX_LABEL_LEN: usize = 63;

    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct RefName {
        pub name: String,
        pub label_starts: Vec<u16>,
    }

    pub fn parse(s: &str) -> Option<RefName> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() || trimmed.len() > MAX_NAME_LEN {
            return None;
        }
        let lowered = trimmed.to_ascii_lowercase();
        let mut label_starts = Vec::new();
        let mut start = 0usize;
        for label in lowered.split('.') {
            if label.is_empty() || label.len() > MAX_LABEL_LEN {
                return None;
            }
            if label.starts_with('-') || label.ends_with('-') {
                return None;
            }
            if !label
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
            {
                return None;
            }
            label_starts.push(start as u16);
            start += label.len() + 1;
        }
        Some(RefName {
            name: lowered,
            label_starts,
        })
    }

    impl RefName {
        pub fn label_count(&self) -> usize {
            self.label_starts.len()
        }

        pub fn suffix(&self, n: usize) -> Option<RefName> {
            if n == 0 || n > self.label_count() {
                return None;
            }
            let idx = self.label_count() - n;
            let start = usize::from(self.label_starts[idx]);
            let name = self.name[start..].to_string();
            let label_starts = self.label_starts[idx..]
                .iter()
                .map(|&s| s - start as u16)
                .collect();
            Some(RefName { name, label_starts })
        }

        pub fn tld(&self) -> &str {
            let start = usize::from(*self.label_starts.last().expect("non-empty"));
            &self.name[start..]
        }

        pub fn apex(&self) -> RefName {
            self.suffix(2.min(self.label_count())).expect("valid")
        }

        pub fn parent(&self) -> Option<RefName> {
            self.suffix(self.label_count().checked_sub(1)?)
        }

        pub fn is_subdomain_of(&self, other: &RefName) -> bool {
            let n = other.label_count();
            self.suffix(n).is_some_and(|s| s.name == other.name)
        }

        pub fn suffixes(&self) -> Vec<RefName> {
            (1..=self.label_count())
                .rev()
                .filter_map(|n| self.suffix(n))
                .collect()
        }
    }
}

/// Mostly-valid names: lowercase/uppercase labels, digits, hyphens,
/// underscores, optional trailing dot.
fn name_like() -> impl Strategy<Value = String> {
    (
        prop::collection::vec("[A-Za-z0-9_-]{1,12}", 1..5),
        any::<bool>(),
    )
        .prop_map(|(labels, dot)| {
            let mut s = labels.join(".");
            if dot {
                s.push('.');
            }
            s
        })
}

/// Raw strings that exercise the rejection paths too.
fn raw_input() -> impl Strategy<Value = String> {
    prop_oneof![
        name_like(),
        "[ -~]{0,40}",            // printable ASCII junk
        "\\.{0,3}[a-z]{0,5}\\.*", // dot edge cases
        "[a-z]{60,70}\\.com",     // label length edge
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_outcome_matches_reference(input in raw_input()) {
        let ours = DomainName::parse(&input);
        let oracle = reference::parse(&input);
        prop_assert_eq!(ours.is_ok(), oracle.is_some(), "input {:?}", input);
        if let (Ok(ours), Some(oracle)) = (ours, oracle) {
            prop_assert_eq!(ours.as_str(), oracle.name.as_str());
            prop_assert_eq!(ours.label_count(), oracle.label_count());
        }
    }

    #[test]
    fn derived_operations_match_reference(input in name_like()) {
        let Ok(ours) = DomainName::parse(&input) else {
            prop_assert!(reference::parse(&input).is_none());
            return Ok(());
        };
        let oracle = reference::parse(&input).expect("oracle accepts what we accept");

        prop_assert_eq!(ours.tld(), oracle.tld());
        prop_assert_eq!(ours.apex().as_str(), oracle.apex().name.as_str());
        prop_assert_eq!(
            ours.parent().map(|p| p.to_string()),
            oracle.parent().map(|p| p.name)
        );
        let our_suffixes: Vec<String> = ours.suffixes().map(|s| s.to_string()).collect();
        let oracle_suffixes: Vec<String> =
            oracle.suffixes().into_iter().map(|s| s.name).collect();
        prop_assert_eq!(our_suffixes, oracle_suffixes);
        for n in 0..=ours.label_count() + 1 {
            prop_assert_eq!(
                ours.suffix(n).map(|s| s.to_string()),
                oracle.suffix(n).map(|s| s.name)
            );
        }
    }

    #[test]
    fn subdomain_relation_matches_reference(a in name_like(), b in name_like()) {
        let (Ok(da), Ok(db)) = (DomainName::parse(&a), DomainName::parse(&b)) else {
            return Ok(());
        };
        let ra = reference::parse(&a).expect("oracle accepts");
        let rb = reference::parse(&b).expect("oracle accepts");
        prop_assert_eq!(da.is_subdomain_of(&db), ra.is_subdomain_of(&rb));
        prop_assert_eq!(db.is_subdomain_of(&da), rb.is_subdomain_of(&ra));
        // A name's suffixes are exactly the names it is a subdomain of
        // (within its own chain).
        for suffix in da.suffixes() {
            prop_assert!(da.is_subdomain_of(&suffix));
        }
    }

    #[test]
    fn equality_and_hash_are_consistent_across_handles(input in name_like()) {
        let Ok(first) = DomainName::parse(&input) else { return Ok(()); };
        // A fresh parse of any case/trailing-dot variant must be equal and
        // hash identically (interned or not, the contract is content-based).
        let variant = format!("{}.", input.trim_end_matches('.').to_ascii_uppercase());
        let second = DomainName::parse(&variant).expect("same name, different spelling");
        prop_assert_eq!(&first, &second);

        let hash = |n: &DomainName| {
            let mut h = DefaultHasher::new();
            n.hash(&mut h);
            h.finish()
        };
        prop_assert_eq!(hash(&first), hash(&second));

        // Clones are equal to their source and to fresh parses.
        let clone = first.clone();
        prop_assert_eq!(&clone, &first);
        prop_assert_eq!(hash(&clone), hash(&first));
    }

    #[test]
    fn ordering_is_string_ordering(a in name_like(), b in name_like()) {
        let (Ok(da), Ok(db)) = (DomainName::parse(&a), DomainName::parse(&b)) else {
            return Ok(());
        };
        // The old derived Ord compared the normalized string first; label
        // offsets are a pure function of it, so string order is the contract.
        prop_assert_eq!(da.cmp(&db), da.as_str().cmp(db.as_str()));
        prop_assert_eq!(da == db, da.as_str() == db.as_str());
    }
}
