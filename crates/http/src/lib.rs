//! Simulated HTTP layer.
//!
//! The paper's **HTML verification** step (Sec IV-C.3, Sec V-A.2) decides
//! whether a candidate IP address really is a website's origin: fetch the
//! landing page through the DPS edge (IP2), fetch the same URL directly from
//! the candidate (IP1), and compare **titles and meta tags**. Two effects
//! make this a *lower bound*, and both are modeled here:
//!
//! * "some attributes in the meta tags are dynamically changed based on
//!   different factors (e.g., time and location) of the HTTP requests" —
//!   [`PageTemplate`] supports dynamic meta keys whose values differ per
//!   request;
//! * "the origin server could be configured to only respond to the requests
//!   from the DPS" — [`FirewallPolicy::DpsOnly`] drops direct fetches.
//!
//! The crate provides typed HTML documents and generators
//! ([`page`]), origin servers ([`origin`]), a generic caching reverse proxy
//! for CDN edges ([`edge`]), the [`HttpTransport`] abstraction, and the
//! title+meta comparison used by the verifier ([`compare`]).
//!
//! # Example
//!
//! ```
//! use remnant_http::{pages_match, PageTemplate};
//!
//! let template = PageTemplate::generate("example.com", 7);
//! let via_edge = template.render(1);
//! let direct = template.render(2);
//! // Static pages render identically regardless of request nonce.
//! assert!(pages_match(&via_edge, &direct));
//! ```

pub mod compare;
pub mod edge;
pub mod error;
pub mod origin;
pub mod page;
pub mod transport;

pub use compare::{pages_match, MatchVerdict};
pub use edge::ReverseProxy;
pub use error::HttpError;
pub use origin::{FirewallPolicy, OriginServer};
pub use page::{HtmlDocument, PageTemplate};
pub use remnant_obs::Instrumented;
pub use transport::{
    CountingHttpTransport, FetchStats, HttpRequest, HttpResponse, HttpStatus, HttpTransport,
    StatusClass,
};
