//! Wire-level constants, type/rcode number mappings, and the fixed
//! 12-byte header.
//!
//! Everything here is the RFC 1035 §4.1.1 vocabulary: TYPE and CLASS
//! numbers, the flags word layout, and the header counts. The mapping
//! functions are total in both directions over the values the simulation
//! models and return typed [`WireError`]s for everything else — an AAAA
//! query against this codec is an [`WireError::UnsupportedType`] carrying
//! wire value 28, never a silent drop.

use remnant_dns::{Rcode, RecordType};

use crate::error::WireError;

/// Length of the fixed DNS header.
pub const HEADER_LEN: usize = 12;

/// Classic UDP payload ceiling (RFC 1035 §4.2.1). Responses longer than
/// this are truncated with the TC bit set; clients retry over TCP.
pub const MAX_UDP_PAYLOAD: usize = 512;

/// TYPE number for A records.
pub const TYPE_A: u16 = 1;
/// TYPE number for NS records.
pub const TYPE_NS: u16 = 2;
/// TYPE number for CNAME records.
pub const TYPE_CNAME: u16 = 5;
/// TYPE number for SOA records.
pub const TYPE_SOA: u16 = 6;
/// TYPE number for MX records.
pub const TYPE_MX: u16 = 15;
/// TYPE number for TXT records.
pub const TYPE_TXT: u16 = 16;

/// The Internet class (the only CLASS this codec speaks).
pub const CLASS_IN: u16 = 1;

/// Wire TYPE number for a [`RecordType`].
///
/// # Errors
///
/// Returns [`WireError::UnsupportedType`] for record types added to the
/// (non-exhaustive) enum after this codec, so new variants fail loudly
/// instead of encoding garbage.
pub fn rtype_to_wire(rtype: RecordType) -> Result<u16, WireError> {
    match rtype {
        RecordType::A => Ok(TYPE_A),
        RecordType::Ns => Ok(TYPE_NS),
        RecordType::Cname => Ok(TYPE_CNAME),
        RecordType::Soa => Ok(TYPE_SOA),
        RecordType::Mx => Ok(TYPE_MX),
        RecordType::Txt => Ok(TYPE_TXT),
        _ => Err(WireError::UnsupportedType {
            offset: 0,
            rtype: u16::MAX,
        }),
    }
}

/// [`RecordType`] for a wire TYPE number read at `offset`.
///
/// # Errors
///
/// Returns [`WireError::UnsupportedType`] carrying the raw wire value for
/// any TYPE outside the modeled set.
pub fn rtype_from_wire(value: u16, offset: usize) -> Result<RecordType, WireError> {
    match value {
        TYPE_A => Ok(RecordType::A),
        TYPE_NS => Ok(RecordType::Ns),
        TYPE_CNAME => Ok(RecordType::Cname),
        TYPE_SOA => Ok(RecordType::Soa),
        TYPE_MX => Ok(RecordType::Mx),
        TYPE_TXT => Ok(RecordType::Txt),
        other => Err(WireError::UnsupportedType {
            offset,
            rtype: other,
        }),
    }
}

/// Wire RCODE for an [`Rcode`].
///
/// # Errors
///
/// Returns [`WireError::BadRcode`] for response codes added to the
/// (non-exhaustive) enum after this codec.
pub fn rcode_to_wire(rcode: Rcode) -> Result<u8, WireError> {
    match rcode {
        Rcode::NoError => Ok(0),
        Rcode::ServFail => Ok(2),
        Rcode::NxDomain => Ok(3),
        Rcode::Refused => Ok(5),
        _ => Err(WireError::BadRcode {
            offset: 0,
            rcode: u8::MAX,
        }),
    }
}

/// [`Rcode`] for a wire RCODE read in the flags word at `offset`.
///
/// # Errors
///
/// Returns [`WireError::BadRcode`] for RCODEs the simulation does not
/// model (FORMERR, NOTIMP, the extended range).
pub fn rcode_from_wire(value: u8, offset: usize) -> Result<Rcode, WireError> {
    match value {
        0 => Ok(Rcode::NoError),
        2 => Ok(Rcode::ServFail),
        3 => Ok(Rcode::NxDomain),
        5 => Ok(Rcode::Refused),
        other => Err(WireError::BadRcode {
            offset,
            rcode: other,
        }),
    }
}

/// The decoded RFC 1035 flags word (QR, AA, TC, RD, RA, RCODE).
///
/// Only opcode QUERY is modeled; the Z/AD/CD bits are ignored on parse
/// and written as zero on encode, so a parse→encode round trip is
/// canonical rather than bit-preserving in those reserved positions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Flags {
    /// True for responses, false for queries.
    pub qr: bool,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated — the response exceeded the transport's payload limit.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Flags {
    /// Flags for an outgoing query (RD set, everything else clear).
    pub fn query() -> Self {
        Flags {
            rd: true,
            ..Flags::default()
        }
    }

    /// Flags for a recursive response with the given code.
    pub fn response(rcode: Rcode, authoritative: bool) -> Self {
        Flags {
            qr: true,
            aa: authoritative,
            tc: false,
            rd: true,
            ra: true,
            rcode,
        }
    }

    /// Encodes the 16-bit flags word.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadRcode`] if the response code has no wire
    /// number.
    pub fn encode(self) -> Result<u16, WireError> {
        let mut word = u16::from(rcode_to_wire(self.rcode)?);
        if self.qr {
            word |= 1 << 15;
        }
        if self.aa {
            word |= 1 << 10;
        }
        if self.tc {
            word |= 1 << 9;
        }
        if self.rd {
            word |= 1 << 8;
        }
        if self.ra {
            word |= 1 << 7;
        }
        Ok(word)
    }

    /// Decodes a flags word read at byte `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadOpcode`] for any opcode other than QUERY
    /// and [`WireError::BadRcode`] for unmodeled response codes.
    pub fn decode(word: u16, offset: usize) -> Result<Self, WireError> {
        let opcode = ((word >> 11) & 0xF) as u8;
        if opcode != 0 {
            return Err(WireError::BadOpcode { offset, opcode });
        }
        Ok(Flags {
            qr: word & (1 << 15) != 0,
            aa: word & (1 << 10) != 0,
            tc: word & (1 << 9) != 0,
            rd: word & (1 << 8) != 0,
            ra: word & (1 << 7) != 0,
            rcode: rcode_from_wire((word & 0xF) as u8, offset)?,
        })
    }
}

/// The fixed 12-byte message header.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Header {
    /// Transaction ID, echoed from query to response.
    pub id: u16,
    /// Decoded flags word.
    pub flags: Flags,
    /// Question count.
    pub qdcount: u16,
    /// Answer-section record count.
    pub ancount: u16,
    /// Authority-section record count.
    pub nscount: u16,
    /// Additional-section record count.
    pub arcount: u16,
}

impl Header {
    /// Decodes the header at the start of `msg`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if `msg` is shorter than
    /// [`HEADER_LEN`], plus the flag-word errors from [`Flags::decode`].
    pub fn decode(msg: &[u8]) -> Result<Self, WireError> {
        if msg.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                offset: msg.len(),
                needed: HEADER_LEN - msg.len(),
            });
        }
        let word = |i: usize| u16::from_be_bytes([msg[i], msg[i + 1]]);
        Ok(Header {
            id: word(0),
            flags: Flags::decode(word(2), 2)?,
            qdcount: word(4),
            ancount: word(6),
            nscount: word(8),
            arcount: word(10),
        })
    }

    /// Appends the 12 header bytes to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadRcode`] if the flags cannot be encoded.
    pub fn encode_into(self, out: &mut Vec<u8>) -> Result<(), WireError> {
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.flags.encode()?.to_be_bytes());
        out.extend_from_slice(&self.qdcount.to_be_bytes());
        out.extend_from_slice(&self.ancount.to_be_bytes());
        out.extend_from_slice(&self.nscount.to_be_bytes());
        out.extend_from_slice(&self.arcount.to_be_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtype_mapping_is_total_and_inverse() {
        for rtype in RecordType::ALL {
            let wire = rtype_to_wire(rtype).expect("modeled type");
            assert_eq!(rtype_from_wire(wire, 0).expect("inverse"), rtype);
        }
    }

    #[test]
    fn unknown_rtype_is_typed() {
        let err = rtype_from_wire(28, 14).unwrap_err();
        assert_eq!(
            err,
            WireError::UnsupportedType {
                offset: 14,
                rtype: 28
            }
        );
    }

    #[test]
    fn rcode_mapping_round_trips() {
        for rcode in [
            Rcode::NoError,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::Refused,
        ] {
            let wire = rcode_to_wire(rcode).expect("modeled rcode");
            assert_eq!(rcode_from_wire(wire, 0).expect("inverse"), rcode);
        }
        assert!(rcode_from_wire(1, 2).is_err()); // FORMERR
        assert!(rcode_from_wire(4, 2).is_err()); // NOTIMP
    }

    #[test]
    fn flags_round_trip() {
        let all = Flags {
            qr: true,
            aa: true,
            tc: true,
            rd: true,
            ra: true,
            rcode: Rcode::NxDomain,
        };
        let word = all.encode().unwrap();
        assert_eq!(Flags::decode(word, 2).unwrap(), all);
        assert_eq!(Flags::decode(0, 2).unwrap(), Flags::default());
    }

    #[test]
    fn flags_reject_non_query_opcode() {
        // IQUERY (opcode 1) sets bit 11.
        let err = Flags::decode(1 << 11, 2).unwrap_err();
        assert_eq!(
            err,
            WireError::BadOpcode {
                offset: 2,
                opcode: 1
            }
        );
    }

    #[test]
    fn flags_ignore_reserved_z_bits() {
        // AD/CD-style bits inside Z parse as if clear.
        let flags = Flags::decode(1 << 5, 2).unwrap();
        assert_eq!(flags, Flags::default());
    }

    #[test]
    fn header_round_trip() {
        let header = Header {
            id: 0xBEEF,
            flags: Flags::response(Rcode::NoError, true),
            qdcount: 1,
            ancount: 3,
            nscount: 0,
            arcount: 2,
        };
        let mut buf = Vec::new();
        header.encode_into(&mut buf).unwrap();
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(Header::decode(&buf).unwrap(), header);
    }

    #[test]
    fn short_header_is_truncated() {
        let err = Header::decode(&[0; 5]).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                offset: 5,
                needed: 7
            }
        );
    }
}
