//! Domain-name and resolver-cache microbenchmarks — the allocation-
//! sensitive primitives underneath every sweep: parsing (interning),
//! cloning (refcount bump), equality/hashing (pointer fast path),
//! suffix/apex derivation, and the cache-hit loop that dominates repeat
//! resolution.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use remnant::dns::{DomainName, RecordType, RecursiveResolver};
use remnant::net::Region;
use remnant::world::{World, WorldConfig};

const NAME_COUNT: u64 = 1_000;

fn sample_names() -> Vec<String> {
    (0..NAME_COUNT)
        .map(|i| format!("www.site-{i}.zone-{}.example-bench.com", i % 7))
        .collect()
}

fn bench_name_ops(c: &mut Criterion) {
    let raw = sample_names();
    let parsed: Vec<DomainName> = raw.iter().map(|s| s.parse().expect("valid")).collect();

    let mut group = c.benchmark_group("name");
    group.throughput(Throughput::Elements(NAME_COUNT));

    group.bench_function("parse_interned", |b| {
        b.iter(|| {
            for s in &raw {
                black_box(DomainName::parse(s).expect("valid"));
            }
        });
    });

    group.bench_function("clone", |b| {
        b.iter(|| {
            for n in &parsed {
                black_box(n.clone());
            }
        });
    });

    group.bench_function("eq_same_handle", |b| {
        let twins: Vec<(DomainName, DomainName)> =
            parsed.iter().map(|n| (n.clone(), n.clone())).collect();
        b.iter(|| {
            let mut eq = 0usize;
            for (a, b2) in &twins {
                eq += usize::from(a == b2);
            }
            black_box(eq)
        });
    });

    group.bench_function("hash", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for n in &parsed {
                let mut h = DefaultHasher::new();
                n.hash(&mut h);
                acc ^= h.finish();
            }
            black_box(acc)
        });
    });

    group.bench_function("apex", |b| {
        b.iter(|| {
            for n in &parsed {
                black_box(n.apex());
            }
        });
    });

    group.bench_function("suffixes", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for n in &parsed {
                count += n.suffixes().count();
            }
            black_box(count)
        });
    });

    group.finish();
}

fn bench_cache_hits(c: &mut Criterion) {
    let mut world = World::generate(WorldConfig {
        population: 500,
        seed: 7,
        warmup_days: 0,
        calibration: remnant::world::Calibration::paper(),
    });
    let names: Vec<DomainName> = world.sites().iter().map(|s| s.www.clone()).collect();
    let clock = world.clock();
    let mut resolver = RecursiveResolver::new(clock, Region::Ashburn);
    // Warm the cache once; the loop below then measures pure hit cost.
    for name in &names {
        let _ = resolver.resolve(&mut world, name, RecordType::A);
    }

    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(names.len() as u64));
    group.bench_function("resolver_hit_loop", |b| {
        b.iter(|| {
            for name in &names {
                black_box(
                    resolver
                        .resolve(&mut world, name, RecordType::A)
                        .expect("cached"),
                );
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_name_ops, bench_cache_hits);
criterion_main!(benches);
