//! DPS adoption classification: provider, status (Table III), and
//! rerouting mechanism (Sec IV-B.2, Fig 6).

use std::fmt;

use remnant_provider::{ProviderId, ReroutingMethod};

use crate::matchers::{ProviderMatcher, RecordMatches};
use crate::snapshot::SiteRecords;

/// The observable DPS status of a website (Table III).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DpsStatus {
    /// A record points to a DPS's IP (A-matched).
    On,
    /// Domain is delegated to a DPS (CNAME-matched with any provider, or
    /// NS-matched with Cloudflare) but the A record points to a non-DPS IP
    /// — typically the origin.
    Off,
    /// No DPS involvement detected.
    #[default]
    None,
}

impl fmt::Display for DpsStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DpsStatus::On => "ON",
            DpsStatus::Off => "OFF",
            DpsStatus::None => "NONE",
        })
    }
}

/// A classified site: which provider, what status, and (for ON sites) which
/// rerouting mechanism.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Adoption {
    /// The inferred provider (None iff status is NONE).
    pub provider: Option<ProviderId>,
    /// The observable status.
    pub status: DpsStatus,
    /// The inferred rerouting mechanism, when determinable.
    pub rerouting: Option<ReroutingMethod>,
}

impl Adoption {
    /// A site with no DPS involvement.
    pub const NONE: Adoption = Adoption {
        provider: None,
        status: DpsStatus::None,
        rerouting: None,
    };

    /// Classifies one site's records (see module docs for the rules).
    pub fn classify(matcher: &ProviderMatcher, records: &SiteRecords) -> Adoption {
        Adoption::from_matches(matcher.match_records(records))
    }

    /// [`Adoption::classify`] over borrowed snapshot columns (no per-site
    /// materialization).
    pub fn classify_view(
        matcher: &ProviderMatcher,
        site: crate::snapshot::SiteView<'_>,
    ) -> Adoption {
        Adoption::from_matches(matcher.match_view(site))
    }

    /// Classifies pre-computed matcher output.
    pub fn from_matches(matches: RecordMatches) -> Adoption {
        if let Some(provider) = matches.a {
            // Traffic is being rerouted: the site is protected (ON).
            let rerouting = infer_rerouting(provider, &matches);
            return Adoption {
                provider: Some(provider),
                status: DpsStatus::On,
                rerouting: Some(rerouting),
            };
        }
        // Not A-matched: delegated-but-off, or nothing. Table III: OFF is
        // "CNAME-matched with all providers or NS-matched with Cloudflare".
        if let Some(provider) = matches.cname {
            return Adoption {
                provider: Some(provider),
                status: DpsStatus::Off,
                rerouting: Some(ReroutingMethod::Cname),
            };
        }
        if matches.ns == Some(ProviderId::Cloudflare) {
            return Adoption {
                provider: Some(ProviderId::Cloudflare),
                status: DpsStatus::Off,
                rerouting: Some(ReroutingMethod::Ns),
            };
        }
        Adoption::NONE
    }

    /// True if the site is involved with any DPS (ON or OFF).
    pub fn is_adopted(&self) -> bool {
        self.status != DpsStatus::None
    }
}

/// Infers the rerouting mechanism for an ON site (Sec IV-B.2): a CNAME
/// match means CNAME-based; otherwise NS-based for Cloudflare and A-based
/// for A-capable providers (Akamai, DOSarrest).
fn infer_rerouting(provider: ProviderId, matches: &RecordMatches) -> ReroutingMethod {
    if matches.cname == Some(provider) {
        ReroutingMethod::Cname
    } else if provider == ProviderId::Cloudflare && matches.ns == Some(provider) {
        ReroutingMethod::Ns
    } else if provider.info().supports(ReroutingMethod::A) {
        ReroutingMethod::A
    } else if provider.info().supports(ReroutingMethod::Ns) {
        ReroutingMethod::Ns
    } else {
        // CNAME-only provider whose chain we failed to observe.
        ReroutingMethod::Cname
    }
}

impl fmt::Display for Adoption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.provider, self.rerouting) {
            (Some(p), Some(r)) => write!(f, "{} via {p} ({r})", self.status),
            (Some(p), None) => write!(f, "{} via {p}", self.status),
            _ => write!(f, "{}", self.status),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remnant_dns::DomainName;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    fn classify(records: SiteRecords) -> Adoption {
        Adoption::classify(&ProviderMatcher::new(), &records)
    }

    #[test]
    fn cloudflare_ns_customer_is_on_ns() {
        let adoption = classify(SiteRecords {
            a: vec!["104.16.1.1".parse().unwrap()],
            cnames: vec![],
            ns: vec![name("kate.ns.cloudflare.com")],
        });
        assert_eq!(adoption.provider, Some(ProviderId::Cloudflare));
        assert_eq!(adoption.status, DpsStatus::On);
        assert_eq!(adoption.rerouting, Some(ReroutingMethod::Ns));
        assert!(adoption.is_adopted());
    }

    #[test]
    fn incapsula_cname_customer_is_on_cname() {
        let adoption = classify(SiteRecords {
            a: vec!["45.60.1.1".parse().unwrap()],
            cnames: vec![name("x9.incapdns.net")],
            ns: vec![name("ns1.webhost1.net")],
        });
        assert_eq!(adoption.provider, Some(ProviderId::Incapsula));
        assert_eq!(adoption.status, DpsStatus::On);
        assert_eq!(adoption.rerouting, Some(ReroutingMethod::Cname));
    }

    #[test]
    fn paused_cloudflare_customer_is_off() {
        // Origin A (non-DPS), cloudflare NS: Table III OFF.
        let adoption = classify(SiteRecords {
            a: vec!["100.64.3.3".parse().unwrap()],
            cnames: vec![],
            ns: vec![name("rob.ns.cloudflare.com")],
        });
        assert_eq!(adoption.status, DpsStatus::Off);
        assert_eq!(adoption.provider, Some(ProviderId::Cloudflare));
        assert_eq!(adoption.rerouting, Some(ReroutingMethod::Ns));
    }

    #[test]
    fn paused_cname_customer_is_off() {
        let adoption = classify(SiteRecords {
            a: vec!["100.64.3.3".parse().unwrap()],
            cnames: vec![name("t7.incapdns.net")],
            ns: vec![name("ns1.webhost1.net")],
        });
        assert_eq!(adoption.status, DpsStatus::Off);
        assert_eq!(adoption.provider, Some(ProviderId::Incapsula));
    }

    #[test]
    fn non_cloudflare_ns_match_alone_is_not_off() {
        // Table III gates NS-only OFF detection to Cloudflare.
        let adoption = classify(SiteRecords {
            a: vec!["100.64.3.3".parse().unwrap()],
            cnames: vec![],
            ns: vec![name("ns1.fastly.net")],
        });
        assert_eq!(adoption.status, DpsStatus::None);
        assert!(!adoption.is_adopted());
    }

    #[test]
    fn plain_site_is_none() {
        let adoption = classify(SiteRecords {
            a: vec!["100.64.3.3".parse().unwrap()],
            cnames: vec![],
            ns: vec![name("ns1.webhost1.net")],
        });
        assert_eq!(adoption, Adoption::NONE);
    }

    #[test]
    fn a_based_akamai_customer_labeled_a() {
        // Akamai edge A, no CNAME chain, own NS: A-based rerouting.
        let adoption = classify(SiteRecords {
            a: vec!["23.195.0.1".parse().unwrap()],
            cnames: vec![],
            ns: vec![name("ns1.webhost1.net")],
        });
        assert_eq!(adoption.provider, Some(ProviderId::Akamai));
        assert_eq!(adoption.rerouting, Some(ReroutingMethod::A));
    }

    #[test]
    fn empty_records_are_none() {
        assert_eq!(classify(SiteRecords::default()), Adoption::NONE);
    }

    #[test]
    fn display_formats() {
        let adoption = classify(SiteRecords {
            a: vec!["104.16.1.1".parse().unwrap()],
            cnames: vec![],
            ns: vec![name("kate.ns.cloudflare.com")],
        });
        assert_eq!(adoption.to_string(), "ON via Cloudflare (NS)");
        assert_eq!(Adoption::NONE.to_string(), "NONE");
    }
}
