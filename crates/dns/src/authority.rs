//! Authoritative server behavior.

use remnant_sim::SimTime;

use crate::message::{Query, Rcode, Response};
use crate::record::RecordType;
use crate::zone::{Zone, ZoneAnswer};

/// Anything that can answer DNS queries authoritatively.
///
/// Returning `None` models a server that silently ignores the query — the
/// paper observed exactly this from Cloudflare's nameservers for unknown
/// names: "The nameserver will respond to a query with the A records of the
/// requested website if it holds the records. Otherwise, it will ignore the
/// query." (Sec V-A.2). DPS providers implement this trait with their own
/// answer *policies* (including the residual-resolution misbehavior).
pub trait Authoritative {
    /// Answers `query` at virtual time `now`, or ignores it (`None`).
    fn answer(&mut self, now: SimTime, query: &Query) -> Option<Response>;
}

impl<T: Authoritative + ?Sized> Authoritative for Box<T> {
    fn answer(&mut self, now: SimTime, query: &Query) -> Option<Response> {
        (**self).answer(now, query)
    }
}

/// A stock authoritative server over a set of zones.
///
/// Zone selection picks the most specific origin that covers the queried
/// name. Unknown names get `REFUSED` (the server answers, honestly, that it
/// is not authoritative).
///
/// # Example
///
/// ```
/// use remnant_dns::{Authoritative, DomainName, Query, RecordData, RecordType,
///     ResourceRecord, Ttl, Zone, ZoneServer};
/// use remnant_sim::SimTime;
///
/// let apex: DomainName = "example.com".parse()?;
/// let mut zone = Zone::new(apex.clone());
/// zone.add(ResourceRecord::new(
///     apex.prepend("www")?, Ttl::secs(300), RecordData::A("203.0.113.9".parse()?),
/// ));
/// let mut server = ZoneServer::new(vec![zone]);
/// let resp = server
///     .answer(SimTime::EPOCH, &Query::new(apex.prepend("www")?, RecordType::A))
///     .expect("zone servers always respond");
/// assert_eq!(resp.answer_addresses().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ZoneServer {
    /// Zones keyed by origin, so lookup is O(labels) not O(zones) — shared
    /// hosting servers carry many thousands of zones.
    zones: std::collections::HashMap<crate::name::DomainName, Zone>,
    queries_served: u64,
}

impl ZoneServer {
    /// Creates a server hosting `zones`.
    pub fn new(zones: Vec<Zone>) -> Self {
        ZoneServer {
            zones: zones.into_iter().map(|z| (z.origin().clone(), z)).collect(),
            queries_served: 0,
        }
    }

    /// Adds a zone, replacing any existing zone with the same origin.
    pub fn add_zone(&mut self, zone: Zone) {
        self.zones.insert(zone.origin().clone(), zone);
    }

    /// Removes the zone with origin `origin`, returning it.
    pub fn remove_zone(&mut self, origin: &crate::name::DomainName) -> Option<Zone> {
        self.zones.remove(origin)
    }

    /// Immutable access to a hosted zone.
    pub fn zone(&self, origin: &crate::name::DomainName) -> Option<&Zone> {
        self.zones.get(origin)
    }

    /// Mutable access to a hosted zone.
    pub fn zone_mut(&mut self, origin: &crate::name::DomainName) -> Option<&mut Zone> {
        self.zones.get_mut(origin)
    }

    /// Number of zones hosted.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Number of queries this server has answered or refused.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// The most specific zone covering `name`.
    fn best_zone(&self, name: &crate::name::DomainName) -> Option<&Zone> {
        name.suffixes().find_map(|suffix| self.zones.get(&suffix))
    }

    /// Builds a response for `query` from zone `answer` content.
    fn respond(zone: &Zone, query: &Query, answer: ZoneAnswer) -> Response {
        match answer {
            ZoneAnswer::Records(rrs) => Response::answer(query.clone(), rrs),
            ZoneAnswer::Cname(rr) => {
                // Include the target's records when this server also holds
                // them (common for in-zone aliases).
                let mut answers = vec![rr.clone()];
                if let Some(target) = rr.data.as_cname() {
                    if query.rtype != RecordType::Cname {
                        answers.extend(zone.get(target, query.rtype).iter().cloned());
                    }
                }
                Response::answer(query.clone(), answers)
            }
            ZoneAnswer::Delegation(ns) => {
                // Attach any in-zone glue we hold for the NS hosts.
                let glue = ns
                    .iter()
                    .filter_map(|rr| rr.data.as_ns())
                    .flat_map(|host| zone.get(host, RecordType::A).iter().cloned())
                    .collect::<Vec<_>>();
                Response::referral(query.clone(), ns, glue)
            }
            ZoneAnswer::NoData => Response::empty(query.clone(), Rcode::NoError),
            ZoneAnswer::NxDomain => Response::empty(query.clone(), Rcode::NxDomain),
        }
    }
}

impl Authoritative for ZoneServer {
    fn answer(&mut self, _now: SimTime, query: &Query) -> Option<Response> {
        self.queries_served += 1;
        let response = match self.best_zone(&query.name) {
            Some(zone) => Self::respond(zone, query, zone.lookup(&query.name, query.rtype)),
            None => Response::empty(query.clone(), Rcode::Refused),
        };
        Some(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::DomainName;
    use crate::record::{RecordData, ResourceRecord, Ttl};

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    fn server() -> ZoneServer {
        let mut zone = Zone::new(name("example.com"));
        zone.add(ResourceRecord::new(
            name("www.example.com"),
            Ttl::secs(300),
            RecordData::A([203, 0, 113, 9].into()),
        ));
        ZoneServer::new(vec![zone])
    }

    #[test]
    fn answers_known_names() {
        let mut s = server();
        let resp = s
            .answer(
                SimTime::EPOCH,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .unwrap();
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.answer_addresses().len(), 1);
        assert_eq!(s.queries_served(), 1);
    }

    #[test]
    fn refuses_foreign_names() {
        let mut s = server();
        let resp = s
            .answer(
                SimTime::EPOCH,
                &Query::new(name("www.other.org"), RecordType::A),
            )
            .unwrap();
        assert_eq!(resp.rcode, Rcode::Refused);
    }

    #[test]
    fn nxdomain_inside_zone() {
        let mut s = server();
        let resp = s
            .answer(
                SimTime::EPOCH,
                &Query::new(name("gone.example.com"), RecordType::A),
            )
            .unwrap();
        assert_eq!(resp.rcode, Rcode::NxDomain);
    }

    #[test]
    fn cname_answer_includes_in_zone_target() {
        let mut zone = Zone::new(name("example.com"));
        zone.add(ResourceRecord::new(
            name("www.example.com"),
            Ttl::secs(300),
            RecordData::Cname(name("edge.example.com")),
        ));
        zone.add(ResourceRecord::new(
            name("edge.example.com"),
            Ttl::secs(300),
            RecordData::A([1, 2, 3, 4].into()),
        ));
        let mut s = ZoneServer::new(vec![zone]);
        let resp = s
            .answer(
                SimTime::EPOCH,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .unwrap();
        assert_eq!(resp.answers.len(), 2);
        assert_eq!(
            resp.answer_addresses(),
            vec![std::net::Ipv4Addr::new(1, 2, 3, 4)]
        );
    }

    #[test]
    fn most_specific_zone_wins() {
        let mut parent = Zone::new(name("example.com"));
        parent.add(ResourceRecord::new(
            name("sub.example.com"),
            Ttl::secs(60),
            RecordData::A([1, 1, 1, 1].into()),
        ));
        let mut child = Zone::new(name("sub.example.com"));
        child.add(ResourceRecord::new(
            name("sub.example.com"),
            Ttl::secs(60),
            RecordData::A([2, 2, 2, 2].into()),
        ));
        let mut s = ZoneServer::new(vec![parent, child]);
        let resp = s
            .answer(
                SimTime::EPOCH,
                &Query::new(name("sub.example.com"), RecordType::A),
            )
            .unwrap();
        assert_eq!(
            resp.answer_addresses(),
            vec![std::net::Ipv4Addr::new(2, 2, 2, 2)]
        );
    }

    #[test]
    fn delegation_carries_glue() {
        let mut zone = Zone::new(name("com"));
        zone.add(ResourceRecord::new(
            name("example.com"),
            Ttl::days(2),
            RecordData::Ns(name("ns1.example.com")),
        ));
        zone.add(ResourceRecord::new(
            name("ns1.example.com"),
            Ttl::days(2),
            RecordData::A([9, 9, 9, 9].into()),
        ));
        let mut s = ZoneServer::new(vec![zone]);
        let resp = s
            .answer(
                SimTime::EPOCH,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .unwrap();
        assert!(resp.is_referral());
        assert_eq!(resp.additional.len(), 1);
    }

    #[test]
    fn zone_management() {
        let mut s = server();
        assert!(s.zone(&name("example.com")).is_some());
        assert!(s.zone_mut(&name("example.com")).is_some());
        let z = s.remove_zone(&name("example.com")).unwrap();
        assert_eq!(z.origin(), &name("example.com"));
        assert!(s.zone(&name("example.com")).is_none());
    }
}
