//! CDN edge servers: caching reverse proxies.
//!
//! "each edge server acts as a reverse proxy, fetching and caching the web
//! contents" (Sec II-A.3). An edge holds a host→origin routing table
//! (maintained by the provider's control plane) and fetches misses from the
//! origin **using its own address as the source** — which is why
//! DPS-firewalled origins still serve the edge but drop the scanner.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use remnant_sim::{SimDuration, SimTime};

use crate::transport::{HttpRequest, HttpResponse, HttpStatus, HttpTransport};

/// How long an edge caches a fetched page.
const EDGE_CACHE_TTL: SimDuration = SimDuration::minutes(5);

/// A caching reverse proxy for one edge address.
///
/// The provider control plane calls [`ReverseProxy::route`] /
/// [`ReverseProxy::unroute`] as customers join and leave.
#[derive(Clone, Debug)]
pub struct ReverseProxy {
    addr: Ipv4Addr,
    /// host -> origin address.
    routes: HashMap<String, Ipv4Addr>,
    /// (host, path) -> (response, expiry).
    cache: HashMap<(String, String), (HttpResponse, SimTime)>,
    hits: u64,
    misses: u64,
}

impl ReverseProxy {
    /// Creates an edge proxy at `addr`.
    pub fn new(addr: Ipv4Addr) -> Self {
        ReverseProxy {
            addr,
            routes: HashMap::new(),
            cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The edge's own address.
    pub const fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// Routes `host` to `origin`.
    pub fn route(&mut self, host: impl Into<String>, origin: Ipv4Addr) {
        self.routes.insert(host.into(), origin);
    }

    /// Removes the route for `host` and evicts its cached entries.
    pub fn unroute(&mut self, host: &str) {
        self.routes.remove(host);
        self.cache.retain(|(h, _), _| h != host);
    }

    /// The configured origin for `host`.
    pub fn origin_for(&self, host: &str) -> Option<Ipv4Addr> {
        self.routes.get(host).copied()
    }

    /// `(cache hits, cache misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Handles a client GET: serve from cache, or fetch from the origin via
    /// `upstream` with the edge's own source address.
    ///
    /// * unknown host → 404 (the provider does not serve it);
    /// * origin unreachable → 502.
    pub fn handle<T: HttpTransport>(
        &mut self,
        now: SimTime,
        upstream: &mut T,
        request: &HttpRequest,
    ) -> HttpResponse {
        let Some(origin) = self.origin_for(&request.host) else {
            return HttpResponse::status(HttpStatus::NotFound, self.addr);
        };
        let key = (request.host.clone(), request.path.clone());
        if let Some((cached, expires)) = self.cache.get(&key) {
            if *expires > now {
                self.hits += 1;
                return cached.clone();
            }
            self.cache.remove(&key);
        }
        self.misses += 1;
        let upstream_request = HttpRequest {
            src: self.addr,
            host: request.host.clone(),
            path: request.path.clone(),
        };
        match upstream.get(now, origin, &upstream_request) {
            Some(origin_response) => {
                // Re-badge: the client sees the edge as the server.
                let response = HttpResponse {
                    status: origin_response.status,
                    document: origin_response.document,
                    served_by: self.addr,
                };
                if response.status == HttpStatus::Ok {
                    self.cache
                        .insert(key, (response.clone(), now + EDGE_CACHE_TTL));
                }
                response
            }
            None => HttpResponse::status(HttpStatus::BadGateway, self.addr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::{FirewallPolicy, OriginServer};
    use crate::page::PageTemplate;

    const EDGE: Ipv4Addr = Ipv4Addr::new(104, 16, 0, 1);
    const ORIGIN: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);

    /// An upstream transport backed by a single origin server.
    struct OneOrigin(OriginServer);

    impl HttpTransport for OneOrigin {
        fn get(
            &mut self,
            _now: SimTime,
            dst: Ipv4Addr,
            request: &HttpRequest,
        ) -> Option<HttpResponse> {
            (dst == self.0.addr())
                .then(|| self.0.handle(request))
                .flatten()
        }
    }

    fn setup() -> (ReverseProxy, OneOrigin) {
        let mut origin = OriginServer::new(ORIGIN);
        origin.host_site("www.example.com", PageTemplate::generate("example.com", 1));
        let mut edge = ReverseProxy::new(EDGE);
        edge.route("www.example.com", ORIGIN);
        (edge, OneOrigin(origin))
    }

    #[test]
    fn proxies_and_rebadges() {
        let (mut edge, mut up) = setup();
        let resp = edge.handle(
            SimTime::EPOCH,
            &mut up,
            &HttpRequest::landing(CLIENT, "www.example.com"),
        );
        assert!(resp.is_ok());
        assert_eq!(resp.served_by, EDGE, "client sees the edge, not the origin");
    }

    #[test]
    fn caches_within_ttl() {
        let (mut edge, mut up) = setup();
        let req = HttpRequest::landing(CLIENT, "www.example.com");
        let _ = edge.handle(SimTime::EPOCH, &mut up, &req);
        let _ = edge.handle(SimTime::from_secs(10), &mut up, &req);
        assert_eq!(edge.stats(), (1, 1));
        assert_eq!(up.0.requests_served(), 1);
        // Past TTL the edge refetches.
        let _ = edge.handle(SimTime::from_secs(301), &mut up, &req);
        assert_eq!(up.0.requests_served(), 2);
    }

    #[test]
    fn unknown_host_is_404_without_upstream_traffic() {
        let (mut edge, mut up) = setup();
        let resp = edge.handle(
            SimTime::EPOCH,
            &mut up,
            &HttpRequest::landing(CLIENT, "www.unknown.org"),
        );
        assert_eq!(resp.status, HttpStatus::NotFound);
        assert_eq!(up.0.requests_served(), 0);
    }

    #[test]
    fn edge_passes_dps_only_firewall() {
        let (mut edge, mut up) = setup();
        up.0.set_firewall(FirewallPolicy::DpsOnly {
            allowed: [EDGE].into_iter().collect(),
        });
        let resp = edge.handle(
            SimTime::EPOCH,
            &mut up,
            &HttpRequest::landing(CLIENT, "www.example.com"),
        );
        assert!(resp.is_ok(), "edge source address passes the firewall");
    }

    #[test]
    fn unreachable_origin_is_502() {
        let (mut edge, mut up) = setup();
        up.0.set_firewall(FirewallPolicy::DpsOnly {
            allowed: std::collections::HashSet::new(),
        });
        let resp = edge.handle(
            SimTime::EPOCH,
            &mut up,
            &HttpRequest::landing(CLIENT, "www.example.com"),
        );
        assert_eq!(resp.status, HttpStatus::BadGateway);
    }

    #[test]
    fn unroute_evicts_cache() {
        let (mut edge, mut up) = setup();
        let req = HttpRequest::landing(CLIENT, "www.example.com");
        let _ = edge.handle(SimTime::EPOCH, &mut up, &req);
        edge.unroute("www.example.com");
        let resp = edge.handle(SimTime::from_secs(1), &mut up, &req);
        assert_eq!(
            resp.status,
            HttpStatus::NotFound,
            "no stale serving after unroute"
        );
    }

    #[test]
    fn non_ok_responses_are_not_cached() {
        let (mut edge, mut up) = setup();
        up.0.unhost_site("www.example.com");
        let req = HttpRequest::landing(CLIENT, "www.example.com");
        let _ = edge.handle(SimTime::EPOCH, &mut up, &req);
        let _ = edge.handle(SimTime::from_secs(1), &mut up, &req);
        assert_eq!(edge.stats().0, 0, "404s are never cache hits");
        assert_eq!(up.0.requests_served(), 2);
    }
}
