//! The spill-mode equivalence contract, end to end: a multi-week study
//! run with `--spill-dir` (records streaming to binary snapshot files,
//! bounded working set) must produce output byte-identical to the fully
//! in-memory run — every daily `DnsSnapshot` in BOTH codecs, the rendered
//! report, and the observability JSON — at any worker count, and in both
//! full and delta collection modes.
//!
//! This is the differential test backing the memory-bounded collect
//! path's guarantee: block layout equals the engine shard plan in every
//! mode, so where a block physically lives (resident arena or spill
//! frame) is invisible to everything downstream.

use remnant::core::study::{CollectionMode, PaperStudy, StudyConfig, StudyReport};
use remnant::core::SpillConfig;
use remnant::world::{World, WorldConfig};
use remnant_bench::{
    render_fig2, render_fig3, render_fig4, render_fig5, render_fig6, render_fig8, render_fig9,
    render_table5, render_table6, ReproConfig,
};

const POPULATION: usize = 2_500;
const WEEKS: u32 = 3;
const SEED: u64 = 17;

/// One full study: the concatenated text and binary encodings of all
/// daily snapshots, plus the report. `spill` gets a distinct temp dir per
/// invocation so runs never share files.
fn run(
    mode: CollectionMode,
    workers: usize,
    spill: Option<&str>,
) -> (String, Vec<u8>, StudyReport) {
    let mut config = StudyConfig::builder()
        .weeks(WEEKS)
        .seed(SEED)
        .workers(workers)
        .collection_mode(mode);
    if let Some(tag) = spill {
        let dir = std::env::temp_dir().join(format!("remnant-spill-eq-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp spill dir");
        config = config.spill(SpillConfig {
            resident_shards: 2, // tiny working set: force real spilling
            ..SpillConfig::new(dir)
        });
    }
    let config = config.build().expect("valid study config");
    let mut world = World::generate(WorldConfig::new(POPULATION, SEED));
    let mut text = String::new();
    let mut binary = Vec::new();
    let report = PaperStudy::new(config).run_with(&mut world, |snapshot| {
        text.push_str(&snapshot.encode());
        binary.extend_from_slice(&snapshot.encode_binary());
    });
    (text, binary, report)
}

/// Everything `repro` prints from the study report, in `repro all` order.
fn rendered_output(report: &StudyReport) -> String {
    let config = ReproConfig {
        population: POPULATION,
        weeks: WEEKS,
        seed: SEED,
        ..ReproConfig::default()
    };
    [
        render_fig2(&config, report),
        render_fig3(&config, report),
        render_fig4(report),
        render_fig5(report),
        render_fig6(report),
        render_fig8(report),
        render_fig9(&config, report),
        render_table5(&config, report),
        render_table6(&config, report),
    ]
    .join("\n")
}

fn assert_equivalent(mode: CollectionMode, workers: usize, tag: &str) {
    let (mem_text, mem_binary, mem) = run(mode, workers, None);
    let (spill_text, spill_binary, spilled) = run(mode, workers, Some(tag));

    // Every daily snapshot, byte for byte, in both codecs.
    assert_eq!(
        mem_text, spill_text,
        "daily text snapshots must be byte-identical in-memory vs spill"
    );
    assert_eq!(
        mem_binary, spill_binary,
        "daily binary snapshots must be byte-identical in-memory vs spill"
    );
    // The rendered evaluation, byte for byte.
    assert_eq!(
        rendered_output(&mem),
        rendered_output(&spilled),
        "rendered study output must be byte-identical"
    );
    // The observability snapshot, byte for byte: spilling is a memory-
    // placement decision and must be invisible to the study's telemetry.
    assert_eq!(
        mem.obs().to_json(),
        spilled.obs().to_json(),
        "ObsReport JSON must be byte-identical across memory modes"
    );
    // The deterministic engine counters agree too (wall times may not).
    assert_eq!(mem.engine().sweeps, spilled.engine().sweeps);
    assert_eq!(mem.engine().shards, spilled.engine().shards);
    assert_eq!(mem.engine().queries, spilled.engine().queries);
    assert_eq!(mem.engine().attempts, spilled.engine().attempts);
    assert_eq!(mem.engine().cache_hits, spilled.engine().cache_hits);
    assert_eq!(mem.engine().cache_misses, spilled.engine().cache_misses);
}

#[test]
fn full_collection_workers_1() {
    assert_equivalent(CollectionMode::Full, 1, "full-w1");
}

#[test]
fn full_collection_workers_8() {
    assert_equivalent(CollectionMode::Full, 8, "full-w8");
}

#[test]
fn delta_collection_workers_1() {
    assert_equivalent(CollectionMode::Delta, 1, "delta-w1");
}

#[test]
fn delta_collection_workers_8() {
    assert_equivalent(CollectionMode::Delta, 8, "delta-w8");
}
