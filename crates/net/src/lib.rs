//! Network substrate: IPv4 address math, AS-number bookkeeping, a
//! RouteView-style IP-range database, geographic regions/PoPs, anycast
//! catchment maps, and deterministic address allocators.
//!
//! The paper's toolkit needs exactly these facilities:
//!
//! * **A-matching** (Sec IV-B.2) maps an IP address from a collected A record
//!   to a DPS provider by longest-prefix lookup against the provider's
//!   announced ranges — that is [`IpRangeDb`], seeded the way the authors
//!   seeded theirs from RouteView plus Table II's AS numbers.
//! * **Anycast** (Sec V-A.1): Cloudflare serves one nameserver IP from 100+
//!   PoPs; which physical PoP answers depends on where the query enters the
//!   network — that is [`AnycastMap`] keyed by [`Region`].
//! * Edge/nameserver/origin IPs must come from disjoint, recognizable pools —
//!   that is [`IpAllocator`] over [`Ipv4Cidr`] blocks.
//!
//! # Example
//!
//! ```
//! use remnant_net::{Asn, IpRangeDb, Ipv4Cidr};
//!
//! let mut db = IpRangeDb::new();
//! db.insert("104.16.0.0/12".parse()?, Asn::new(13335));
//! assert_eq!(db.lookup("104.20.1.9".parse()?), Some(&Asn::new(13335)));
//! assert_eq!(db.lookup("8.8.8.8".parse()?), None);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod alloc;
pub mod anycast;
pub mod asn;
pub mod cidr;
pub mod error;
pub mod geo;
pub mod ranges;

pub use alloc::IpAllocator;
pub use anycast::AnycastMap;
pub use asn::Asn;
pub use cidr::Ipv4Cidr;
pub use error::NetError;
pub use geo::{Pop, PopId, Region};
pub use ranges::IpRangeDb;
