//! Transport abstraction: how DNS queries reach servers.
//!
//! The resolver and the measurement toolkit never hold references to
//! servers; they send queries through a [`DnsTransport`], which the
//! simulated Internet implements (routing to the registry, provider
//! nameserver fleets through their anycast maps, and self-hosted
//! authoritative servers). [`StaticTransport`] is a simple implementation
//! for unit tests and examples, with failure injection.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use remnant_net::Region;
use remnant_obs::{transport_counters, Instrumented, MetricKey};
use remnant_sim::SimTime;

use crate::authority::Authoritative;
use crate::message::{Query, Response};
use crate::registry::Registry;

/// The well-known anycast address of the delegation registry (root/TLD
/// layer) in every simulation, mirroring `a.root-servers.net`.
pub const ROOT_SERVER: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);

/// Query-volume counters, uniformly available from any transport.
///
/// `sent` counts queries delivered into the transport; `answered` counts
/// the subset that produced a response. The remainder were dropped or
/// silently ignored (the behavior residual scans probe for).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries delivered into the transport.
    pub sent: u64,
    /// Queries that produced a `Some(Response)`.
    pub answered: u64,
}

impl QueryStats {
    /// Queries that were dropped or silently ignored.
    pub fn ignored(&self) -> u64 {
        self.sent.saturating_sub(self.answered)
    }
}

/// A [`QueryStats`] value is itself readable through the unified
/// [`Instrumented`] surface, exporting the canonical
/// `transport.sent`/`transport.answered`/`transport.ignored` triple.
impl Instrumented for QueryStats {
    fn component(&self) -> &'static str {
        "dns.transport"
    }

    fn counters(&self) -> Vec<(MetricKey, u64)> {
        transport_counters(self.sent, self.answered)
    }
}

/// Delivers DNS queries to servers by IP address.
pub trait DnsTransport {
    /// The registry (root) address queries should start from.
    fn root(&self) -> Ipv4Addr {
        ROOT_SERVER
    }

    /// Sends `query` to `server`, entering the network at `region`, at
    /// virtual time `now`. `None` models a dropped or ignored query.
    fn query(
        &mut self,
        now: SimTime,
        server: Ipv4Addr,
        region: Region,
        query: &Query,
    ) -> Option<Response>;

    /// Cumulative query counters. The default implementation reports
    /// nothing; transports that track volume override it.
    fn query_stats(&self) -> QueryStats {
        QueryStats::default()
    }
}

/// A transport whose query path is safe to share across scan workers.
///
/// Answering must be a logically read-only operation: the transport may
/// update internal counters through interior mutability, but the answer
/// to a query must not depend on what other queries are in flight. Any
/// `&T` where `T: ShardableTransport` is itself a [`DnsTransport`], so a
/// per-worker `RecursiveResolver` can drive a shared transport without
/// exclusive access.
pub trait ShardableTransport: Sync {
    /// The registry (root) address queries should start from.
    fn root(&self) -> Ipv4Addr {
        ROOT_SERVER
    }

    /// Sends `query` through a shared reference; see
    /// [`DnsTransport::query`] for the semantics of `None`.
    fn query_shared(
        &self,
        now: SimTime,
        server: Ipv4Addr,
        region: Region,
        query: &Query,
    ) -> Option<Response>;

    /// Cumulative query counters (see [`DnsTransport::query_stats`]).
    fn query_stats(&self) -> QueryStats {
        QueryStats::default()
    }
}

/// A shared reference to a shardable transport is itself shardable, so
/// adapters generic over `T: ShardableTransport` (e.g. the wire codec's
/// transport wrapper) can borrow a transport instead of owning it.
impl<T: ShardableTransport + ?Sized> ShardableTransport for &T {
    fn root(&self) -> Ipv4Addr {
        ShardableTransport::root(*self)
    }

    fn query_shared(
        &self,
        now: SimTime,
        server: Ipv4Addr,
        region: Region,
        query: &Query,
    ) -> Option<Response> {
        (**self).query_shared(now, server, region, query)
    }

    fn query_stats(&self) -> QueryStats {
        ShardableTransport::query_stats(*self)
    }
}

impl<T: ShardableTransport + ?Sized> DnsTransport for &T {
    fn root(&self) -> Ipv4Addr {
        ShardableTransport::root(*self)
    }

    fn query(
        &mut self,
        now: SimTime,
        server: Ipv4Addr,
        region: Region,
        query: &Query,
    ) -> Option<Response> {
        self.query_shared(now, server, region, query)
    }

    fn query_stats(&self) -> QueryStats {
        ShardableTransport::query_stats(*self)
    }
}

/// A [`DnsTransport`] view over a shared transport that counts the
/// queries passing through it.
///
/// Scan workers wrap the shared world in one of these per shard, giving
/// deterministic per-shard query counts without contending on a global
/// counter.
#[derive(Debug)]
pub struct CountingTransport<'a, T: ShardableTransport + ?Sized> {
    inner: &'a T,
    sent: u64,
    answered: u64,
}

impl<'a, T: ShardableTransport + ?Sized> CountingTransport<'a, T> {
    /// Wraps `inner`, starting all counters at zero.
    pub fn new(inner: &'a T) -> Self {
        CountingTransport {
            inner,
            sent: 0,
            answered: 0,
        }
    }
}

impl<T: ShardableTransport + ?Sized> Instrumented for CountingTransport<'_, T> {
    fn component(&self) -> &'static str {
        "dns.counting_transport"
    }

    fn counters(&self) -> Vec<(MetricKey, u64)> {
        transport_counters(self.sent, self.answered)
    }
}

impl<T: ShardableTransport + ?Sized> DnsTransport for CountingTransport<'_, T> {
    fn root(&self) -> Ipv4Addr {
        self.inner.root()
    }

    fn query(
        &mut self,
        now: SimTime,
        server: Ipv4Addr,
        region: Region,
        query: &Query,
    ) -> Option<Response> {
        self.sent += 1;
        let response = self.inner.query_shared(now, server, region, query);
        if response.is_some() {
            self.answered += 1;
        }
        response
    }

    fn query_stats(&self) -> QueryStats {
        QueryStats {
            sent: self.sent,
            answered: self.answered,
        }
    }
}

/// A transport over a fixed set of servers, for tests and examples.
///
/// The registry answers at [`ROOT_SERVER`]; additional authoritative servers
/// are registered per IP. Addresses can be marked unreachable to inject
/// failures.
pub struct StaticTransport {
    registry: Registry,
    servers: HashMap<Ipv4Addr, Box<dyn Authoritative>>,
    unreachable: HashSet<Ipv4Addr>,
    queries_sent: u64,
    queries_answered: u64,
}

impl StaticTransport {
    /// Creates a transport with `registry` at [`ROOT_SERVER`].
    pub fn new(registry: Registry) -> Self {
        StaticTransport {
            registry,
            servers: HashMap::new(),
            unreachable: HashSet::new(),
            queries_sent: 0,
            queries_answered: 0,
        }
    }

    /// Registers an authoritative server at `addr`.
    pub fn add_server(&mut self, addr: Ipv4Addr, server: impl Authoritative + 'static) {
        self.servers.insert(addr, Box::new(server));
    }

    /// Marks `addr` unreachable: queries to it are dropped.
    pub fn set_unreachable(&mut self, addr: Ipv4Addr) {
        self.unreachable.insert(addr);
    }

    /// Makes `addr` reachable again.
    pub fn set_reachable(&mut self, addr: Ipv4Addr) {
        self.unreachable.remove(&addr);
    }

    /// Mutable access to the registry, for re-delegations mid-test.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Shared access to the registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl Instrumented for StaticTransport {
    fn component(&self) -> &'static str {
        "dns.static_transport"
    }

    fn counters(&self) -> Vec<(MetricKey, u64)> {
        transport_counters(self.queries_sent, self.queries_answered)
    }
}

impl std::fmt::Debug for StaticTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticTransport")
            .field("servers", &self.servers.len())
            .field("unreachable", &self.unreachable.len())
            .field("queries_sent", &self.queries_sent)
            .finish()
    }
}

impl DnsTransport for StaticTransport {
    fn query(
        &mut self,
        now: SimTime,
        server: Ipv4Addr,
        _region: Region,
        query: &Query,
    ) -> Option<Response> {
        if self.unreachable.contains(&server) {
            return None;
        }
        self.queries_sent += 1;
        let response = if server == ROOT_SERVER {
            self.registry.answer(now, query)
        } else {
            self.servers.get_mut(&server)?.answer(now, query)
        };
        if response.is_some() {
            self.queries_answered += 1;
        }
        response
    }

    fn query_stats(&self) -> QueryStats {
        QueryStats {
            sent: self.queries_sent,
            answered: self.queries_answered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::ZoneServer;
    use crate::message::Rcode;
    use crate::name::DomainName;
    use crate::record::{RecordData, RecordType, ResourceRecord, Ttl};
    use crate::zone::Zone;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    fn transport() -> StaticTransport {
        let mut registry = Registry::new();
        registry.delegate(
            name("example.com"),
            vec![(name("ns1.host.net"), Ipv4Addr::new(10, 0, 0, 53))],
        );
        let mut zone = Zone::new(name("example.com"));
        zone.add(ResourceRecord::new(
            name("www.example.com"),
            Ttl::secs(300),
            RecordData::A(Ipv4Addr::new(203, 0, 113, 1)),
        ));
        let mut t = StaticTransport::new(registry);
        t.add_server(Ipv4Addr::new(10, 0, 0, 53), ZoneServer::new(vec![zone]));
        t
    }

    #[test]
    fn routes_root_to_registry() {
        let mut t = transport();
        let resp = t
            .query(
                SimTime::EPOCH,
                ROOT_SERVER,
                Region::Oregon,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .unwrap();
        assert!(resp.is_referral());
    }

    #[test]
    fn routes_to_registered_server() {
        let mut t = transport();
        let resp = t
            .query(
                SimTime::EPOCH,
                Ipv4Addr::new(10, 0, 0, 53),
                Region::Oregon,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .unwrap();
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.answer_addresses().len(), 1);
    }

    #[test]
    fn unknown_address_drops() {
        let mut t = transport();
        assert!(t
            .query(
                SimTime::EPOCH,
                Ipv4Addr::new(9, 9, 9, 9),
                Region::Oregon,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .is_none());
    }

    #[test]
    fn unreachable_injection() {
        let mut t = transport();
        let addr = Ipv4Addr::new(10, 0, 0, 53);
        t.set_unreachable(addr);
        assert!(t
            .query(
                SimTime::EPOCH,
                addr,
                Region::Oregon,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .is_none());
        t.set_reachable(addr);
        assert!(t
            .query(
                SimTime::EPOCH,
                addr,
                Region::Oregon,
                &Query::new(name("www.example.com"), RecordType::A),
            )
            .is_some());
    }

    #[test]
    fn counts_delivered_queries() {
        let mut t = transport();
        let q = Query::new(name("www.example.com"), RecordType::A);
        t.set_unreachable(Ipv4Addr::new(10, 0, 0, 53));
        let _ = t.query(
            SimTime::EPOCH,
            Ipv4Addr::new(10, 0, 0, 53),
            Region::Oregon,
            &q,
        );
        let _ = t.query(SimTime::EPOCH, ROOT_SERVER, Region::Oregon, &q);
        assert_eq!(t.query_stats().sent, 1);
        assert_eq!(
            t.query_stats(),
            QueryStats {
                sent: 1,
                answered: 1
            }
        );
        assert_eq!(t.query_stats().ignored(), 0);
    }

    /// A trivially shardable transport: answers everything at the root.
    struct EchoTransport;

    impl ShardableTransport for EchoTransport {
        fn query_shared(
            &self,
            _now: SimTime,
            server: Ipv4Addr,
            _region: Region,
            query: &Query,
        ) -> Option<Response> {
            (server == ROOT_SERVER).then(|| Response::empty(query.clone(), Rcode::NoError))
        }
    }

    #[test]
    fn shared_reference_is_a_transport() {
        let shared = EchoTransport;
        let mut view = &shared;
        let q = Query::new(name("www.example.com"), RecordType::A);
        assert!(view
            .query(SimTime::EPOCH, ROOT_SERVER, Region::Oregon, &q)
            .is_some());
        assert_eq!(DnsTransport::root(&view), ROOT_SERVER);
    }

    #[test]
    fn counting_transport_tracks_per_wrapper_volume() {
        let shared = EchoTransport;
        let q = Query::new(name("www.example.com"), RecordType::A);
        let mut a = CountingTransport::new(&shared);
        let mut b = CountingTransport::new(&shared);
        let _ = a.query(SimTime::EPOCH, ROOT_SERVER, Region::Oregon, &q);
        let _ = a.query(
            SimTime::EPOCH,
            Ipv4Addr::new(9, 9, 9, 9),
            Region::Oregon,
            &q,
        );
        let _ = b.query(SimTime::EPOCH, ROOT_SERVER, Region::Oregon, &q);
        assert_eq!(
            a.query_stats(),
            QueryStats {
                sent: 2,
                answered: 1
            }
        );
        assert_eq!(a.query_stats().ignored(), 1);
        assert_eq!(b.query_stats().sent, 1);
    }

    #[test]
    fn transports_export_unified_counters() {
        let shared = EchoTransport;
        let q = Query::new(name("www.example.com"), RecordType::A);
        let mut counting = CountingTransport::new(&shared);
        let _ = counting.query(SimTime::EPOCH, ROOT_SERVER, Region::Oregon, &q);
        let _ = counting.query(
            SimTime::EPOCH,
            Ipv4Addr::new(9, 9, 9, 9),
            Region::Oregon,
            &q,
        );
        let mut registry = remnant_obs::MetricsRegistry::new();
        counting.export_into(&mut registry);
        let label = [("component", "dns.counting_transport")];
        assert_eq!(registry.counter_labeled("transport.sent", &label), 2);
        assert_eq!(registry.counter_labeled("transport.answered", &label), 1);
        assert_eq!(registry.counter_labeled("transport.ignored", &label), 1);
        // The plain stats value exports the same triple.
        assert_eq!(
            counting.counters(),
            counting.query_stats().counters(),
            "QueryStats and its transport agree"
        );
    }
}
