//! RFC 1035 wire codec and a servable resolver front.
//!
//! The rest of the workspace passes typed [`Query`]/[`Response`] values
//! in-process; this crate gives them a network shape. It has three
//! layers, each usable on its own:
//!
//! | Layer | Entry points | What it does |
//! |---|---|---|
//! | codec | [`Message`], [`decode_name`], [`WireError`] | canonical RFC 1035 encode with name compression; bounded, typed, non-panicking parse |
//! | adapter | [`WireTransport`] | drives any existing transport through encoded frames, so wire-path results can be diffed byte-for-byte against the in-process path |
//! | server | [`ServerCore`], [`WireServer`], [`ResolverService`] | real UDP/TCP sockets (TC-bit truncation at 512 bytes, 2-byte length-prefixed TCP framing) over a cache of pre-encoded answers |
//!
//! Determinism contract: encoding is canonical (same message, same
//! bytes — compression included), transaction IDs on the adapter path
//! are derived from the query, and the server's answer cache stores
//! encoded frames keyed by normalized name, so a sweep through the wire
//! path at any worker count produces the same snapshot bytes as the
//! in-process path.
//!
//! Robustness contract: parsing never panics and never allocates
//! proportionally to attacker-controlled lengths. Compression pointers
//! must be strictly backward and within a 16-hop budget; expanded names
//! are capped at the RFC's 255 wire octets; every failure is a
//! [`WireError`] carrying the byte offset it was detected at.
//!
//! [`Query`]: remnant_dns::Query
//! [`Response`]: remnant_dns::Response

pub mod error;
pub mod message;
pub mod name;
pub mod serve;
pub mod transport;
pub mod types;

pub use error::WireError;
pub use message::{patch_id, Message};
pub use name::{decode_name, decode_name_into, NameScratch, MAX_POINTER_JUMPS, MAX_PRESENTATION};
pub use serve::{DnsService, ResolverService, ServerCore, SharedTransport, WireServer};
pub use transport::{
    query_id, WireTransport, WIRE_CODEC_ERRORS, WIRE_FRAMES_DECODED, WIRE_FRAMES_ENCODED,
};
pub use types::{Flags, Header, CLASS_IN, HEADER_LEN, MAX_UDP_PAYLOAD};
