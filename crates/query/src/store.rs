//! The time-indexed snapshot store: a spill directory reopened as a
//! queryable sequence of collection rounds.
//!
//! A campaign that runs with `--spill-dir` leaves one RSNP v1 file per
//! round behind: `full-r*.rsnb` files carry every shard, `delta-r*.rsnb`
//! files carry only the shards whose zone generations changed.
//! [`SnapshotStore::open`] re-chains that directory without loading any
//! record data: each file contributes its frames' [`SpillRef`]s (read
//! from the RSNX footer index), and a round's snapshot is the latest ref
//! per shard at that point in the sequence — the same `Arc`-shared
//! structural sharing the delta collector used when writing. Record
//! columns are only read from disk when a query actually touches a
//! block, and are dropped again after the block goes out of scope.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use remnant_core::spill::{SpillError, SpillFile, SpillRef};
use remnant_core::DnsSnapshot;
use remnant_sim::SimTime;

use crate::query::RoundsQuery;

/// Why a directory (or snapshot sequence) could not be opened as a store.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// A spill file failed to open, index or validate.
    Spill(SpillError),
    /// The directory holds no round files (or no snapshots were given).
    NoRounds,
    /// The round sequence has a gap: `round` is missing. An interrupted
    /// campaign that leaves `full-r00000` + `delta-r00002` behind fails
    /// here by name instead of silently skipping the hole — every delta
    /// round after the gap would otherwise chain to the wrong
    /// generations.
    MissingRound {
        /// The first absent round number.
        round: u64,
    },
    /// Two files claim the same round number.
    DuplicateRound {
        /// The contested round number.
        round: u64,
    },
    /// A file disagrees with the rest of the campaign about the
    /// collection plan.
    PlanMismatch {
        /// The offending round.
        round: u64,
        /// Which plan field differed (`"sites"`, `"block_size"`,
        /// `"shard_count"`, `"day"`).
        field: &'static str,
    },
    /// A filesystem error outside any single spill file.
    Io {
        /// What was being done.
        context: &'static str,
        /// The underlying error.
        error: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Spill(e) => write!(f, "spill file error: {e}"),
            StoreError::NoRounds => write!(f, "no collection rounds found"),
            StoreError::MissingRound { round } => {
                write!(f, "round {round} is missing from the spill directory")
            }
            StoreError::DuplicateRound { round } => {
                write!(f, "round {round} appears in more than one spill file")
            }
            StoreError::PlanMismatch { round, field } => {
                write!(f, "round {round} disagrees with the campaign plan: {field}")
            }
            StoreError::Io { context, error } => write!(f, "{context}: {error}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Spill(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpillError> for StoreError {
    fn from(e: SpillError) -> Self {
        StoreError::Spill(e)
    }
}

/// How a round was persisted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundKind {
    /// A `full-r*.rsnb` file: every shard re-resolved and written.
    Full,
    /// A `delta-r*.rsnb` file: only dirty shards written, the rest
    /// chained from earlier rounds.
    Delta,
    /// An in-memory round (no backing file).
    Resident,
}

/// One round's position on the campaign timeline.
#[derive(Clone, Debug)]
pub struct RoundMeta {
    /// 0-based round number, as written in the spill file name
    /// (`full-r00000.rsnb` is the campaign's first round).
    pub round: u64,
    /// The study day the round was collected on.
    pub day: u32,
    /// Virtual instant the round was taken at.
    pub taken_at: SimTime,
    /// How the round was persisted.
    pub kind: RoundKind,
    /// Shards written by this round's own file (its generation delta);
    /// every shard for full and resident rounds.
    pub dirty_shards: Vec<u32>,
}

enum RoundBacking {
    /// One ref per shard, ascending — the latest frame for each shard as
    /// of this round.
    Spilled(Vec<SpillRef>),
    /// A resident snapshot (the in-memory campaign path).
    Resident(DnsSnapshot),
}

pub(crate) struct RoundEntry {
    pub(crate) meta: RoundMeta,
    backing: RoundBacking,
}

/// A spill directory (or snapshot sequence) opened as a time-indexed,
/// generation-aware store of collection rounds — see the module docs.
///
/// # Example
///
/// ```no_run
/// use remnant_query::SnapshotStore;
///
/// let store = SnapshotStore::open("/tmp/spill")?;
/// for meta in store.rounds() {
///     println!("round {} on day {}", meta.round, meta.day);
/// }
/// let first = store.snapshot(0); // loads shard frames lazily
/// assert_eq!(first.len(), store.sites());
/// # Ok::<(), remnant_query::StoreError>(())
/// ```
pub struct SnapshotStore {
    rounds: Vec<RoundEntry>,
    sites: usize,
    block_size: usize,
    shard_count: u32,
}

impl fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("rounds", &self.rounds.len())
            .field("sites", &self.sites)
            .field("block_size", &self.block_size)
            .field("shard_count", &self.shard_count)
            .finish()
    }
}

/// `full-r00012.rsnb` → `(RoundKind::Full, 12)`.
fn parse_round_name(name: &str) -> Option<(RoundKind, u64)> {
    let stem = name.strip_suffix(".rsnb")?;
    let (kind, digits) = if let Some(d) = stem.strip_prefix("full-r") {
        (RoundKind::Full, d)
    } else if let Some(d) = stem.strip_prefix("delta-r") {
        (RoundKind::Delta, d)
    } else {
        return None;
    };
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok().map(|round| (kind, round))
}

impl SnapshotStore {
    /// Opens a spill directory written by one campaign.
    ///
    /// Validates that the round numbers form a contiguous sequence (a
    /// gap — e.g. from an interrupted run that mixed `full-r*` and
    /// `delta-r*` files — is a typed [`StoreError::MissingRound`]), that
    /// every file agrees on the collection plan, and that the first round
    /// covers every shard. Only headers and footer indexes are read.
    pub fn open(dir: impl AsRef<Path>) -> Result<SnapshotStore, StoreError> {
        let dir = dir.as_ref();
        let io = |context: &'static str| {
            move |error: std::io::Error| StoreError::Io {
                context,
                error: error.to_string(),
            }
        };
        let mut files: Vec<(u64, RoundKind, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir).map_err(io("reading spill directory"))? {
            let entry = entry.map_err(io("reading spill directory entry"))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((kind, round)) = parse_round_name(name) {
                files.push((round, kind, entry.path()));
            }
        }
        if files.is_empty() {
            return Err(StoreError::NoRounds);
        }
        files.sort_by_key(|(round, _, _)| *round);
        if files[0].0 > 0 {
            // Rounds are numbered from 0; a directory starting later has
            // lost its head and every delta chain with it.
            return Err(StoreError::MissingRound { round: 0 });
        }
        for pair in files.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(StoreError::DuplicateRound { round: pair[0].0 });
            }
            if pair[0].0 + 1 != pair[1].0 {
                return Err(StoreError::MissingRound {
                    round: pair[0].0 + 1,
                });
            }
        }

        let mut rounds: Vec<RoundEntry> = Vec::with_capacity(files.len());
        let mut plan: Option<(u64, u32, u32)> = None; // sites, block_size, shards
        let mut prev_day: Option<u32> = None;
        let mut latest: Vec<Option<SpillRef>> = Vec::new();
        for (round, kind, path) in files {
            let file = SpillFile::open(&path)?;
            let meta = file.meta();
            match plan {
                None => {
                    plan = Some((meta.sites, meta.block_size, meta.shard_count));
                    latest = vec![None; meta.shard_count as usize];
                }
                Some((sites, block_size, shard_count)) => {
                    let field = if meta.sites != sites {
                        Some("sites")
                    } else if meta.block_size != block_size {
                        Some("block_size")
                    } else if meta.shard_count != shard_count {
                        Some("shard_count")
                    } else {
                        None
                    };
                    if let Some(field) = field {
                        return Err(StoreError::PlanMismatch { round, field });
                    }
                }
            }
            if prev_day.is_some_and(|prev| meta.day <= prev) {
                return Err(StoreError::PlanMismatch {
                    round,
                    field: "day",
                });
            }
            prev_day = Some(meta.day);

            let refs = file.refs()?;
            let dirty_shards: Vec<u32> = refs.iter().map(|r| r.shard() as u32).collect();
            for r in refs {
                let shard = r.shard();
                latest[shard] = Some(r);
            }
            let chained: Vec<SpillRef> = latest
                .iter()
                .enumerate()
                .map(|(shard, slot)| {
                    slot.clone()
                        .ok_or(StoreError::Spill(SpillError::MissingShardFrame {
                            shard: shard as u32,
                        }))
                })
                .collect::<Result<_, _>>()?;
            rounds.push(RoundEntry {
                meta: RoundMeta {
                    round,
                    day: meta.day,
                    taken_at: meta.taken_at,
                    kind,
                    dirty_shards,
                },
                backing: RoundBacking::Spilled(chained),
            });
        }
        let (sites, block_size, shard_count) = plan.expect("at least one round");
        Ok(SnapshotStore {
            rounds,
            sites: sites as usize,
            block_size: block_size as usize,
            shard_count,
        })
    }

    /// Builds a store over resident snapshots — the in-memory campaign
    /// path, so queries run identically whether or not a campaign
    /// spilled. Snapshots must be given in round order and agree on site
    /// count and block size.
    pub fn in_memory(
        snapshots: impl IntoIterator<Item = DnsSnapshot>,
    ) -> Result<SnapshotStore, StoreError> {
        let mut rounds: Vec<RoundEntry> = Vec::new();
        let mut plan: Option<(usize, usize)> = None;
        let mut prev_day: Option<u32> = None;
        for (i, snapshot) in snapshots.into_iter().enumerate() {
            let round = i as u64;
            match plan {
                None => plan = Some((snapshot.len(), snapshot.block_size())),
                Some((sites, block_size)) => {
                    let field = if snapshot.len() != sites {
                        Some("sites")
                    } else if snapshot.block_size() != block_size {
                        Some("block_size")
                    } else {
                        None
                    };
                    if let Some(field) = field {
                        return Err(StoreError::PlanMismatch { round, field });
                    }
                }
            }
            if prev_day.is_some_and(|prev| snapshot.day <= prev) {
                return Err(StoreError::PlanMismatch {
                    round,
                    field: "day",
                });
            }
            prev_day = Some(snapshot.day);
            let shards = snapshot.blocks().count() as u32;
            rounds.push(RoundEntry {
                meta: RoundMeta {
                    round,
                    day: snapshot.day,
                    taken_at: snapshot.taken_at,
                    kind: RoundKind::Resident,
                    dirty_shards: (0..shards).collect(),
                },
                backing: RoundBacking::Resident(snapshot),
            });
        }
        if rounds.is_empty() {
            return Err(StoreError::NoRounds);
        }
        let (sites, block_size) = plan.expect("at least one round");
        let shard_count = rounds[0].meta.dirty_shards.len() as u32;
        Ok(SnapshotStore {
            rounds,
            sites,
            block_size,
            shard_count,
        })
    }

    /// Rounds in the store.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True if the store holds no rounds (never true for a store built by
    /// [`open`](Self::open) or [`in_memory`](Self::in_memory)).
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Sites per round.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// The collection plan's block (shard) size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Shards per round.
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// The rounds' timeline metadata, in round order.
    pub fn rounds(&self) -> impl Iterator<Item = &RoundMeta> + '_ {
        self.rounds.iter().map(|e| &e.meta)
    }

    /// One round's timeline metadata (0-based store index).
    pub fn meta(&self, index: usize) -> &RoundMeta {
        &self.rounds[index].meta
    }

    /// Reconstructs one round's snapshot (0-based store index).
    ///
    /// For spilled rounds this chains the latest per-shard frame refs in
    /// shard order — the same structural sharing the collector used — so
    /// the result is byte-identical to the snapshot the campaign
    /// produced, and no record data is read until a block is touched.
    pub fn snapshot(&self, index: usize) -> DnsSnapshot {
        let entry = &self.rounds[index];
        match &entry.backing {
            RoundBacking::Resident(snapshot) => snapshot.clone(),
            RoundBacking::Spilled(refs) => {
                let mut builder =
                    DnsSnapshot::builder(entry.meta.taken_at, entry.meta.day, self.block_size);
                for r in refs {
                    builder.push_spilled(r.clone());
                }
                builder.finish()
            }
        }
    }

    /// Distinct backing files referenced by round `index`'s chain — 1 for
    /// a full round, 1 + the live chain depth for a delta round.
    pub fn chain_depth(&self, index: usize) -> usize {
        match &self.rounds[index].backing {
            RoundBacking::Resident(_) => 0,
            RoundBacking::Spilled(refs) => refs
                .iter()
                .map(|r| r.file_path())
                .collect::<BTreeSet<_>>()
                .len(),
        }
    }

    /// Starts a query over every round.
    pub fn query(&self) -> RoundsQuery<'_> {
        RoundsQuery::all(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_names_parse() {
        assert_eq!(
            parse_round_name("full-r00000.rsnb"),
            Some((RoundKind::Full, 0))
        );
        assert_eq!(
            parse_round_name("delta-r00012.rsnb"),
            Some((RoundKind::Delta, 12))
        );
        assert_eq!(parse_round_name("full-r7.rsnb"), Some((RoundKind::Full, 7)));
        for bad in [
            "full-r.rsnb",
            "full-rxyz.rsnb",
            "full-r00001.tmp",
            "snapshot.rsnb",
            "full-r-1.rsnb",
            "full-r00001",
        ] {
            assert_eq!(parse_round_name(bad), None, "{bad} must not parse");
        }
    }

    #[test]
    fn in_memory_rejects_inconsistent_sequences() {
        assert!(matches!(
            SnapshotStore::in_memory(std::iter::empty()),
            Err(StoreError::NoRounds)
        ));
    }
}
