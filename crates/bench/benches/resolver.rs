//! DNS substrate benchmarks: recursive resolution, cached resolution, and
//! direct nameserver queries — the primitives every measurement sweep is
//! built from.

use criterion::{criterion_group, criterion_main, Criterion};

use remnant::dns::{DnsTransport, Query, RecordType, RecursiveResolver};
use remnant::net::Region;
use remnant::provider::ProviderId;
use remnant::world::{World, WorldConfig};

fn bench_resolution(c: &mut Criterion) {
    let mut world = World::generate(WorldConfig {
        population: 2_000,
        seed: 1,
        warmup_days: 0,
        calibration: remnant::world::Calibration::paper(),
    });
    let names: Vec<_> = world.sites().iter().map(|s| s.www.clone()).collect();

    let mut group = c.benchmark_group("resolver");

    let clock = world.clock();
    group.bench_function("recursive_uncached", |b| {
        let mut resolver = RecursiveResolver::new(clock.clone(), Region::Ashburn);
        let mut i = 0usize;
        b.iter(|| {
            resolver.purge_cache();
            let name = &names[i % names.len()];
            i += 1;
            resolver
                .resolve(&mut world, name, RecordType::A)
                .expect("world resolves")
        });
    });

    group.bench_function("recursive_cached", |b| {
        let mut resolver = RecursiveResolver::new(clock.clone(), Region::Ashburn);
        let name = &names[0];
        let _ = resolver.resolve(&mut world, name, RecordType::A);
        b.iter(|| {
            resolver
                .resolve(&mut world, name, RecordType::A)
                .expect("cached")
        });
    });

    group.bench_function("direct_ns_query", |b| {
        let server = world.provider(ProviderId::Cloudflare).ns_addresses()[0];
        let queries: Vec<Query> = names
            .iter()
            .map(|n| Query::new(n.clone(), RecordType::A))
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let query = &queries[i % queries.len()];
            i += 1;
            let now = clock.now();
            world.query(now, server, Region::Oregon, query)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_resolution);
criterion_main!(benches);
