//! One campaign, incrementally: the session that used to be the body of
//! `PaperStudy::run`.
//!
//! A [`StudySession`] owns everything one campaign needs — its
//! [`StudyConfig`], collector, passes, scanners, filter pipeline, obs
//! registry and (optional) spill directory — and exposes the campaign as
//! a sequence of [`round`](StudySession::round) calls plus a final
//! [`finish`](StudySession::finish). `PaperStudy` is now a thin driver
//! over this type, and the multi-tenant [`StudyService`] runs many of
//! them concurrently, each streaming a [`RoundProgress`] per round over a
//! bounded channel.
//!
//! The decomposition changes *nothing* about what a campaign computes:
//! the session executes the same operations in the same order the
//! monolithic loop did, so reports, snapshots and obs JSON stay
//! byte-identical — the multi-tenant differential test pins that down.
//!
//! [`StudyService`]: crate::service::StudyService

use std::collections::BTreeSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use remnant_engine::{EngineConfig, RateLimit, ScanEngine, SweepStats, WorkerPool};
use remnant_obs::{Obs, ObsReport, ProgressSender, Span};
use remnant_provider::ProviderId;
use remnant_world::World;

use crate::classify::ShardClassCache;
use crate::collector::{DeltaCollector, DeltaRound, RecordCollector, Target};
use crate::passes::SnapshotPasses;
use crate::residual::{
    CloudflareScanner, ExposureTracker, FilterPipeline, IncapsulaScanner, WeeklyScanReport,
};
use crate::spill::SpillConfig;
use crate::study::{CollectionMode, CollectionReport, StudyConfig, StudyReport};
use crate::unchanged::{self, UnchangedStudy};
use crate::SCANNER_SOURCE;

/// One round's progress event, streamed while a session runs.
///
/// Carries the session's cumulative [`CollectionReport`] and a full
/// [`ObsReport`] snapshot — the same payloads the final [`StudyReport`]
/// exposes, taken mid-flight — so a consumer can render live counters
/// without touching the session. Everything here is deterministic except
/// nothing: the payload is built purely from session state on virtual
/// time.
#[derive(Clone, Debug)]
pub struct RoundProgress {
    /// The emitting session's id (its index in a service batch; 0 for a
    /// solo run).
    pub session: usize,
    /// 0-based day index of the finished round.
    pub day: u32,
    /// Total rounds this session will run.
    pub days_total: u32,
    /// Sites in the session's target list.
    pub sites: usize,
    /// DNS queries the round's collection sweep issued.
    pub round_queries: u64,
    /// The week number, when this round also ran the weekly residual
    /// scans.
    pub scanned_week: Option<u32>,
    /// Cumulative collection/reuse accounting after this round.
    pub collection: CollectionReport,
    /// The session's observability snapshot after this round.
    pub obs: ObsReport,
}

/// A summary of one executed round, before any progress payload is built.
#[derive(Clone, Copy, Debug)]
pub struct RoundSummary {
    /// 0-based day index of the finished round.
    pub day: u32,
    /// DNS queries the round's collection sweep issued.
    pub round_queries: u64,
    /// The week number, when this round also ran the weekly scans.
    pub scanned_week: Option<u32>,
}

/// One campaign's full mutable state (see module docs).
#[derive(Debug)]
pub struct StudySession {
    id: usize,
    config: StudyConfig,
    engine: ScanEngine,
    targets: Vec<Target>,
    days: u32,
    day: u32,
    jitter: StdRng,
    collector: DailyCollector,
    passes: SnapshotPasses,
    class_cache: ShardClassCache,
    unchanged: UnchangedStudy,
    cf_scanner: CloudflareScanner,
    inc_scanner: IncapsulaScanner,
    pipeline: FilterPipeline,
    obs: Obs,
    study_span: Option<Span>,
    exposed_cf: BTreeSet<usize>,
    exposed_inc: BTreeSet<usize>,
    report: StudyReport,
    prev_snapshot: Option<crate::DnsSnapshot>,
}

impl StudySession {
    /// Opens a session for `config` against `world`, reading the target
    /// list and clock from the world's current state.
    pub fn new(config: StudyConfig, world: &World) -> Self {
        let engine = ScanEngine::new(Self::engine_config(&config));
        Self::with_engine(config, world, engine)
    }

    /// Like [`new`](StudySession::new), but the session's sweeps draw
    /// their threads from `pool` — the shared budget of a multi-tenant
    /// service — instead of unconditionally spawning `config.workers`.
    pub fn with_worker_pool(config: StudyConfig, world: &World, pool: Arc<WorkerPool>) -> Self {
        let engine = ScanEngine::with_pool(Self::engine_config(&config), pool);
        Self::with_engine(config, world, engine)
    }

    fn engine_config(config: &StudyConfig) -> EngineConfig {
        let mut engine = EngineConfig::with_workers(config.workers.max(1), config.seed)
            .expect("clamped worker count is always valid");
        // Wall-clock pacing only: the token bucket never touches outputs,
        // so a rate-limited session still reports bit-identically. The
        // burst is capped at ~100ms of rate: the engine starts each
        // sweep's bucket full, and a full second of burst would let a
        // small daily round finish without ever being paced.
        engine.rate = config.rate_per_second.map(|rate| RateLimit {
            per_second: f64::from(rate),
            burst: rate.div_ceil(10).max(1),
        });
        engine
    }

    fn with_engine(config: StudyConfig, world: &World, engine: ScanEngine) -> Self {
        let targets: Vec<Target> = world
            .sites()
            .iter()
            .map(|s| (s.apex.clone(), s.www.clone()))
            .collect();
        let days = config.weeks * 7;
        let jitter = StdRng::seed_from_u64(config.seed);
        let collector = match config.collection_mode {
            CollectionMode::Full => {
                DailyCollector::Full(RecordCollector::new(world.clock(), config.collector_region))
            }
            CollectionMode::Delta => DailyCollector::Delta(DeltaCollector::new(
                world.clock(),
                config.collector_region,
                config.seed,
            )),
        };
        let passes = SnapshotPasses::new(targets.len());
        let unchanged = UnchangedStudy::new(SCANNER_SOURCE);
        let cf_scanner = CloudflareScanner::new(world.clock(), "cloudflare");
        let inc_scanner = IncapsulaScanner::new(world.clock(), "incapdns");
        let pipeline = FilterPipeline::new(world.clock(), config.collector_region, SCANNER_SOURCE);

        let mut obs = Obs::new(world.clock());
        obs.event(
            "study.start",
            format!("{} sites over {} weeks", targets.len(), config.weeks),
        );
        let study_span = Span::enter(&obs, "study.run");

        let mut report = StudyReport::default();
        report.collection.mode = config.collection_mode;

        StudySession {
            id: 0,
            config,
            engine,
            targets,
            days,
            day: 0,
            jitter,
            collector,
            passes,
            class_cache: ShardClassCache::new(),
            unchanged,
            cf_scanner,
            inc_scanner,
            pipeline,
            obs,
            study_span: Some(study_span),
            exposed_cf: BTreeSet::new(),
            exposed_inc: BTreeSet::new(),
            report,
            prev_snapshot: None,
        }
    }

    /// Tags this session with an id (its index in a service batch); the
    /// id rides along in every [`RoundProgress`].
    pub fn with_id(mut self, id: usize) -> Self {
        self.id = id;
        self
    }

    /// The session's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The session's configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Total rounds this session will run.
    pub fn days_total(&self) -> u32 {
        self.days
    }

    /// Rounds already executed.
    pub fn days_done(&self) -> u32 {
        self.day
    }

    /// Whether every round has run.
    pub fn is_done(&self) -> bool {
        self.day >= self.days
    }

    /// The live classification cache's `(hits, misses)` so far — nonzero
    /// only under delta collection. Deliberately kept out of the study
    /// report: the counts are collection-mode-dependent, and
    /// full-vs-delta reports compare byte-identically.
    pub fn class_cache_stats(&self) -> (u64, u64) {
        (self.class_cache.hits(), self.class_cache.misses())
    }

    /// Executes the next daily round against `world`: collection, the
    /// snapshot passes, the unchanged study, harvesting, the weekly
    /// residual scans (on week boundaries), and the 20–30h step to the
    /// next experiment. Returns `None` once the campaign is complete.
    ///
    /// `on_snapshot` observes the round's [`crate::DnsSnapshot`] right
    /// after collection (byte-equivalence tests hook here); it must not
    /// mutate study state.
    pub fn round(
        &mut self,
        world: &mut World,
        on_snapshot: &mut dyn FnMut(&crate::DnsSnapshot),
    ) -> Option<RoundSummary> {
        if self.is_done() {
            return None;
        }
        let day = self.day;
        let day_span = Span::enter(&self.obs, "study.day");
        self.obs
            .event("sweep.start", format!("day {day}: daily collection round"));
        let (snapshot, sweep, delta) = self.collector.collect(
            &self.engine,
            world,
            &self.targets,
            day,
            self.config.spill.as_ref(),
        );
        match delta {
            Some(round) => self.report.collection.absorb(&round),
            None => {
                self.report.collection.rounds += 1;
                self.report.collection.reresolved += self.targets.len() as u64;
            }
        }
        on_snapshot(&snapshot);
        let round_queries = sweep.queries();
        self.obs.metrics.merge_from(&sweep.merged_metrics());
        self.obs.event(
            "sweep.finish",
            format!(
                "day {day}: {} queries over {} shards",
                sweep.queries(),
                sweep.shards.len()
            ),
        );
        self.report.engine.absorb(&sweep);

        // The snapshot-derived passes — adoption (Fig 2 / Fig 6),
        // behaviors (Fig 3), FSM validation (Fig 4), pause windows
        // (Fig 5) — run as one shared fold, the same fold the
        // remnant-query crate replays over persisted rounds. Under delta
        // collection, clean shards carry the previous round's block
        // (same `Arc`/spill frame), so their classification columns come
        // from the per-shard cache instead of being recomputed; the fold
        // arithmetic is identical either way, keeping full-vs-delta
        // reports byte-identical.
        let behaviors = match self.config.collection_mode {
            CollectionMode::Full => self.passes.observe(day, &snapshot),
            CollectionMode::Delta => {
                let columns = self.class_cache.classify_snapshot(
                    &self.engine,
                    self.passes.detector(),
                    &snapshot,
                );
                self.passes.observe_columns(
                    day,
                    snapshot.taken_at,
                    columns.classes,
                    &columns.multi_cdn_ranks,
                )
            }
        };

        // The unchanged study (Table V) is the one behavior consumer
        // that needs a live transport: candidate extraction is pure,
        // the verification fetch is not.
        if let Some(prev_snap) = &self.prev_snapshot {
            let candidates = unchanged::candidates(&self.targets, &behaviors, prev_snap, &snapshot);
            let now = world.now();
            self.unchanged.observe_candidates(world, now, &candidates);
        }

        // Residual-resolution harvesting runs daily, scans weekly.
        self.cf_scanner.harvest_fleet(world, &snapshot);
        self.inc_scanner.harvest(&snapshot);
        let scanned_week = day.is_multiple_of(7).then(|| {
            let week = day / 7;
            self.scan_week(world, week);
            week
        });

        self.prev_snapshot = Some(snapshot);

        // Advance to the next experiment.
        let interval = if self.config.uneven_intervals {
            self.jitter.gen_range(20..=30)
        } else {
            24
        };
        world.step_hours(interval);
        day_span.exit(&mut self.obs);
        self.day += 1;
        Some(RoundSummary {
            day,
            round_queries,
            scanned_week,
        })
    }

    /// The weekly residual-resolution scans (Sec V) for `week`.
    fn scan_week(&mut self, world: &mut World, week: u32) {
        self.obs
            .event("scan.start", format!("week {week}: residual scans"));
        let (raw, sweep) = self
            .cf_scanner
            .scan_with(&self.engine, world, &self.targets, week);
        self.absorb_scan_sweep(&sweep, week);
        let weekly = self
            .pipeline
            .run(world, ProviderId::Cloudflare, week, &raw, &self.targets);
        note_filter_verdict(&mut self.obs, &weekly);
        note_exposure_windows(&mut self.obs, &weekly, &mut self.exposed_cf);
        self.report.residual.cloudflare.weekly.push(weekly);

        let (raw, sweep) = self.inc_scanner.scan_with(&self.engine, world);
        self.absorb_scan_sweep(&sweep, week);
        let weekly = self
            .pipeline
            .run(world, ProviderId::Incapsula, week, &raw, &self.targets);
        note_filter_verdict(&mut self.obs, &weekly);
        note_exposure_windows(&mut self.obs, &weekly, &mut self.exposed_inc);
        self.report.residual.incapsula.weekly.push(weekly);
    }

    fn absorb_scan_sweep(&mut self, sweep: &SweepStats, week: u32) {
        self.obs.metrics.merge_from(&sweep.merged_metrics());
        self.report.engine.absorb(sweep);
        self.obs.event(
            "cache.purge",
            format!("week {week}: pipeline resolver purged before A-matching"),
        );
    }

    /// Builds the streaming payload for a finished round: the summary
    /// plus cumulative collection accounting and a full obs snapshot.
    pub fn progress(&self, summary: RoundSummary) -> RoundProgress {
        RoundProgress {
            session: self.id,
            day: summary.day,
            days_total: self.days,
            sites: self.targets.len(),
            round_queries: summary.round_queries,
            scanned_week: summary.scanned_week,
            collection: self.report.collection.clone(),
            obs: self.obs.report(),
        }
    }

    /// Finalizes the campaign and returns its [`StudyReport`]. Call after
    /// [`round`](StudySession::round) returns `None`; calling earlier
    /// reports whatever the executed rounds accumulated.
    pub fn finish(mut self) -> StudyReport {
        let aggregates = self.passes.finish();
        self.report.adoption = aggregates.adoption;
        self.report.behaviors = aggregates.behaviors;
        self.report.pauses = aggregates.pauses;

        self.report.unchanged.rows = self.unchanged.rows();
        self.report.unchanged.total = self.unchanged.total();

        self.report.residual.cloudflare.exposure =
            ExposureTracker::fold(&self.report.residual.cloudflare.weekly);
        self.report.residual.incapsula.exposure =
            ExposureTracker::fold(&self.report.residual.incapsula.weekly);
        self.report.residual.fleet_size = self.cf_scanner.fleet_size();
        self.report.residual.harvested_tokens = self.inc_scanner.harvested_count();
        self.report.engine.workers = self.config.workers.max(1);

        if let Some(span) = self.study_span.take() {
            span.exit(&mut self.obs);
        }
        self.obs.event(
            "study.finish",
            format!("{} collection rounds", self.collector.rounds()),
        );
        self.obs.absorb(&self.report.engine);
        self.obs.absorb(&self.cf_scanner);
        self.obs.absorb(&self.inc_scanner);
        self.obs.metrics.merge_from(&self.pipeline.metrics());
        self.report.obs = self.obs.report();
        self.report
    }

    /// Drives the whole campaign: every round, then
    /// [`finish`](StudySession::finish). When `progress` is set, a
    /// [`RoundProgress`] is streamed per round over the bounded channel
    /// (blocking on a slow consumer, surviving a dropped one).
    pub fn run(
        mut self,
        world: &mut World,
        on_snapshot: &mut dyn FnMut(&crate::DnsSnapshot),
        progress: Option<&ProgressSender<RoundProgress>>,
    ) -> StudyReport {
        while let Some(summary) = self.round(world, on_snapshot) {
            if let Some(sender) = progress {
                sender.send(self.progress(summary));
            }
        }
        self.finish()
    }
}

/// The session's per-mode collector dispatch: one arm per
/// [`CollectionMode`], unified behind a `collect` that also reports the
/// round's reuse counters (`None` in full mode).
#[derive(Debug)]
enum DailyCollector {
    Full(RecordCollector),
    Delta(DeltaCollector),
}

impl DailyCollector {
    /// One daily round, through the in-memory or the streaming spill path.
    ///
    /// # Panics
    ///
    /// Panics if a spill round's file cannot be written mid-campaign —
    /// callers validate the spill directory up front, and a disk that
    /// fills or vanishes afterwards is not a recoverable study state.
    fn collect(
        &mut self,
        engine: &ScanEngine,
        world: &World,
        targets: &[Target],
        day: u32,
        spill: Option<&SpillConfig>,
    ) -> (crate::DnsSnapshot, SweepStats, Option<DeltaRound>) {
        match (self, spill) {
            (DailyCollector::Full(collector), None) => {
                let (snapshot, sweep) = collector.collect_with(engine, world, targets, day);
                (snapshot, sweep, None)
            }
            (DailyCollector::Full(collector), Some(spill)) => {
                let (snapshot, sweep) = collector
                    .collect_spilled(engine, world, targets, day, spill)
                    .unwrap_or_else(|e| panic!("day {day} spill round failed: {e}"));
                (snapshot, sweep, None)
            }
            (DailyCollector::Delta(collector), None) => {
                let (snapshot, sweep, round) = collector.collect_with(engine, world, targets, day);
                (snapshot, sweep, Some(round))
            }
            (DailyCollector::Delta(collector), Some(spill)) => {
                let (snapshot, sweep, round) = collector
                    .collect_spilled(engine, world, targets, day, spill)
                    .unwrap_or_else(|e| panic!("day {day} spill round failed: {e}"));
                (snapshot, sweep, Some(round))
            }
        }
    }

    fn rounds(&self) -> u32 {
        match self {
            DailyCollector::Full(collector) => collector.rounds(),
            DailyCollector::Delta(collector) => collector.rounds(),
        }
    }
}

/// Journals one weekly pipeline pass's funnel attrition.
fn note_filter_verdict(obs: &mut Obs, weekly: &WeeklyScanReport) {
    obs.event(
        "filter.verdict",
        format!(
            "{} week {}: retrieved {} -> after_ip_matching {} -> hidden {} -> verified {}",
            weekly.provider.name(),
            weekly.week,
            weekly.retrieved,
            weekly.after_ip_matching,
            weekly.hidden.len(),
            weekly.verified.len()
        ),
    );
}

/// Journals exposure-window transitions: a site opens a window the first
/// week its hidden origin verifies, and closes it the first week it no
/// longer does.
fn note_exposure_windows(obs: &mut Obs, weekly: &WeeklyScanReport, exposed: &mut BTreeSet<usize>) {
    let provider = weekly.provider.name();
    let week = weekly.week;
    let verified: BTreeSet<usize> = weekly.verified.iter().copied().collect();
    for rank in verified.difference(exposed) {
        obs.event(
            "exposure.open",
            format!("{provider} week {week}: site rank {rank} origin exposed"),
        );
    }
    for rank in exposed.difference(&verified) {
        obs.event(
            "exposure.close",
            format!("{provider} week {week}: site rank {rank} no longer verified"),
        );
    }
    *exposed = verified;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::PaperStudy;
    use remnant_world::WorldConfig;

    fn world(seed: u64) -> World {
        World::generate(WorldConfig {
            population: 800,
            seed,
            warmup_days: 3,
            calibration: remnant_world::Calibration::paper(),
        })
    }

    fn config() -> StudyConfig {
        StudyConfig::builder().weeks(1).build().unwrap()
    }

    #[test]
    fn incremental_rounds_match_the_monolithic_driver() {
        // The session API (round-by-round) and PaperStudy (one call)
        // produce byte-identical reports and snapshot streams.
        let mut w1 = world(17);
        let mut w2 = world(17);

        let mut mono_snaps = String::new();
        let mono = PaperStudy::new(config()).run_with(&mut w1, |s| {
            mono_snaps.push_str(&s.encode());
        });

        let mut session = StudySession::new(config(), &w2);
        let mut inc_snaps = String::new();
        let mut on_snapshot = |s: &crate::DnsSnapshot| inc_snaps.push_str(&s.encode());
        let mut summaries = Vec::new();
        while let Some(summary) = session.round(&mut w2, &mut on_snapshot) {
            summaries.push(summary);
        }
        let inc = session.finish();

        assert_eq!(mono_snaps, inc_snaps);
        assert_eq!(mono.obs().to_json(), inc.obs().to_json());
        assert_eq!(mono.adoption(), inc.adoption());
        assert_eq!(summaries.len(), 7);
        assert_eq!(summaries[0].scanned_week, Some(0));
        assert!(summaries[1..].iter().all(|s| s.scanned_week.is_none()));
    }

    #[test]
    fn progress_stream_carries_cumulative_state() {
        let mut w = world(9);
        let session = StudySession::new(config(), &w).with_id(3);
        let (tx, rx) = remnant_obs::progress_channel(16);
        let report = session.run(&mut w, &mut |_| {}, Some(&tx));
        drop(tx);
        let events: Vec<RoundProgress> = rx.iter().collect();
        assert_eq!(events.len(), 7);
        for (day, event) in events.iter().enumerate() {
            assert_eq!(event.session, 3);
            assert_eq!(event.day, day as u32);
            assert_eq!(event.days_total, 7);
            assert_eq!(event.sites, 800);
            assert!(event.round_queries > 0);
            assert_eq!(event.collection.rounds, day as u64 + 1);
        }
        // The final round's obs snapshot carries the merged per-shard
        // telemetry (the report then adds finalization counters on top).
        let last = events.last().unwrap();
        let resolver_a = |obs: &ObsReport| {
            obs.counter(
                "resolver.queries",
                &[("component", "dns.resolver"), ("qtype", "A")],
            )
        };
        assert!(resolver_a(&last.obs) > 0, "mid-flight telemetry present");
        assert_eq!(resolver_a(&last.obs), resolver_a(report.obs()));
        assert_eq!(report.collection().rounds, 7);
    }
}
