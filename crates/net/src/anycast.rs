//! Anycast catchment: which PoP answers a query for an anycast IP.
//!
//! Cloudflare's nameserver fleet is anycast: "the DNS requests sent to the
//! same IP address of nameservers will hit different physical machines if
//! the hosts issuing these requests are located at different PoPs"
//! (Sec V-A.1). [`AnycastMap`] models this: an anycast IP is served by a set
//! of PoPs, and a query from a [`Region`] lands on the PoP for that region,
//! or on the proximally-nearest PoP when the provider has none there.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::error::NetError;
use crate::geo::{PopId, Region};

/// Catchment map for one provider's anycast address space.
///
/// # Example
///
/// ```
/// use remnant_net::{AnycastMap, PopId, Region};
///
/// let mut map = AnycastMap::new();
/// let ns: std::net::Ipv4Addr = "173.245.59.1".parse()?;
/// map.announce(ns, Region::London, PopId(1));
/// map.announce(ns, Region::Tokyo, PopId(2));
/// assert_eq!(map.catchment(ns, Region::London)?, PopId(1));
/// // Sydney has no PoP for this IP; it falls through to a nearby region's.
/// let via_sydney = map.catchment(ns, Region::Sydney)?;
/// assert!(via_sydney == PopId(1) || via_sydney == PopId(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnycastMap {
    /// anycast IP -> (region -> serving PoP)
    routes: HashMap<Ipv4Addr, HashMap<Region, PopId>>,
}

impl AnycastMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        AnycastMap::default()
    }

    /// Announces `addr` from `pop` for queries entering at `region`.
    /// Re-announcing replaces the previous PoP for that region.
    pub fn announce(&mut self, addr: Ipv4Addr, region: Region, pop: PopId) {
        self.routes.entry(addr).or_default().insert(region, pop);
    }

    /// Withdraws the announcement of `addr` at `region`.
    pub fn withdraw(&mut self, addr: Ipv4Addr, region: Region) {
        if let Some(regions) = self.routes.get_mut(&addr) {
            regions.remove(&region);
            if regions.is_empty() {
                self.routes.remove(&addr);
            }
        }
    }

    /// True if `addr` is announced anywhere.
    pub fn is_announced(&self, addr: Ipv4Addr) -> bool {
        self.routes.contains_key(&addr)
    }

    /// The PoP that receives a query for `addr` entering at `region`.
    ///
    /// Falls back along [`Region::proximity_order`] when the provider has no
    /// PoP announcing the IP in `region` itself.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoCatchment`] if `addr` is not announced from any
    /// region.
    pub fn catchment(&self, addr: Ipv4Addr, region: Region) -> Result<PopId, NetError> {
        let regions = self
            .routes
            .get(&addr)
            .ok_or_else(|| NetError::NoCatchment {
                region: region.name().to_owned(),
            })?;
        if let Some(pop) = regions.get(&region) {
            return Ok(*pop);
        }
        for fallback in region.proximity_order() {
            if let Some(pop) = regions.get(&fallback) {
                return Ok(*pop);
            }
        }
        Err(NetError::NoCatchment {
            region: region.name().to_owned(),
        })
    }

    /// All PoPs serving `addr`, in unspecified order.
    pub fn pops_for(&self, addr: Ipv4Addr) -> Vec<PopId> {
        self.routes
            .get(&addr)
            .map(|m| m.values().copied().collect())
            .unwrap_or_default()
    }

    /// Number of distinct anycast IPs announced.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if nothing is announced.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().expect("test ip")
    }

    #[test]
    fn direct_catchment_prefers_local_pop() {
        let mut map = AnycastMap::new();
        map.announce(ip("1.1.1.1"), Region::Oregon, PopId(10));
        map.announce(ip("1.1.1.1"), Region::Tokyo, PopId(20));
        assert_eq!(
            map.catchment(ip("1.1.1.1"), Region::Oregon).unwrap(),
            PopId(10)
        );
        assert_eq!(
            map.catchment(ip("1.1.1.1"), Region::Tokyo).unwrap(),
            PopId(20)
        );
    }

    #[test]
    fn fallback_uses_proximity_order() {
        let mut map = AnycastMap::new();
        // Only a Frankfurt PoP announces; London's first preference is Frankfurt.
        map.announce(ip("2.2.2.2"), Region::Frankfurt, PopId(7));
        assert_eq!(
            map.catchment(ip("2.2.2.2"), Region::London).unwrap(),
            PopId(7)
        );
        // Even a far region eventually reaches the only PoP.
        assert_eq!(
            map.catchment(ip("2.2.2.2"), Region::Sydney).unwrap(),
            PopId(7)
        );
    }

    #[test]
    fn unannounced_ip_errors() {
        let map = AnycastMap::new();
        let err = map.catchment(ip("9.9.9.9"), Region::London).unwrap_err();
        assert!(matches!(err, NetError::NoCatchment { .. }));
    }

    #[test]
    fn withdraw_removes_catchment() {
        let mut map = AnycastMap::new();
        map.announce(ip("3.3.3.3"), Region::London, PopId(1));
        map.withdraw(ip("3.3.3.3"), Region::London);
        assert!(!map.is_announced(ip("3.3.3.3")));
        assert!(map.catchment(ip("3.3.3.3"), Region::London).is_err());
    }

    #[test]
    fn reannounce_replaces_pop() {
        let mut map = AnycastMap::new();
        map.announce(ip("4.4.4.4"), Region::Mumbai, PopId(1));
        map.announce(ip("4.4.4.4"), Region::Mumbai, PopId(2));
        assert_eq!(
            map.catchment(ip("4.4.4.4"), Region::Mumbai).unwrap(),
            PopId(2)
        );
        assert_eq!(map.pops_for(ip("4.4.4.4")), vec![PopId(2)]);
    }

    #[test]
    fn distinct_vantage_points_spread_over_pops() {
        // The paper used 5 vantage points to hit 5 distinct Cloudflare PoPs.
        let mut map = AnycastMap::new();
        for (i, region) in Region::VANTAGE_POINTS.iter().enumerate() {
            map.announce(ip("5.5.5.5"), *region, PopId(i as u32));
        }
        let hits: std::collections::BTreeSet<PopId> = Region::VANTAGE_POINTS
            .iter()
            .map(|r| map.catchment(ip("5.5.5.5"), *r).unwrap())
            .collect();
        assert_eq!(hits.len(), 5);
    }
}
