//! Origin web servers.

use std::collections::{BTreeMap, HashSet};
use std::net::Ipv4Addr;

use crate::page::PageTemplate;
use crate::transport::{HttpRequest, HttpResponse, HttpStatus};

/// Who an origin server talks to.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum FirewallPolicy {
    /// Responds to anyone (most sites).
    #[default]
    Open,
    /// Drops connections from everything except the allow-listed sources
    /// (sites that firewall themselves to their DPS's edge ranges, the
    /// paper's second verification false-negative source).
    DpsOnly {
        /// Allowed client source addresses.
        allowed: HashSet<Ipv4Addr>,
    },
}

impl FirewallPolicy {
    /// True if a connection from `src` is accepted.
    pub fn allows(&self, src: Ipv4Addr) -> bool {
        match self {
            FirewallPolicy::Open => true,
            FirewallPolicy::DpsOnly { allowed } => allowed.contains(&src),
        }
    }
}

/// An origin web server: one IP address hosting one or more virtual hosts.
///
/// Each render is stamped with an incrementing nonce so dynamic meta tags
/// actually vary between requests.
///
/// # Example
///
/// ```
/// use remnant_http::{HttpRequest, OriginServer, PageTemplate};
///
/// let addr = "203.0.113.10".parse()?;
/// let mut origin = OriginServer::new(addr);
/// origin.host_site("www.example.com", PageTemplate::generate("example.com", 1));
/// let resp = origin
///     .handle(&HttpRequest::landing("198.51.100.1".parse()?, "www.example.com"))
///     .expect("open firewall");
/// assert!(resp.is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct OriginServer {
    addr: Ipv4Addr,
    sites: BTreeMap<String, PageTemplate>,
    firewall: FirewallPolicy,
    render_nonce: u64,
    requests_served: u64,
}

impl OriginServer {
    /// Creates an origin at `addr` with an open firewall and no sites.
    pub fn new(addr: Ipv4Addr) -> Self {
        OriginServer {
            addr,
            sites: BTreeMap::new(),
            firewall: FirewallPolicy::Open,
            render_nonce: 0,
            requests_served: 0,
        }
    }

    /// The server's address.
    pub const fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// Serves `template` for the virtual host `host`.
    pub fn host_site(&mut self, host: impl Into<String>, template: PageTemplate) {
        self.sites.insert(host.into(), template);
    }

    /// Stops serving `host`, returning its template.
    pub fn unhost_site(&mut self, host: &str) -> Option<PageTemplate> {
        self.sites.remove(host)
    }

    /// The template served for `host`, if any.
    pub fn site(&self, host: &str) -> Option<&PageTemplate> {
        self.sites.get(host)
    }

    /// Mutable access to the template for `host`.
    pub fn site_mut(&mut self, host: &str) -> Option<&mut PageTemplate> {
        self.sites.get_mut(host)
    }

    /// Replaces the firewall policy.
    pub fn set_firewall(&mut self, policy: FirewallPolicy) {
        self.firewall = policy;
    }

    /// The current firewall policy.
    pub fn firewall(&self) -> &FirewallPolicy {
        &self.firewall
    }

    /// Number of requests that passed the firewall.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Handles a GET. `None` models a firewall drop (connection timeout).
    pub fn handle(&mut self, request: &HttpRequest) -> Option<HttpResponse> {
        if !self.firewall.allows(request.src) {
            return None;
        }
        self.requests_served += 1;
        match self.sites.get(&request.host) {
            Some(template) if request.path == "/" => {
                self.render_nonce += 1;
                Some(HttpResponse::ok(
                    template.render(self.render_nonce),
                    self.addr,
                ))
            }
            Some(_) => Some(HttpResponse::status(HttpStatus::NotFound, self.addr)),
            None => Some(HttpResponse::status(HttpStatus::NotFound, self.addr)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> OriginServer {
        let mut o = OriginServer::new(Ipv4Addr::new(203, 0, 113, 10));
        o.host_site("www.example.com", PageTemplate::generate("example.com", 1));
        o
    }

    fn req(host: &str) -> HttpRequest {
        HttpRequest::landing(Ipv4Addr::new(198, 51, 100, 1), host)
    }

    #[test]
    fn serves_hosted_site() {
        let mut o = origin();
        let resp = o.handle(&req("www.example.com")).unwrap();
        assert!(resp.is_ok());
        assert_eq!(resp.served_by, o.addr());
        assert_eq!(o.requests_served(), 1);
    }

    #[test]
    fn unknown_host_is_404() {
        let mut o = origin();
        let resp = o.handle(&req("www.other.org")).unwrap();
        assert_eq!(resp.status, HttpStatus::NotFound);
    }

    #[test]
    fn unknown_path_is_404() {
        let mut o = origin();
        let mut r = req("www.example.com");
        r.path = "/hidden".to_owned();
        assert_eq!(o.handle(&r).unwrap().status, HttpStatus::NotFound);
    }

    #[test]
    fn dps_only_firewall_drops_strangers() {
        let mut o = origin();
        let edge = Ipv4Addr::new(104, 16, 0, 1);
        o.set_firewall(FirewallPolicy::DpsOnly {
            allowed: [edge].into_iter().collect(),
        });
        assert!(
            o.handle(&req("www.example.com")).is_none(),
            "stranger dropped"
        );
        let mut from_edge = req("www.example.com");
        from_edge.src = edge;
        assert!(o.handle(&from_edge).unwrap().is_ok());
        assert_eq!(o.requests_served(), 1);
    }

    #[test]
    fn unhost_removes_site() {
        let mut o = origin();
        assert!(o.unhost_site("www.example.com").is_some());
        assert_eq!(
            o.handle(&req("www.example.com")).unwrap().status,
            HttpStatus::NotFound
        );
    }

    #[test]
    fn dynamic_meta_differs_across_requests() {
        let mut o = origin();
        o.site_mut("www.example.com")
            .unwrap()
            .add_dynamic_meta("visitor-id");
        let a = o.handle(&req("www.example.com")).unwrap();
        let b = o.handle(&req("www.example.com")).unwrap();
        assert_ne!(
            a.document.unwrap().meta["visitor-id"],
            b.document.unwrap().meta["visitor-id"]
        );
    }

    #[test]
    fn firewall_allows_helper() {
        assert!(FirewallPolicy::Open.allows(Ipv4Addr::new(1, 1, 1, 1)));
        let policy = FirewallPolicy::DpsOnly {
            allowed: HashSet::new(),
        };
        assert!(!policy.allows(Ipv4Addr::new(1, 1, 1, 1)));
    }
}
