//! The reproduction harness: renders every table and figure of the paper's
//! evaluation from a [`StudyReport`], side by side with the published
//! values.
//!
//! Every figure derivable from a sub-report has a `render_*_<subreport>`
//! variant taking just that sub-report, so the live study's output and a
//! query plan's output (an [`AdoptionReport`] from
//! `remnant::query::AdoptionPlan`, say) render through the identical code
//! path — the byte-identity the legacy-vs-query differential tests pin.
//! The `StudyReport`-taking functions delegate to them.
//!
//! Counts depend on population size; each rendered count is accompanied by
//! a value linearly rescaled to the paper's 1M-site universe so shapes can
//! be compared directly (`EXPERIMENTS.md` records a full run).

pub mod perf;

use std::path::PathBuf;

use remnant::core::error::ConfigFieldError;
use remnant::core::report::{percent, FigureBuilder, TextTable};
use remnant::core::residual::ExposureTracker;
use remnant::core::study::{
    vantage_catchment, AdoptionReport, BehaviorReport, CollectionMode, PaperStudy, PauseReport,
    ResidualReport, StudyConfig, StudyReport, UnchangedReport,
};
use remnant::core::{ObsReport, RoundProgress, SpillConfig, StudyService};
use remnant::provider::{ProviderId, ReroutingMethod};
use remnant::query::funnel_rows;
use remnant::world::{BehaviorKind, World, WorldConfig};

/// Parameters of one reproduction run.
#[derive(Clone, Debug)]
pub struct ReproConfig {
    /// Website population (paper: 1,000,000).
    pub population: usize,
    /// Study length in weeks (paper: 6).
    pub weeks: u32,
    /// Root seed.
    pub seed: u64,
    /// Exact 24h intervals instead of the paper's uneven 20–30h ones.
    pub even_intervals: bool,
    /// Worker threads for the sharded sweeps. Output is bit-identical for
    /// every value; only wall time changes.
    pub workers: usize,
    /// How daily rounds resolve the target list. Output is bit-identical
    /// for both modes; `Delta` reuses unchanged shards across rounds.
    pub collection_mode: CollectionMode,
    /// Spill each round's records to binary snapshot files under this
    /// directory instead of holding every block resident. Output is
    /// bit-identical with or without spilling; only peak memory changes.
    pub spill_dir: Option<PathBuf>,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            population: 100_000,
            weeks: 6,
            seed: 42,
            even_intervals: false,
            workers: 1,
            collection_mode: CollectionMode::Full,
            spill_dir: None,
        }
    }
}

impl ReproConfig {
    /// Scale factor from this run's population to the paper's 1M.
    pub fn to_paper_scale(&self) -> f64 {
        1_000_000.0 / self.population as f64
    }

    /// A builder starting from the defaults, with validated setters.
    ///
    /// Like [`StudyConfig::builder`], rejected values name the field, the
    /// value, and the reason.
    pub fn builder() -> ReproConfigBuilder {
        ReproConfigBuilder {
            config: ReproConfig::default(),
        }
    }
}

/// Builder for [`ReproConfig`] — see [`ReproConfig::builder`].
#[derive(Clone, Debug)]
pub struct ReproConfigBuilder {
    config: ReproConfig,
}

impl ReproConfigBuilder {
    /// Website population.
    pub fn population(mut self, population: usize) -> Self {
        self.config.population = population;
        self
    }

    /// Study length in weeks.
    pub fn weeks(mut self, weeks: u32) -> Self {
        self.config.weeks = weeks;
        self
    }

    /// Root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Exact 24h intervals instead of the paper's uneven 20–30h ones.
    pub fn even_intervals(mut self, even: bool) -> Self {
        self.config.even_intervals = even;
        self
    }

    /// Worker threads for the sharded sweeps.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// How daily rounds resolve the target list.
    pub fn collection_mode(mut self, mode: CollectionMode) -> Self {
        self.config.collection_mode = mode;
        self
    }

    /// Spill rounds to binary snapshot files under this directory.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.spill_dir = Some(dir.into());
        self
    }

    /// Validates and returns the configuration, naming the first rejected
    /// field on failure.
    pub fn build(self) -> Result<ReproConfig, ConfigFieldError> {
        let config = self.config;
        config.validate()?;
        Ok(config)
    }
}

impl ReproConfig {
    /// Validates every field, naming the first rejected one — the same
    /// check [`ReproConfigBuilder::build`] applies, callable on a config
    /// assembled by hand (the `repro` CLI's flag loop).
    pub fn validate(&self) -> Result<(), ConfigFieldError> {
        if self.population == 0 {
            return Err(ConfigFieldError::new(
                "population",
                self.population,
                "an empty target list cannot be studied",
            ));
        }
        if self.population > 1_000_000 {
            return Err(ConfigFieldError::new(
                "population",
                self.population,
                "the paper's universe tops out at 1,000,000 sites",
            ));
        }
        // Weeks/workers share StudyConfig's bounds; validate through it so
        // the two builders can never drift apart.
        StudyConfig::builder()
            .weeks(self.weeks)
            .workers(self.workers)
            .build()?;
        if let Some(dir) = &self.spill_dir {
            validate_spill_dir(dir)?;
        }
        Ok(())
    }
}

/// Probes that `dir` exists (creating it if needed) and accepts writes,
/// so a bad `--spill-dir` fails up front with a named error instead of
/// panicking mid-campaign.
fn validate_spill_dir(dir: &std::path::Path) -> Result<(), ConfigFieldError> {
    if std::fs::create_dir_all(dir).is_err() {
        return Err(ConfigFieldError::new(
            "spill_dir",
            dir.display(),
            "spill directory cannot be created",
        ));
    }
    let probe = dir.join(".remnant-spill-probe");
    match std::fs::write(&probe, b"probe") {
        Ok(()) => {
            let _ = std::fs::remove_file(&probe);
            Ok(())
        }
        Err(_) => Err(ConfigFieldError::new(
            "spill_dir",
            dir.display(),
            "spill directory is not writable",
        )),
    }
}

/// Builds the world and runs the full study.
pub fn run_study(config: &ReproConfig) -> (World, StudyReport) {
    let mut world = World::generate(WorldConfig::new(config.population, config.seed));
    let report = PaperStudy::new(study_config(config, config.seed, config.spill_dir.clone()))
        .run(&mut world);
    (world, report)
}

/// The [`StudyConfig`] a [`ReproConfig`] maps to, with an explicit seed
/// and spill directory so batch jobs can diverge per campaign.
fn study_config(config: &ReproConfig, seed: u64, spill_dir: Option<PathBuf>) -> StudyConfig {
    StudyConfig {
        weeks: config.weeks,
        seed,
        uneven_intervals: !config.even_intervals,
        workers: config.workers,
        collection_mode: config.collection_mode,
        spill: spill_dir.map(SpillConfig::new),
        ..StudyConfig::default()
    }
}

/// Generates one shared world and runs `jobs` concurrent campaigns over
/// it through a [`StudyService`], streaming every session's per-round
/// [`RoundProgress`] (interleaved in completion order) into
/// `on_progress`. Job `i` runs with seed `config.seed + i` and — when a
/// spill directory is set — its own `job-<i>` subdirectory, since two
/// sessions must never spill into one directory. Reports come back in
/// job order.
pub fn run_study_batch(
    config: &ReproConfig,
    jobs: usize,
    on_progress: impl FnMut(RoundProgress),
) -> Result<Vec<StudyReport>, ConfigFieldError> {
    let configs: Vec<StudyConfig> = (0..jobs)
        .map(|job| {
            study_config(
                config,
                config.seed + job as u64,
                config
                    .spill_dir
                    .as_ref()
                    .map(|dir| dir.join(format!("job-{job}"))),
            )
        })
        .collect();
    StudyService::validate_batch(&configs)?;
    for study in &configs {
        if let Some(spill) = &study.spill {
            validate_spill_dir(&spill.dir)?;
        }
    }
    let world = World::generate(WorldConfig::new(config.population, config.seed));
    let service = StudyService::new(world, config.workers.max(1));
    service.run_campaigns(&configs, on_progress)
}

/// One summary row per batch campaign: the at-a-glance numbers that
/// differ (or provably must not) across concurrently hosted sessions.
pub fn render_study_batch(config: &ReproConfig, reports: &[StudyReport]) -> String {
    let mut table = TextTable::new([
        "Job",
        "Seed",
        "Days",
        "Adoption",
        "Mean interval",
        "CF always-exposed",
    ]);
    for (job, report) in reports.iter().enumerate() {
        let intervals = &report.behaviors().interval_hours;
        let mean_interval = if intervals.is_empty() {
            0.0
        } else {
            intervals.iter().sum::<u64>() as f64 / intervals.len() as f64
        };
        table.row([
            job.to_string(),
            (config.seed + job as u64).to_string(),
            report.adoption().days_observed.to_string(),
            percent(report.adoption().overall_rate),
            format!("{mean_interval:.1}h"),
            report
                .residual()
                .cloudflare
                .exposure
                .always_exposed()
                .to_string(),
        ]);
    }
    FigureBuilder::new()
        .line(format!(
            "Multi-tenant batch: {} campaigns, one world, one worker pool",
            reports.len()
        ))
        .table(&table)
        .finish()
}

/// Table II: the provider catalog (static fingerprint data).
pub fn render_table2() -> String {
    let mut table = TextTable::new([
        "Provider",
        "CNAME substrings",
        "NS substrings",
        "AS numbers",
        "Rerouting",
    ]);
    for provider in ProviderId::ALL {
        let info = provider.info();
        table.row([
            info.name.to_owned(),
            info.cname_substrings.join(" "),
            info.ns_substrings.join(" "),
            info.asns
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(" "),
            info.rerouting
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(" / "),
        ]);
    }
    format!("TABLE II: DPS provider information\n{table}")
}

/// Fig 2 from the adoption sub-report alone — the live study's
/// [`StudyReport::adoption`] and a query-layer `AdoptionPlan` output
/// render identically through here.
pub fn render_fig2_adoption(config: &ReproConfig, adoption: &AdoptionReport) -> String {
    let mut table = TextTable::new(["Provider", "Avg adopted/day", "Scaled to 1M", "Share"]);
    let total: f64 = adoption.avg_by_provider.iter().map(|(_, n)| n).sum();
    let mut rows: Vec<(ProviderId, f64)> = adoption.avg_by_provider.clone();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("counts are finite"));
    for (provider, count) in rows {
        table.row([
            provider.to_string(),
            format!("{count:.0}"),
            format!("{:.0}", count * config.to_paper_scale()),
            percent(count / total.max(1.0)),
        ]);
    }
    FigureBuilder::new()
        .line(
            "FIG 2: DPS adoption breakdown (paper: 14.85% of 1M adopt; 38.98% of top 10k; \
             Cloudflare dominates)",
        )
        .line(format!(
            "measured: overall {} | top band {} | growth {} -> {}",
            percent(adoption.overall_rate),
            percent(adoption.top_band_rate),
            percent(adoption.first_day_rate),
            percent(adoption.last_day_rate),
        ))
        .table(&table)
        .finish()
}

/// Fig 2: adoption breakdown per provider.
pub fn render_fig2(config: &ReproConfig, report: &StudyReport) -> String {
    render_fig2_adoption(config, report.adoption())
}

/// Fig 3 from the behavior sub-report alone (live study or `BehaviorPlan`).
pub fn render_fig3_behaviors(config: &ReproConfig, behaviors: &BehaviorReport) -> String {
    let paper = [
        (BehaviorKind::Join, 195.0),
        (BehaviorKind::Leave, 145.0),
        (BehaviorKind::Pause, 87.0),
        (BehaviorKind::Resume, 62.0),
        (BehaviorKind::Switch, 21.0),
    ];
    let mut table = TextTable::new(["Behavior", "Avg/day", "Scaled to 1M", "Paper avg/day"]);
    for (kind, paper_avg) in paper {
        let avg = behaviors.daily_average(kind);
        table.row([
            kind.to_string(),
            format!("{avg:.1}"),
            format!("{:.0}", avg * config.to_paper_scale()),
            format!("{paper_avg:.0}"),
        ]);
    }
    let mut figure = FigureBuilder::new()
        .line("FIG 3: DPS behaviors per day")
        .table(&table)
        .blank();
    for (_, series) in &behaviors.series {
        figure = figure.series(series);
    }
    figure.finish()
}

/// Fig 3: daily behavior counts.
pub fn render_fig3(config: &ReproConfig, report: &StudyReport) -> String {
    render_fig3_behaviors(config, report.behaviors())
}

/// Fig 4 from the behavior sub-report alone (live study or `BehaviorPlan`).
pub fn render_fig4_behaviors(behaviors: &BehaviorReport) -> String {
    let mut table = TextTable::new(["From", "Behavior", "To"]);
    for (from, kind, to) in remnant::core::fsm::transition_table() {
        table.row([from, kind.to_string(), to]);
    }
    FigureBuilder::new()
        .line("FIG 4: DPS finite state machine (P1=Cloudflare, P2=Incapsula as exemplars)")
        .table(&table)
        .blank()
        .line(format!(
            "observed behavior sequences violating the FSM: {}",
            behaviors.fsm_violations
        ))
        .finish()
}

/// Fig 4: the FSM transition table plus the study's violation count.
pub fn render_fig4(report: &StudyReport) -> String {
    render_fig4_behaviors(report.behaviors())
}

/// Fig 5 from the pause sub-report alone (live study or `PausePlan`).
pub fn render_fig5_pauses(pauses: &PauseReport) -> String {
    FigureBuilder::new()
        .line("FIG 5: CDF of pause periods (paper: <50% resume within a day; ~30% exceed 5 days)")
        .cdf("Overall", &pauses.overall, 14)
        .cdf("Cloudflare", &pauses.cloudflare, 14)
        .cdf("Incapsula", &pauses.incapsula, 14)
        .line(format!(
            "measured: <=1 day {} | >5 days {}",
            percent(pauses.overall.fraction_le(1.0)),
            percent(pauses.overall.fraction_gt(5.0)),
        ))
        .finish()
}

/// Fig 5: pause-period CDFs.
pub fn render_fig5(report: &StudyReport) -> String {
    render_fig5_pauses(report.pauses())
}

/// Fig 6 from the adoption sub-report alone (live study or `AdoptionPlan`).
pub fn render_fig6_adoption(adoption: &AdoptionReport) -> String {
    let mut table = TextTable::new(["Rerouting", "Measured", "Paper"]);
    table.row([
        ReroutingMethod::Ns.to_string(),
        percent(adoption.cloudflare_ns_share),
        "89.95%".to_owned(),
    ]);
    table.row([
        ReroutingMethod::Cname.to_string(),
        percent(adoption.cloudflare_cname_share),
        "10.05%".to_owned(),
    ]);
    FigureBuilder::new()
        .line("FIG 6: Cloudflare adoption breakdown by rerouting")
        .table(&table)
        .finish()
}

/// Fig 6: Cloudflare rerouting split.
pub fn render_fig6(report: &StudyReport) -> String {
    render_fig6_adoption(report.adoption())
}

/// Fig 7: vantage-point catchment over the provider's anycast fleet.
pub fn render_fig7(world: &World) -> String {
    let mut table = TextTable::new(["Vantage point", "Cloudflare PoP hit"]);
    let catchment = vantage_catchment(world, ProviderId::Cloudflare);
    let distinct: std::collections::BTreeSet<&str> =
        catchment.iter().map(|(_, p)| p.as_str()).collect();
    for (region, pop) in &catchment {
        table.row([region.to_string(), pop.clone()]);
    }
    format!(
        "FIG 7: five vantage points spread load over {} distinct PoPs \
         (paper: 5 VPs -> 5 PoPs of 100+)\n{table}",
        distinct.len()
    )
}

/// Fig 8 from the residual sub-report alone.
pub fn render_fig8_residual(residual: &ResidualReport) -> String {
    let mut table = TextTable::new([
        "Provider",
        "Retrieved",
        "After IP-matching",
        "Hidden (A-matching)",
        "Verified (HTML)",
    ]);
    for weekly in [
        residual.cloudflare.weekly.last(),
        residual.incapsula.weekly.last(),
    ]
    .into_iter()
    .flatten()
    {
        table.row([
            weekly.provider.to_string(),
            weekly.retrieved.to_string(),
            weekly.after_ip_matching.to_string(),
            weekly.hidden.len().to_string(),
            weekly.verified.len().to_string(),
        ]);
    }
    FigureBuilder::new()
        .line("FIG 8: filtering procedure (final week's funnel)")
        .table(&table)
        .finish()
}

/// Fig 8: the filtering funnel of the final week.
pub fn render_fig8(report: &StudyReport) -> String {
    render_fig8_residual(report.residual())
}

/// Fig 8 rebuilt from the recorded metrics alone.
///
/// The funnel is the query layer's [`funnel_rows`] fold over the
/// `filter.*` counters in an [`ObsReport`] — no `WeeklyScanReport` is
/// consulted — so the attrition table is reproducible from a
/// `repro --metrics out.json` snapshot long after the run. The table body
/// is identical to [`render_fig8`]'s.
pub fn render_fig8_from_obs(obs: &ObsReport) -> String {
    let mut table = TextTable::new([
        "Provider",
        "Retrieved",
        "After IP-matching",
        "Hidden (A-matching)",
        "Verified (HTML)",
    ]);
    for row in funnel_rows(obs) {
        table.row([
            row.provider,
            row.retrieved.to_string(),
            row.after_ip_matching.to_string(),
            row.hidden.to_string(),
            row.verified.to_string(),
        ]);
    }
    FigureBuilder::new()
        .line("FIG 8: filtering procedure (final week's funnel, rebuilt from metrics)")
        .table(&table)
        .finish()
}

/// The residual-scan timeline re-derived from campaign artifacts alone —
/// the query layer's `ResidualScanPlan` output (Table VI / Fig 8 shape,
/// one row per scan week per provider).
///
/// The scan populations come from the persisted rounds; the funnel
/// columns come from recorded `filter.*` metrics and render as zero when
/// the plan ran without an [`ObsReport`].
pub fn render_residual_scan(
    config: &ReproConfig,
    scan: &remnant::query::ResidualScanReport,
) -> String {
    let mut table = TextTable::new([
        "Provider",
        "Week",
        "Day",
        "Scan population",
        "Scaled to 1M",
        "Retrieved",
        "After IP-matching",
        "Hidden",
        "Verified",
    ]);
    for provider in &scan.providers {
        for week in &provider.weekly {
            table.row([
                provider.provider.to_string(),
                (week.week + 1).to_string(),
                week.day.to_string(),
                week.adopted.to_string(),
                format!("{:.0}", week.adopted as f64 * config.to_paper_scale()),
                week.retrieved.to_string(),
                week.after_ip_matching.to_string(),
                week.hidden.to_string(),
                week.verified.to_string(),
            ]);
        }
    }
    FigureBuilder::new()
        .line(
            "TABLE VI / FIG 8 timeline: weekly residual scans re-derived from \
             persisted rounds plus recorded metrics",
        )
        .table(&table)
        .finish()
}

/// Fig 9 from the Cloudflare exposure tracker alone — the live study's
/// tracker and a query-side `ExposureTracker::fold` over the persisted
/// weekly reports render identically through here.
pub fn render_fig9_exposure(config: &ReproConfig, cf: &ExposureTracker) -> String {
    let newly = cf.newly_exposed_per_week();
    let avg_new: f64 = if newly.len() > 1 {
        newly[1..].iter().sum::<usize>() as f64 / (newly.len() - 1) as f64
    } else {
        0.0
    };
    let mut table = TextTable::new(["Week", "Hidden", "Verified", "Newly exposed"]);
    for (week, ((hidden, verified, _), new)) in cf.weekly_rows().iter().zip(&newly).enumerate() {
        table.row([
            (week + 1).to_string(),
            hidden.to_string(),
            verified.to_string(),
            new.to_string(),
        ]);
    }
    format!(
        "FIG 9: exposure observations, Cloudflare (paper: ~114 new/week; 139 exposed all \
         weeks; 388 bounded)\n{table}\
         measured: avg newly exposed/week {avg_new:.1} (scaled to 1M: {:.0})\n\
         always exposed: {} (scaled: {:.0}) | bounded exposures: {} (scaled: {:.0})\n",
        avg_new * config.to_paper_scale(),
        cf.always_exposed(),
        cf.always_exposed() as f64 * config.to_paper_scale(),
        cf.bounded_exposures(),
        cf.bounded_exposures() as f64 * config.to_paper_scale(),
    )
}

/// Fig 9: exposure observations across weeks.
pub fn render_fig9(config: &ReproConfig, report: &StudyReport) -> String {
    render_fig9_exposure(config, &report.residual().cloudflare.exposure)
}

/// Table V from the unchanged sub-report alone.
pub fn render_table5_unchanged(config: &ReproConfig, unchanged: &UnchangedReport) -> String {
    let paper: &[(ProviderId, f64)] = &[
        (ProviderId::Cloudflare, 0.595),
        (ProviderId::Akamai, 0.580),
        (ProviderId::Cloudfront, 0.350),
        (ProviderId::Incapsula, 0.634),
        (ProviderId::Fastly, 0.571),
        (ProviderId::Edgecast, 0.667),
        (ProviderId::CdNetworks, 0.739),
        (ProviderId::DosArrest, 0.418),
        (ProviderId::Limelight, 0.667),
        (ProviderId::Stackpath, 0.725),
        (ProviderId::Cdn77, 0.938),
    ];
    let mut table = TextTable::new([
        "Provider",
        "Join&Resume",
        "Scaled to 1M",
        "IP unchanged",
        "Measured %",
        "Paper %",
    ]);
    for (provider, paper_rate) in paper {
        let row = unchanged.rows.iter().find(|(p, ..)| p == provider);
        let (events, unchanged, rate) = row.map_or((0, 0, f64::NAN), |(_, e, u, r)| (*e, *u, *r));
        table.row([
            provider.to_string(),
            events.to_string(),
            format!("{:.0}", events as f64 * config.to_paper_scale()),
            unchanged.to_string(),
            if rate.is_nan() {
                "-".to_owned()
            } else {
                percent(rate)
            },
            percent(*paper_rate),
        ]);
    }
    let total = unchanged.total;
    table.row([
        "Total".to_owned(),
        total.events.to_string(),
        format!("{:.0}", total.events as f64 * config.to_paper_scale()),
        total.unchanged.to_string(),
        percent(total.rate().unwrap_or(0.0)),
        "58.6%".to_owned(),
    ]);
    format!("TABLE V: origin IP unchanged rate after JOIN/RESUME\n{table}")
}

/// Table V: origin-IP unchanged rates.
pub fn render_table5(config: &ReproConfig, report: &StudyReport) -> String {
    render_table5_unchanged(config, report.unchanged())
}

/// Table VI from the residual sub-report alone.
pub fn render_table6_residual(config: &ReproConfig, residual: &ResidualReport) -> String {
    let mut table = TextTable::new([
        "Scan",
        "Hidden",
        "Scaled to 1M",
        "Verified origins",
        "Measured %",
        "Paper",
    ]);
    let cf = &residual.cloudflare.exposure;
    for (week, (hidden, verified, pct)) in cf.weekly_rows().iter().enumerate() {
        table.row([
            format!("Cloudflare week {}", week + 1),
            hidden.to_string(),
            format!("{:.0}", *hidden as f64 * config.to_paper_scale()),
            verified.to_string(),
            percent(*pct),
            "~1,500 hidden, ~24%".to_owned(),
        ]);
    }
    table.row([
        "Cloudflare TOTAL".to_owned(),
        cf.total_hidden().to_string(),
        format!("{:.0}", cf.total_hidden() as f64 * config.to_paper_scale()),
        cf.total_verified().to_string(),
        percent(cf.total_verified_rate().unwrap_or(0.0)),
        "3,504 hidden, 24.8%".to_owned(),
    ]);
    let inc = &residual.incapsula.exposure;
    table.row([
        "Incapsula TOTAL".to_owned(),
        inc.total_hidden().to_string(),
        format!("{:.0}", inc.total_hidden() as f64 * config.to_paper_scale()),
        inc.total_verified().to_string(),
        percent(inc.total_verified_rate().unwrap_or(0.0)),
        "42 hidden, 69.0%".to_owned(),
    ]);
    format!(
        "TABLE VI: residual resolution in the wild\n\
         (fleet harvested: {} nameservers; paper: 391. tokens harvested: {})\n{table}",
        residual.fleet_size, residual.harvested_tokens
    )
}

/// Table VI: residual resolution in the wild.
pub fn render_table6(config: &ReproConfig, report: &StudyReport) -> String {
    render_table6_residual(config, report.residual())
}

/// Fig 1: the end-to-end threat model demo (delegates to the attack crate).
pub fn render_fig1(seed: u64) -> String {
    use remnant::attack::bypass::RemnantProbe;
    use remnant::attack::{Botnet, ResidualBypassAttack};
    use remnant::provider::ServicePlan;
    use remnant::world::SiteState;

    let mut world = World::generate(WorldConfig::new(5_000, seed));
    let victim = world
        .sites()
        .iter()
        .find(|s| {
            !s.firewalled
                && !s.dynamic_meta
                && matches!(
                    s.state,
                    SiteState::Dps {
                        provider: ProviderId::Cloudflare,
                        rerouting: ReroutingMethod::Ns,
                        paused: false,
                        ..
                    }
                )
        })
        .expect("victim exists")
        .clone();
    world.force_switch(
        victim.id,
        ProviderId::Incapsula,
        ReroutingMethod::Cname,
        ServicePlan::Pro,
        true,
    );
    world.step_days(3);
    let mut adversary = ResidualBypassAttack::new(&world, Botnet::mirai_class());
    let report = adversary.execute(
        &mut world,
        &victim.www,
        ProviderId::Cloudflare,
        RemnantProbe::DirectNsQuery,
    );
    format!(
        "FIG 1: threat model end to end\n\
         victim {} behind a new DPS after switching\n\
         public address : {:?}\n\
         frontal attack : {}\n\
         remnant leak   : {:?} (verified: {})\n\
         bypass attack  : {}\n\
         => {}\n",
        victim.www,
        report.public_address,
        report
            .frontal_attack
            .as_ref()
            .map_or("n/a".to_owned(), ToString::to_string),
        report.leaked_address,
        report.leak_verified,
        report
            .bypass_attack
            .as_ref()
            .map_or("n/a".to_owned(), ToString::to_string),
        report
    )
}

/// Table I companion: the classic origin-exposure vectors measured on the
/// same population, with residual resolution alongside for comparison.
pub fn render_table1(config: &ReproConfig) -> String {
    use remnant::core::collector::{RecordCollector, Target};
    use remnant::core::vectors::{ExposureVector, PassiveDnsDb, VectorScanner};
    use remnant::core::{BehaviorDetector, SCANNER_SOURCE};
    use remnant::net::Region;

    let mut world = World::generate(WorldConfig::new(config.population.min(20_000), config.seed));
    let targets: Vec<Target> = world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect();
    let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
    let mut history = PassiveDnsDb::new();
    // Two weeks of daily observation builds the IP-history database and
    // lets joins/pauses deposit origins into it.
    let mut last = None;
    for day in 0..14 {
        let snapshot = collector.collect(&mut world, &targets, day);
        history.feed(&snapshot);
        last = Some(snapshot);
        world.step_hours(24);
    }
    let classes = BehaviorDetector::new().classify_snapshot(&last.expect("at least one round ran"));
    let mut scanner = VectorScanner::new(world.clock(), Region::Ashburn, SCANNER_SOURCE);
    let report = scanner.scan(&mut world, &targets, &classes, &history);

    let mut table = TextTable::new([
        "Vector (Table I)",
        "Sites w/ candidates",
        "Verified origins",
    ]);
    for vector in ExposureVector::ALL {
        let tally = report.tally(vector);
        table.row([
            vector.to_string(),
            tally.candidates.to_string(),
            tally.verified.to_string(),
        ]);
    }
    format!(
        "TABLE I companion: classic origin-exposure vectors on {} protected sites\n{table}\
         exposed through >=1 implemented vector: {} ({})\n\
         (Vissers et al. [10] report >70% across all eight vectors; three are\n\
         implemented here — IP history additionally captures the paper's\n\
         'Temporary Exposure' vector via recorded pause windows)\n",
        report.protected_sites,
        report.exposed_sites,
        percent(report.exposed_fraction()),
    )
}

/// Ablations over the provider-side design choices behind residual
/// resolution: how the purge window, the answer policy, and the customers'
/// notification discipline shape the exposed population.
pub fn render_ablation(config: &ReproConfig) -> String {
    use remnant::core::collector::{RecordCollector, Target};
    use remnant::core::residual::{CloudflareScanner, FilterPipeline};
    use remnant::core::SCANNER_SOURCE;
    use remnant::net::Region;
    use remnant::provider::{ProviderId, ResidualPolicy, ServicePlan};
    use remnant::sim::SimDuration;

    let population = config.population.min(15_000);

    /// One steady-state scan of Cloudflare under a fully built world.
    fn scan(world: &mut World) -> (usize, usize) {
        let targets: Vec<Target> = world
            .sites()
            .iter()
            .map(|s| (s.apex.clone(), s.www.clone()))
            .collect();
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        let snapshot = collector.collect(world, &targets, 0);
        let mut scanner = CloudflareScanner::new(world.clock(), "cloudflare");
        scanner.harvest_fleet(world, &snapshot);
        let raw = scanner.scan(world, &targets, 0);
        let mut pipeline = FilterPipeline::new(world.clock(), Region::Ashburn, SCANNER_SOURCE);
        let report = pipeline.run(world, ProviderId::Cloudflare, 0, &raw, &targets);
        (report.hidden.len(), report.verified.len())
    }

    let mut out = String::new();

    // Ablation 1: the purge window. The world's churn runs under each
    // policy from generation (policy applied before warmup via rebuild).
    let mut table = TextTable::new([
        "Purge window (all plans)",
        "Hidden records",
        "Verified origins",
    ]);
    for (label, window) in [
        ("1 week", Some(SimDuration::weeks(1))),
        ("4 weeks (observed, free plan)", Some(SimDuration::weeks(4))),
        ("12 weeks", Some(SimDuration::weeks(12))),
        ("never", None),
    ] {
        let mut world = World::generate(WorldConfig::new(population, config.seed));
        let mut policy = ResidualPolicy::cloudflare_observed();
        for plan in ServicePlan::ALL {
            policy.set_purge_after(plan, window);
        }
        world
            .provider_mut(ProviderId::Cloudflare)
            .set_policy(policy);
        world.step_days(7 * 14); // new steady state under the policy
        let (hidden, verified) = scan(&mut world);
        table.row([label.to_owned(), hidden.to_string(), verified.to_string()]);
    }
    out.push_str(&format!(
        "ABLATION 1: remnant purge window vs exposure ({population} sites, 14 weeks of churn)\n{table}\n"
    ));

    // Ablation 2: the answer policy (Sec VI-B-1 countermeasures).
    let mut table = TextTable::new(["Answer policy", "Hidden records", "Verified origins"]);
    for (label, policy) in [
        (
            "answer (vulnerable, observed)",
            ResidualPolicy::cloudflare_observed(),
        ),
        ("deny after termination", ResidualPolicy::deny()),
        (
            "revalidate against public DNS",
            ResidualPolicy::countermeasure_revalidate(ResidualPolicy::cloudflare_observed()),
        ),
    ] {
        let mut world = World::generate(WorldConfig::new(population, config.seed));
        world
            .provider_mut(ProviderId::Cloudflare)
            .set_policy(policy);
        world.step_days(7 * 6);
        if world
            .provider(ProviderId::Cloudflare)
            .policy()
            .revalidate_against_public_dns
        {
            // The provider re-resolves its recently terminated customers.
            revalidate_cloudflare(&mut world);
        }
        let (hidden, verified) = scan(&mut world);
        table.row([label.to_owned(), hidden.to_string(), verified.to_string()]);
    }
    out.push_str(&format!(
        "ABLATION 2: provider answer policy (Sec VI-B-1)\n{table}\n"
    ));

    // Ablation 3: customer notification discipline.
    let mut table = TextTable::new([
        "Informed-leave probability",
        "Hidden records",
        "Verified origins",
    ]);
    for informed in [0.2, 0.6, 1.0] {
        let mut world_config = WorldConfig::new(population, config.seed);
        world_config.calibration.informed_leave_probability = informed;
        let mut world = World::generate(world_config);
        world.step_days(7 * 2);
        let (hidden, verified) = scan(&mut world);
        table.row([
            format!("{informed:.1}"),
            hidden.to_string(),
            verified.to_string(),
        ]);
    }
    out.push_str(&format!(
        "ABLATION 3: informed-termination rate vs exposure (footnotes 9/10)\n{table}\
         An *uninformed* leave keeps the edge answer in place (harmless); only\n\
         informed terminations flip the record to the origin — more polite\n\
         customers, more exposure.\n"
    ));
    out
}

/// Runs the Sec VI-B-1 revalidation sweep for Cloudflare in `world`.
fn revalidate_cloudflare(world: &mut World) {
    use remnant::dns::{RecordType, RecursiveResolver};
    use remnant::net::Region;
    use remnant::provider::ProviderId;

    let hosts: Vec<remnant::dns::DomainName> = world
        .sites()
        .iter()
        .filter(|s| {
            world
                .provider(ProviderId::Cloudflare)
                .residual(&s.apex)
                .is_some()
        })
        .map(|s| s.www.clone())
        .collect();
    let mut resolver = RecursiveResolver::new(world.clock(), Region::Ashburn);
    let mut lookups = Vec::with_capacity(hosts.len());
    for host in hosts {
        let addrs = resolver
            .resolve(world, &host, RecordType::A)
            .map(|r| r.addresses())
            .unwrap_or_default();
        lookups.push((host, addrs));
    }
    world
        .provider_mut(ProviderId::Cloudflare)
        .revalidate_residuals(|host| {
            lookups
                .iter()
                .find(|(h, _)| h == host)
                .map(|(_, a)| a.clone())
                .unwrap_or_default()
        });
}

/// Sec V-A.3: the purge probe.
pub fn render_purge(seed: u64) -> String {
    use remnant::core::residual::PurgeProbe;
    let mut world = World::generate(WorldConfig::new(3_000, seed));
    let result = PurgeProbe::default().run(&mut world);
    format!(
        "PURGE PROBE (Sec V-A.3): sign up free plan, terminate same day, probe weekly\n\
         purge observed at week: {:?} (paper: week 4, consistent across 3 trials)\n\
         consistent across trials: {}\n",
        result.purge_week,
        result.is_consistent()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (ReproConfig, World, StudyReport) {
        let config = ReproConfig {
            population: 2_000,
            weeks: 1,
            seed: 9,
            even_intervals: true,
            workers: 2,
            ..ReproConfig::default()
        };
        let (world, report) = run_study(&config);
        (config, world, report)
    }

    #[test]
    fn all_renderers_produce_output() {
        let (config, world, report) = tiny();
        for rendered in [
            render_table2(),
            render_fig2(&config, &report),
            render_fig3(&config, &report),
            render_fig4(&report),
            render_fig5(&report),
            render_fig6(&report),
            render_fig7(&world),
            render_fig8(&report),
            render_fig9(&config, &report),
            render_table5(&config, &report),
            render_table6(&config, &report),
        ] {
            assert!(rendered.len() > 40, "renderer produced: {rendered}");
        }
    }

    #[test]
    fn table2_lists_all_eleven() {
        let rendered = render_table2();
        for provider in ProviderId::ALL {
            assert!(rendered.contains(provider.name()), "{provider} missing");
        }
    }

    #[test]
    fn fig8_is_reproducible_from_metrics_alone() {
        let (_, _, report) = tiny();
        let from_report = render_fig8(&report);
        let from_obs = render_fig8_from_obs(report.obs());
        // Same table body: only the title line differs.
        let body = |s: &str| s.split_once('\n').map(|(_, rest)| rest.to_owned()).unwrap();
        assert_eq!(body(&from_obs), body(&from_report));
        assert!(from_obs.contains("Cloudflare"));
        assert!(from_obs.contains("Incapsula"));
    }

    #[test]
    fn builder_rejects_out_of_range_fields_by_name() {
        let config = ReproConfig::builder()
            .population(500)
            .weeks(2)
            .seed(7)
            .even_intervals(true)
            .workers(3)
            .build()
            .expect("in-range values build");
        assert_eq!(config.population, 500);
        assert_eq!(config.weeks, 2);
        assert_eq!(config.seed, 7);
        assert!(config.even_intervals);
        assert_eq!(config.workers, 3);

        let err = ReproConfig::builder().population(0).build().unwrap_err();
        assert_eq!(err.field, "population");
        let err = ReproConfig::builder()
            .population(2_000_000)
            .build()
            .unwrap_err();
        assert_eq!(err.field, "population");
        assert!(err.to_string().contains("2000000"));
        // Weeks/workers bounds come from StudyConfig's builder.
        let err = ReproConfig::builder().weeks(0).build().unwrap_err();
        assert_eq!(err.field, "weeks");
        let err = ReproConfig::builder().workers(4096).build().unwrap_err();
        assert_eq!(err.field, "workers");
    }

    #[test]
    fn builder_validates_spill_dir_by_name() {
        let dir = std::env::temp_dir().join("remnant-spill-dir-validate");
        let config = ReproConfig::builder()
            .spill_dir(&dir)
            .build()
            .expect("writable spill dir builds");
        assert_eq!(config.spill_dir.as_deref(), Some(dir.as_path()));
        assert!(dir.is_dir(), "validation creates the directory");
        let _ = std::fs::remove_dir_all(&dir);

        // A spill path under a regular file cannot be created.
        let file = std::env::temp_dir().join("remnant-spill-dir-file");
        std::fs::write(&file, b"x").expect("temp file writes");
        let err = ReproConfig::builder()
            .spill_dir(file.join("sub"))
            .build()
            .unwrap_err();
        assert_eq!(err.field, "spill_dir");
        assert!(err.to_string().contains("cannot be created"), "{err}");
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn scale_factor() {
        let config = ReproConfig {
            population: 100_000,
            ..ReproConfig::default()
        };
        assert_eq!(config.to_paper_scale(), 10.0);
    }
}
