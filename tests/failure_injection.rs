//! Failure injection: the measurement pipeline must degrade gracefully
//! under the conditions the paper reports — servers ignoring queries,
//! origins firewalled to DPS-only traffic, dynamic pages, dead hosts —
//! and the resolver substrate must survive unreachable infrastructure.

use remnant::core::collector::{RecordCollector, Target};
use remnant::core::residual::{CloudflareScanner, FilterPipeline};
use remnant::core::study::{PaperStudy, StudyConfig};
use remnant::core::SCANNER_SOURCE;
use remnant::dns::transport::{StaticTransport, ROOT_SERVER};
use remnant::dns::{
    DnsError, DomainName, RecordData, RecordType, RecursiveResolver, Registry, ResourceRecord, Ttl,
    Zone, ZoneServer,
};
use remnant::net::Region;
use remnant::provider::{ProviderId, ReroutingMethod, ServicePlan};
use remnant::sim::SimClock;
use remnant::world::{SiteState, World, WorldConfig};
use std::net::Ipv4Addr;

fn generate(seed: u64) -> World {
    World::generate(WorldConfig {
        population: 2_000,
        seed,
        warmup_days: 0,
        calibration: remnant::world::Calibration::paper(),
    })
}

fn targets(world: &World) -> Vec<Target> {
    world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect()
}

#[test]
fn resolver_survives_flapping_nameservers() {
    let clock = SimClock::new();
    let apex: DomainName = "flaky.com".parse().unwrap();
    let www = apex.prepend("www").unwrap();
    let ns1 = Ipv4Addr::new(10, 0, 0, 1);
    let ns2 = Ipv4Addr::new(10, 0, 0, 2);
    let mut registry = Registry::new();
    registry.delegate(
        apex.clone(),
        vec![
            ("ns1.flaky.com".parse().unwrap(), ns1),
            ("ns2.flaky.com".parse().unwrap(), ns2),
        ],
    );
    let mut zone = Zone::new(apex);
    zone.add(ResourceRecord::new(
        www.clone(),
        Ttl::secs(60),
        RecordData::A(Ipv4Addr::new(203, 0, 113, 5)),
    ));
    let mut transport = StaticTransport::new(registry);
    transport.add_server(ns1, ZoneServer::new(vec![zone.clone()]));
    transport.add_server(ns2, ZoneServer::new(vec![zone]));

    let mut resolver = RecursiveResolver::new(clock, Region::Oregon);
    // Primary dead: the resolver fails over to the secondary.
    transport.set_unreachable(ns1);
    let res = resolver
        .resolve(&mut transport, &www, RecordType::A)
        .unwrap();
    assert_eq!(res.addresses(), vec![Ipv4Addr::new(203, 0, 113, 5)]);

    // Both dead: a clean timeout error, not a hang or panic.
    transport.set_unreachable(ns2);
    resolver.purge_cache();
    let err = resolver
        .resolve(&mut transport, &www, RecordType::A)
        .unwrap_err();
    assert!(matches!(err, DnsError::Timeout { .. }));

    // Root dead too.
    transport.set_unreachable(ROOT_SERVER);
    let err = resolver
        .resolve(&mut transport, &www, RecordType::A)
        .unwrap_err();
    assert!(matches!(err, DnsError::Timeout { .. }));
}

#[test]
fn collector_records_empty_sites_instead_of_failing() {
    // A world where nothing exists for a probed name: the collector must
    // produce empty records, and classification must call it NONE.
    let mut world = generate(20);
    let mut fake_targets = targets(&world);
    fake_targets.push((
        "ghost-domain.org".parse().unwrap(),
        "www.ghost-domain.org".parse().unwrap(),
    ));
    let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
    let snapshot = collector.collect(&mut world, &fake_targets, 0);
    let ghost = snapshot.site(fake_targets.len() - 1).unwrap();
    assert!(ghost.is_empty());
    let detector = remnant::core::BehaviorDetector::new();
    let classes = detector.classify_snapshot(&snapshot);
    assert_eq!(
        classes.last().unwrap().status,
        remnant::core::DpsStatus::None
    );
}

#[test]
fn firewalled_and_dynamic_sites_reduce_verification_not_detection() {
    // Force three switches: a clean site, a firewalled one, a dynamic-meta
    // one. All three must appear as hidden records; only the clean one
    // verifies — the paper's lower-bound behavior (Sec IV-C.3).
    let mut world = generate(21);
    let clean = world
        .sites()
        .iter()
        .find(|s| {
            !s.firewalled
                && !s.dynamic_meta
                && matches!(
                    s.state,
                    SiteState::Dps {
                        provider: ProviderId::Cloudflare,
                        rerouting: ReroutingMethod::Ns,
                        paused: false,
                        ..
                    }
                )
        })
        .cloned();
    let firewalled = world
        .sites()
        .iter()
        .find(|s| {
            s.firewalled
                && matches!(
                    s.state,
                    SiteState::Dps {
                        provider: ProviderId::Cloudflare,
                        rerouting: ReroutingMethod::Ns,
                        paused: false,
                        ..
                    }
                )
        })
        .cloned();
    let dynamic = world
        .sites()
        .iter()
        .find(|s| {
            s.dynamic_meta
                && !s.firewalled
                && matches!(
                    s.state,
                    SiteState::Dps {
                        provider: ProviderId::Cloudflare,
                        rerouting: ReroutingMethod::Ns,
                        paused: false,
                        ..
                    }
                )
        })
        .cloned();

    let targets = targets(&world);
    let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
    let snapshot = collector.collect(&mut world, &targets, 0);
    let mut scanner = CloudflareScanner::new(world.clock(), "cloudflare");
    scanner.harvest_fleet(&mut world, &snapshot);

    let mut expectations = Vec::new();
    for (site, should_verify) in [(clean, true), (firewalled, false), (dynamic, false)] {
        let Some(site) = site else { continue };
        world.force_switch(
            site.id,
            ProviderId::Fastly,
            ReroutingMethod::Cname,
            ServicePlan::Pro,
            true,
        );
        expectations.push((site.id.0 as usize, should_verify));
    }
    assert!(!expectations.is_empty());
    world.step_days(1);

    let raw = scanner.scan(&mut world, &targets, 0);
    let mut pipeline = FilterPipeline::new(world.clock(), Region::Ashburn, SCANNER_SOURCE);
    let report = pipeline.run(&mut world, ProviderId::Cloudflare, 0, &raw, &targets);
    for (rank, should_verify) in expectations {
        assert!(
            report.hidden.iter().any(|h| h.rank == rank),
            "site {rank} must be hidden regardless of verification obstacles"
        );
        assert_eq!(
            report.verified.contains(&rank),
            should_verify,
            "verification expectation for site {rank}"
        );
    }
}

#[test]
fn study_survives_a_world_with_zero_adoption() {
    // Degenerate calibration: no DPS at all. Every stage must handle the
    // absence of providers, behaviors, and remnants.
    let mut calibration = remnant::world::Calibration::paper();
    calibration.adoption_overall = 0.0;
    calibration.adoption_top_band = 0.0;
    calibration.daily_join_per_million = 0.0;
    calibration.daily_leave_per_million = 0.0;
    calibration.daily_pause_per_million = 0.0;
    calibration.daily_switch_per_million = 0.0;
    let mut world = World::generate(WorldConfig {
        population: 500,
        seed: 22,
        warmup_days: 0,
        calibration,
    });
    let report = PaperStudy::new(StudyConfig {
        weeks: 1,
        uneven_intervals: false,
        ..StudyConfig::default()
    })
    .run(&mut world);
    assert_eq!(report.adoption().overall_rate, 0.0);
    assert_eq!(report.residual().fleet_size, 0, "nothing to harvest");
    assert_eq!(report.residual().cloudflare.exposure.total_hidden(), 0);
    assert_eq!(report.unchanged().total.events, 0);
}

#[test]
fn dark_sites_resolve_to_parking_and_never_verify() {
    let mut world = generate(23);
    let site = world
        .sites()
        .iter()
        .find(|s| {
            matches!(
                s.state,
                SiteState::Dps {
                    provider: ProviderId::Cloudflare,
                    rerouting: ReroutingMethod::Ns,
                    ..
                }
            )
        })
        .unwrap()
        .clone();
    // Leave informed, then manually take the site dark.
    world.force_leave(site.id, true);
    // Dark fate: simulate by leaving + the site body disappearing is the
    // world's job; here we emulate via dynamics' leave fate by checking a
    // ground-truth dark site if one exists after churn.
    world.step_days(7);
    let targets = targets(&world);
    let dark = world
        .sites()
        .iter()
        .find(|s| s.state == SiteState::Dark)
        .cloned();
    let Some(dark) = dark else { return };
    let mut resolver = RecursiveResolver::new(world.clock(), Region::London);
    let res = resolver
        .resolve(&mut world, &dark.www, RecordType::A)
        .unwrap();
    assert_eq!(
        res.addresses(),
        vec![remnant::world::world::PARKING_IP],
        "dark sites point at the parking service"
    );
    let _ = targets;
}
