//! Page-identity comparison — the paper's HTML verification predicate.
//!
//! "We then verify that if these two HTML files are from the same host by
//! comparing their titles and meta tags." (Sec IV-C.3)

use std::fmt;

use crate::page::HtmlDocument;

/// The outcome of comparing two documents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchVerdict {
    /// Titles and all meta tags agree — same host.
    Match,
    /// Titles differ.
    TitleMismatch,
    /// Titles agree but meta tags differ (includes dynamic-meta false
    /// negatives).
    MetaMismatch,
}

impl MatchVerdict {
    /// True for [`MatchVerdict::Match`].
    pub const fn is_match(self) -> bool {
        matches!(self, MatchVerdict::Match)
    }
}

impl fmt::Display for MatchVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MatchVerdict::Match => "match",
            MatchVerdict::TitleMismatch => "title mismatch",
            MatchVerdict::MetaMismatch => "meta mismatch",
        };
        f.write_str(s)
    }
}

/// Compares two documents by title and meta tags (both must agree exactly).
pub fn compare_pages(a: &HtmlDocument, b: &HtmlDocument) -> MatchVerdict {
    if a.title != b.title {
        MatchVerdict::TitleMismatch
    } else if a.meta != b.meta {
        MatchVerdict::MetaMismatch
    } else {
        MatchVerdict::Match
    }
}

/// Convenience predicate over [`compare_pages`].
pub fn pages_match(a: &HtmlDocument, b: &HtmlDocument) -> bool {
    compare_pages(a, b).is_match()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageTemplate;

    #[test]
    fn identical_templates_match() {
        let t = PageTemplate::generate("example.com", 1);
        assert_eq!(
            compare_pages(&t.render(1), &t.render(2)),
            MatchVerdict::Match
        );
    }

    #[test]
    fn different_sites_mismatch_on_title() {
        let a = PageTemplate::generate("alpha.com", 1).render(0);
        let b = PageTemplate::generate("beta.com", 1).render(0);
        assert_eq!(compare_pages(&a, &b), MatchVerdict::TitleMismatch);
    }

    #[test]
    fn dynamic_meta_causes_false_negative() {
        let mut t = PageTemplate::generate("example.com", 1);
        t.add_dynamic_meta("csrf");
        let a = t.render(1);
        let b = t.render(2);
        assert_eq!(compare_pages(&a, &b), MatchVerdict::MetaMismatch);
        assert!(!pages_match(&a, &b));
    }

    #[test]
    fn body_differences_are_ignored() {
        // The verifier only inspects title + meta, per the paper.
        let t = PageTemplate::generate("example.com", 1);
        let mut a = t.render(0);
        let b = t.render(0);
        a.raw.push_str("<!-- trailing junk -->");
        assert!(pages_match(&a, &b));
    }
}
