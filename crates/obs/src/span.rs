//! Stage timing on virtual time.
//!
//! A [`Span`] brackets a pipeline stage: it captures the virtual instant
//! at entry and, on exit, records the elapsed virtual duration into the
//! scope's `span_seconds` histogram (labeled by span name) and bumps a
//! `span.entered` counter. Because spans read [`SimTime`] — never a wall
//! clock — their measurements are part of the deterministic report.

use remnant_sim::SimTime;

use crate::metrics::DEFAULT_BOUNDS;
use crate::Obs;

/// Histogram name spans record into.
pub const SPAN_SECONDS: &str = "span_seconds";
/// Counter name bumped once per completed span.
pub const SPAN_ENTERED: &str = "span.entered";

/// An open timing span. Create with [`Span::enter`], close with
/// [`Span::exit`].
///
/// # Example
///
/// ```
/// use remnant_obs::{Obs, Span};
/// use remnant_sim::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let mut obs = Obs::new(clock.clone());
/// let span = Span::enter(&obs, "collect");
/// clock.advance(SimDuration::hours(2));
/// span.exit(&mut obs);
/// let hist = obs.metrics.histograms().next().unwrap().1;
/// assert_eq!(hist.sum(), 7200);
/// ```
#[derive(Debug)]
#[must_use = "a span only records when exited"]
pub struct Span {
    name: &'static str,
    started: SimTime,
}

impl Span {
    /// Opens a span named `name` at the scope's current virtual instant.
    pub fn enter(scope: &Obs, name: &'static str) -> Span {
        Span {
            name,
            started: scope.now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The virtual instant the span was opened.
    pub fn started(&self) -> SimTime {
        self.started
    }

    /// Closes the span, recording the elapsed virtual seconds.
    pub fn exit(self, scope: &mut Obs) {
        let elapsed = scope.now().since(self.started);
        let labels = [("span", self.name)];
        scope.metrics.observe_labeled_with(
            SPAN_SECONDS,
            &labels,
            DEFAULT_BOUNDS,
            elapsed.as_secs(),
        );
        scope.metrics.inc_labeled(SPAN_ENTERED, &labels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remnant_sim::{SimClock, SimDuration};

    #[test]
    fn span_records_virtual_elapsed_time() {
        let clock = SimClock::new();
        let mut obs = Obs::new(clock.clone());
        let day = Span::enter(&obs, "day");
        assert_eq!(day.name(), "day");
        assert_eq!(day.started(), SimTime::EPOCH);
        clock.advance(SimDuration::hours(25));
        day.exit(&mut obs);
        assert_eq!(
            obs.metrics
                .counter_labeled(SPAN_ENTERED, &[("span", "day")]),
            1
        );
        let report = obs.report();
        let key = crate::MetricKey::labeled(SPAN_SECONDS, &[("span", "day")]);
        let hist = report.histograms.get(&key).expect("span histogram");
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 25 * 3600);
    }

    #[test]
    fn nested_spans_record_independently() {
        let clock = SimClock::new();
        let mut obs = Obs::new(clock.clone());
        let outer = Span::enter(&obs, "outer");
        clock.advance(SimDuration::secs(10));
        let inner = Span::enter(&obs, "inner");
        clock.advance(SimDuration::secs(5));
        inner.exit(&mut obs);
        outer.exit(&mut obs);
        let key = |name| crate::MetricKey::labeled(SPAN_SECONDS, &[("span", name)]);
        let report = obs.report();
        assert_eq!(report.histograms[&key("inner")].sum(), 5);
        assert_eq!(report.histograms[&key("outer")].sum(), 15);
    }
}
