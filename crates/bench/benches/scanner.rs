//! Measurement-toolkit benchmarks: snapshot collection, fingerprint
//! matching, adoption classification, and behavior diffing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use remnant::core::adoption::Adoption;
use remnant::core::collector::{RecordCollector, Target};
use remnant::core::{BehaviorDetector, ProviderMatcher};
use remnant::net::Region;
use remnant::world::{World, WorldConfig};

fn bench_scanner(c: &mut Criterion) {
    let mut world = World::generate(WorldConfig {
        population: 2_000,
        seed: 2,
        warmup_days: 0,
        calibration: remnant::world::Calibration::paper(),
    });
    let targets: Vec<Target> = world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect();
    let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
    let snapshot = collector.collect(&mut world, &targets, 0);
    let detector = BehaviorDetector::new();
    let classes = detector.classify_snapshot(&snapshot);
    let matcher = ProviderMatcher::new();

    let mut group = c.benchmark_group("scanner");
    group.throughput(Throughput::Elements(targets.len() as u64));

    group.bench_function("collect_snapshot_2k_sites", |b| {
        let mut day = 1;
        b.iter(|| {
            day += 1;
            collector.collect(&mut world, &targets, day)
        });
    });

    group.bench_function("classify_snapshot_2k_sites", |b| {
        b.iter(|| detector.classify_snapshot(&snapshot));
    });

    group.bench_function("match_records_2k_sites", |b| {
        b.iter(|| {
            let mut matched = 0usize;
            for loaded in snapshot.blocks() {
                matched += loaded
                    .block
                    .sites()
                    .filter(|site| matcher.match_view(*site).a.is_some())
                    .count();
            }
            matched
        });
    });

    group.bench_function("diff_snapshots_2k_sites", |b| {
        b.iter(|| detector.diff(&classes, &classes));
    });

    group.bench_function("classify_one", |b| {
        let records = (0..snapshot.len())
            .filter_map(|rank| snapshot.site(rank))
            .find(|r| !r.is_empty())
            .expect("resolved site");
        b.iter(|| Adoption::classify(&matcher, &records));
    });

    group.finish();
}

criterion_group!(benches, bench_scanner);
criterion_main!(benches);
