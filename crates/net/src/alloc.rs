//! Deterministic IP address allocation from CIDR pools.
//!
//! Origins get addresses from generic hosting space; each provider's edge
//! servers and nameservers get addresses from the provider's announced
//! blocks (so A-matching can recognize them). Allocation is sequential and
//! deterministic, so a simulation re-run with the same seed assigns the same
//! addresses.

use std::net::Ipv4Addr;

use crate::cidr::Ipv4Cidr;
use crate::error::NetError;

/// A sequential allocator over one or more CIDR blocks.
///
/// Skips network (`.0`-style first) and broadcast (last) addresses of each
/// block for realism, unless the block is a /31 or /32.
///
/// # Example
///
/// ```
/// use remnant_net::IpAllocator;
///
/// let mut pool = IpAllocator::new("hosting", vec!["198.51.100.0/24".parse()?]);
/// let a = pool.allocate()?;
/// let b = pool.allocate()?;
/// assert_ne!(a, b);
/// assert_eq!(a, "198.51.100.1".parse::<std::net::Ipv4Addr>()?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IpAllocator {
    label: String,
    blocks: Vec<Ipv4Cidr>,
    /// Index of the block currently being drawn from.
    block_idx: usize,
    /// Next offset within the current block.
    offset: u64,
    allocated: u64,
}

impl IpAllocator {
    /// Creates an allocator drawing from `blocks` in order.
    pub fn new(label: impl Into<String>, blocks: Vec<Ipv4Cidr>) -> Self {
        IpAllocator {
            label: label.into(),
            blocks,
            block_idx: 0,
            offset: 0,
            allocated: 0,
        }
    }

    /// The allocator's label (used in exhaustion errors).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Total number of addresses handed out so far.
    pub const fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Total usable capacity across all blocks.
    pub fn capacity(&self) -> u64 {
        self.blocks.iter().map(usable).sum()
    }

    /// Allocates the next address.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PoolExhausted`] when every block is used up.
    pub fn allocate(&mut self) -> Result<Ipv4Addr, NetError> {
        loop {
            let block = self
                .blocks
                .get(self.block_idx)
                .ok_or_else(|| NetError::PoolExhausted {
                    pool: self.label.clone(),
                })?;
            let skip_edges = block.prefix_len() < 31;
            let first = u64::from(skip_edges);
            let end = block.size() - u64::from(skip_edges);
            let candidate = first + self.offset;
            if candidate < end {
                self.offset += 1;
                self.allocated += 1;
                return Ok(block.nth(candidate).expect("candidate < end <= block size"));
            }
            self.block_idx += 1;
            self.offset = 0;
        }
    }

    /// Allocates `n` addresses.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PoolExhausted`] if fewer than `n` remain; in that
    /// case no addresses are consumed beyond those already yielded into the
    /// returned error path (the allocator state is *not* rolled back, which
    /// is fine for the fail-fast construction paths that use this).
    pub fn allocate_n(&mut self, n: usize) -> Result<Vec<Ipv4Addr>, NetError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.allocate()?);
        }
        Ok(out)
    }
}

/// Usable addresses in a block after edge-skipping.
fn usable(block: &Ipv4Cidr) -> u64 {
    if block.prefix_len() >= 31 {
        block.size()
    } else {
        block.size() - 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().expect("test cidr")
    }

    #[test]
    fn skips_network_and_broadcast() {
        let mut pool = IpAllocator::new("p", vec![cidr("10.0.0.0/30")]);
        assert_eq!(pool.allocate().unwrap(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(pool.allocate().unwrap(), Ipv4Addr::new(10, 0, 0, 2));
        assert!(matches!(
            pool.allocate(),
            Err(NetError::PoolExhausted { .. })
        ));
        assert_eq!(pool.allocated(), 2);
    }

    #[test]
    fn slash_32_yields_its_single_host() {
        let mut pool = IpAllocator::new("host", vec![cidr("1.2.3.4/32")]);
        assert_eq!(pool.allocate().unwrap(), Ipv4Addr::new(1, 2, 3, 4));
        assert!(pool.allocate().is_err());
    }

    #[test]
    fn rolls_over_to_next_block() {
        let mut pool = IpAllocator::new("p", vec![cidr("10.0.0.4/31"), cidr("10.0.1.0/31")]);
        assert_eq!(pool.allocate().unwrap(), Ipv4Addr::new(10, 0, 0, 4));
        assert_eq!(pool.allocate().unwrap(), Ipv4Addr::new(10, 0, 0, 5));
        assert_eq!(pool.allocate().unwrap(), Ipv4Addr::new(10, 0, 1, 0));
        assert_eq!(pool.allocate().unwrap(), Ipv4Addr::new(10, 0, 1, 1));
        assert!(pool.allocate().is_err());
    }

    #[test]
    fn capacity_matches_allocatable_count() {
        let mut pool = IpAllocator::new("p", vec![cidr("10.0.0.0/29"), cidr("10.1.0.0/30")]);
        let cap = pool.capacity();
        assert_eq!(cap, 6 + 2);
        let got = pool.allocate_n(cap as usize).unwrap();
        assert_eq!(got.len() as u64, cap);
        assert!(pool.allocate().is_err());
    }

    #[test]
    fn allocations_are_unique() {
        let mut pool = IpAllocator::new("p", vec![cidr("192.0.2.0/26")]);
        let got = pool.allocate_n(62).unwrap();
        let set: std::collections::BTreeSet<_> = got.iter().collect();
        assert_eq!(set.len(), got.len());
    }

    #[test]
    fn empty_pool_is_immediately_exhausted() {
        let mut pool = IpAllocator::new("empty", vec![]);
        let err = pool.allocate().unwrap_err();
        assert_eq!(
            err,
            NetError::PoolExhausted {
                pool: "empty".into()
            }
        );
    }

    #[test]
    fn all_allocations_stay_inside_blocks() {
        let blocks = vec![cidr("10.0.0.0/28"), cidr("172.16.0.0/29")];
        let mut pool = IpAllocator::new("p", blocks.clone());
        while let Ok(addr) = pool.allocate() {
            assert!(blocks.iter().any(|b| b.contains(addr)), "{addr} escaped");
        }
    }
}
