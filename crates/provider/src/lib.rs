//! DPS/CDN provider models.
//!
//! Implements the eleven providers of the paper's Table II as configurable
//! [`DpsProvider`] instances: fingerprint data ([`catalog`]), service plans
//! ([`plan`]), rerouting provisioning ([`rerouting`]), customer lifecycle
//! ([`account`], [`provider`]), the **residual-resolution policies**
//! ([`residual`]) that make Cloudflare and Incapsula leak origin addresses
//! after termination, and scrubbing centers ([`scrub`]) for the DDoS model.
//!
//! The provider behaviors encoded here are the paper's findings, not
//! inventions:
//!
//! * pause ⇒ nameservers answer with the **origin** address (Cloudflare,
//!   Incapsula — Sec IV-C.1);
//! * informed termination/switch ⇒ nameservers keep answering with the
//!   last stored origin address for weeks (residual resolution —
//!   Sec IV-C.2, V);
//! * uninformed leave ⇒ configuration untouched, so queries still return
//!   the **edge** address (footnote 9);
//! * Cloudflare free-plan records purge ~4 weeks after termination, other
//!   plans later (Sec V-A.3);
//! * the other nine providers simply stop answering.
//!
//! # Example
//!
//! ```
//! use remnant_provider::{DpsProvider, ProviderId, ReroutingMethod, ServicePlan};
//! use remnant_sim::SimTime;
//!
//! let mut cloudflare = DpsProvider::build(ProviderId::Cloudflare, 42);
//! let enrollment = cloudflare.enroll(
//!     SimTime::EPOCH,
//!     &"example.com".parse()?,
//!     "203.0.113.10".parse()?,
//!     ServicePlan::Free,
//!     ReroutingMethod::Ns,
//! )?;
//! assert_eq!(enrollment.nameservers().len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod account;
pub mod catalog;
pub mod error;
pub mod plan;
pub mod provider;
pub mod rerouting;
pub mod residual;
pub mod scrub;

pub use account::{CustomerAccount, ServiceStatus};
pub use catalog::{ProviderId, ProviderInfo};
pub use error::ProviderError;
pub use plan::ServicePlan;
pub use provider::{DpsProvider, Enrollment};
pub use rerouting::ReroutingMethod;
pub use residual::ResidualPolicy;
pub use scrub::{ScrubOutcome, ScrubbingCenter};
