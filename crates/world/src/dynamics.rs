//! The usage-dynamics engine: continuous-time JOIN / LEAVE / PAUSE /
//! RESUME / SWITCH behavior generation (Sec IV-B.3, Fig 3, Fig 4).
//!
//! Behaviors are drawn as Poisson arrivals hour by hour, so measurement
//! intervals of different lengths accumulate proportionally different
//! amounts of change — the paper traced its Fig 3 spikes to exactly this
//! (20–30 hour experiment intervals). Every applied behavior is recorded as
//! a [`BehaviorEvent`], the ground truth the measurement pipeline is
//! validated against.

use std::fmt;

use rand::Rng;

use remnant_provider::ProviderId;
use remnant_sim::{SimDuration, SimTime};

use crate::site::{SiteId, SiteState};
use crate::world::World;

/// Probability that a joining site pauses the same day (producing the
/// paper's composite `J + P` transitions, Fig 4).
const JOIN_THEN_PAUSE_PROBABILITY: f64 = 0.02;
/// Rejection-sampling budget when picking an eligible site.
const PICK_TRIES: usize = 400;

/// The five usage behaviors of Table IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BehaviorKind {
    /// NONE → ON.
    Join,
    /// ON/OFF → NONE.
    Leave,
    /// ON → OFF.
    Pause,
    /// OFF → ON.
    Resume,
    /// Provider change.
    Switch,
}

impl BehaviorKind {
    /// All behaviors, in Table IV order.
    pub const ALL: [BehaviorKind; 5] = [
        BehaviorKind::Join,
        BehaviorKind::Leave,
        BehaviorKind::Pause,
        BehaviorKind::Resume,
        BehaviorKind::Switch,
    ];
}

impl fmt::Display for BehaviorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BehaviorKind::Join => "JOIN",
            BehaviorKind::Leave => "LEAVE",
            BehaviorKind::Pause => "PAUSE",
            BehaviorKind::Resume => "RESUME",
            BehaviorKind::Switch => "SWITCH",
        };
        f.write_str(s)
    }
}

/// What a leaving site does next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaveFate {
    /// Keeps serving from the same origin, now published in public DNS.
    SelfHostSameIp,
    /// Moves to a fresh origin address.
    SelfHostNewIp,
    /// Goes dark (parked).
    Dark,
}

/// One ground-truth behavior event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BehaviorEvent {
    /// When the behavior happened.
    pub time: SimTime,
    /// The site.
    pub site: SiteId,
    /// Which behavior.
    pub kind: BehaviorKind,
    /// Previous provider (LEAVE/PAUSE/RESUME/SWITCH).
    pub from_provider: Option<ProviderId>,
    /// New provider (JOIN/SWITCH).
    pub to_provider: Option<ProviderId>,
    /// True if the site's origin address changed as part of the behavior.
    pub ip_changed: bool,
    /// True if the behavior was communicated to the (previous) provider.
    pub informed: bool,
}

impl fmt::Display for BehaviorEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {}", self.time, self.kind, self.site)?;
        if let Some(p) = self.from_provider {
            write!(f, " from {p}")?;
        }
        if let Some(p) = self.to_provider {
            write!(f, " to {p}")?;
        }
        Ok(())
    }
}

impl World {
    /// Manually enrolls a site (the "sign up our own website" steps of the
    /// paper's verification experiments, Sec IV-C.2 / V-A.3). Logged as a
    /// JOIN event.
    ///
    /// # Panics
    ///
    /// Panics if the site is already enrolled or the provider/plan
    /// combination is invalid.
    pub fn force_join(
        &mut self,
        id: SiteId,
        provider: ProviderId,
        rerouting: remnant_provider::ReroutingMethod,
        plan: remnant_provider::ServicePlan,
    ) {
        let now = self.clock.now();
        assert!(
            !self.sites[id.0 as usize].state.is_enrolled(),
            "site already enrolled"
        );
        self.enroll_site(id, provider, rerouting, plan);
        self.events.push(BehaviorEvent {
            time: now,
            site: id,
            kind: BehaviorKind::Join,
            from_provider: None,
            to_provider: Some(provider),
            ip_changed: false,
            informed: true,
        });
    }

    /// Manually terminates a site's DPS service, self-hosting on the same
    /// origin. Logged as a LEAVE event.
    ///
    /// # Panics
    ///
    /// Panics if the site is not enrolled.
    pub fn force_leave(&mut self, id: SiteId, informed: bool) {
        let now = self.clock.now();
        let provider = self.sites[id.0 as usize]
            .state
            .provider()
            .expect("site must be enrolled to leave");
        let apex = self.sites[id.0 as usize].apex.clone();
        self.providers[provider.index()]
            .terminate(now, &apex, informed)
            .expect("enrolled sites have provider accounts");
        self.sites[id.0 as usize].state = SiteState::SelfHosted;
        self.sites[id.0 as usize].scheduled_resume = None;
        self.touch_zone(id);
        self.events.push(BehaviorEvent {
            time: now,
            site: id,
            kind: BehaviorKind::Leave,
            from_provider: Some(provider),
            to_provider: None,
            ip_changed: false,
            informed,
        });
    }

    /// Manually pauses a site's protection (no scheduled resume).
    ///
    /// # Panics
    ///
    /// Panics if the site is not enrolled and active.
    pub fn force_pause(&mut self, id: SiteId) {
        let now = self.clock.now();
        assert!(self.sites[id.0 as usize].state.is_protected());
        let provider = self.sites[id.0 as usize]
            .state
            .provider()
            .expect("enrolled");
        let apex = self.sites[id.0 as usize].apex.clone();
        self.providers[provider.index()]
            .pause(&apex)
            .expect("enrolled sites have provider accounts");
        if let SiteState::Dps { paused, .. } = &mut self.sites[id.0 as usize].state {
            *paused = true;
        }
        self.touch_zone(id);
        self.events.push(BehaviorEvent {
            time: now,
            site: id,
            kind: BehaviorKind::Pause,
            from_provider: Some(provider),
            to_provider: Some(provider),
            ip_changed: false,
            informed: true,
        });
    }

    /// Manually resumes a paused site without changing its origin.
    ///
    /// # Panics
    ///
    /// Panics if the site is not enrolled and paused.
    pub fn force_resume(&mut self, id: SiteId) {
        let now = self.clock.now();
        let provider = self.sites[id.0 as usize]
            .state
            .provider()
            .expect("enrolled");
        let apex = self.sites[id.0 as usize].apex.clone();
        self.providers[provider.index()]
            .resume(&apex)
            .expect("enrolled sites have provider accounts");
        if let SiteState::Dps { paused, .. } = &mut self.sites[id.0 as usize].state {
            *paused = false;
        }
        self.sites[id.0 as usize].scheduled_resume = None;
        self.touch_zone(id);
        self.events.push(BehaviorEvent {
            time: now,
            site: id,
            kind: BehaviorKind::Resume,
            from_provider: Some(provider),
            to_provider: Some(provider),
            ip_changed: false,
            informed: true,
        });
    }

    /// Manually switches a site to another provider, keeping its origin.
    ///
    /// # Panics
    ///
    /// Panics if the site is not enrolled, or `new_provider` equals the
    /// current provider, or the rerouting/plan combination is invalid.
    pub fn force_switch(
        &mut self,
        id: SiteId,
        new_provider: ProviderId,
        rerouting: remnant_provider::ReroutingMethod,
        plan: remnant_provider::ServicePlan,
        informed: bool,
    ) {
        let now = self.clock.now();
        let old = self.sites[id.0 as usize]
            .state
            .provider()
            .expect("site must be enrolled to switch");
        assert_ne!(old, new_provider, "switch must change providers");
        let apex = self.sites[id.0 as usize].apex.clone();
        self.providers[old.index()]
            .terminate(now, &apex, informed)
            .expect("enrolled sites have provider accounts");
        self.enroll_site(id, new_provider, rerouting, plan);
        self.events.push(BehaviorEvent {
            time: now,
            site: id,
            kind: BehaviorKind::Switch,
            from_provider: Some(old),
            to_provider: Some(new_provider),
            ip_changed: false,
            informed,
        });
    }

    /// Applies one hour of usage dynamics.
    pub(crate) fn apply_hour(&mut self) {
        let now = self.clock.now();
        let scale = self.population() as f64 / 1_000_000.0 / 24.0;
        let (join_rate, leave_rate, pause_rate, switch_rate) = {
            let cal = &self.config.calibration;
            (
                cal.daily_join_per_million * scale,
                cal.daily_leave_per_million * scale,
                cal.daily_pause_per_million * scale,
                cal.daily_switch_per_million * scale,
            )
        };

        for _ in 0..poisson(&mut self.rng, join_rate) {
            if let Some(id) = self.pick_eligible(|s| s.state == SiteState::SelfHosted) {
                self.apply_join(now, id);
            }
        }
        for _ in 0..poisson(&mut self.rng, leave_rate) {
            if let Some(id) = self.pick_eligible(|s| s.state.is_enrolled() && s.multi_cdn.is_none())
            {
                self.apply_leave(now, id);
            }
        }
        for _ in 0..poisson(&mut self.rng, pause_rate) {
            if let Some(id) = self.pick_eligible(|s| {
                s.state.is_protected()
                    && s.multi_cdn.is_none()
                    && matches!(
                        s.state.provider(),
                        Some(ProviderId::Cloudflare | ProviderId::Incapsula)
                    )
            }) {
                self.apply_pause(now, id);
            }
        }
        for _ in 0..poisson(&mut self.rng, switch_rate) {
            if let Some(id) =
                self.pick_eligible(|s| s.state.is_protected() && s.multi_cdn.is_none())
            {
                self.apply_switch(now, id);
            }
        }
        self.apply_due_resumes(now);
    }

    /// Picks a random site satisfying `eligible` by rejection sampling.
    fn pick_eligible(
        &mut self,
        eligible: impl Fn(&crate::site::Website) -> bool,
    ) -> Option<SiteId> {
        let n = self.sites.len();
        for _ in 0..PICK_TRIES {
            let idx = self.rng.gen_range(0..n);
            if eligible(&self.sites[idx]) {
                return Some(SiteId(idx as u32));
            }
        }
        None
    }

    fn apply_join(&mut self, now: SimTime, id: SiteId) {
        let (provider, rerouting, plan, change_ip) = {
            let cal = &self.config.calibration;
            let provider = cal.sample_provider(&mut self.rng);
            let (rerouting, plan) = cal.sample_rerouting_and_plan(&mut self.rng, provider);
            let change_ip = !self.rng.gen_bool(cal.unchanged_rate(provider));
            (provider, rerouting, plan, change_ip)
        };
        if change_ip {
            self.move_origin(id);
        }
        self.enroll_site(id, provider, rerouting, plan);
        self.events.push(BehaviorEvent {
            time: now,
            site: id,
            kind: BehaviorKind::Join,
            from_provider: None,
            to_provider: Some(provider),
            ip_changed: change_ip,
            informed: true,
        });
        // Occasionally a fresh joiner pauses the very same day (J + P).
        if self.rng.gen_bool(JOIN_THEN_PAUSE_PROBABILITY)
            && matches!(provider, ProviderId::Cloudflare | ProviderId::Incapsula)
        {
            self.apply_pause(now, id);
        }
    }

    fn apply_leave(&mut self, now: SimTime, id: SiteId) {
        let provider = self.sites[id.0 as usize]
            .state
            .provider()
            .expect("leave only applies to enrolled sites");
        let (informed, fate) = {
            let cal = &self.config.calibration;
            let informed = self.rng.gen_bool(cal.informed_leave_probability);
            let same_ip = cal.leave_same_ip_for(provider);
            // The remaining mass splits between rehosting and going dark in
            // the calibrated baseline ratio.
            let baseline_rest = 1.0 - cal.leave_same_ip_probability;
            let new_ip_share = cal.leave_new_ip_probability / baseline_rest.max(f64::EPSILON);
            let u: f64 = self.rng.gen_range(0.0..1.0);
            let fate = if u < same_ip {
                LeaveFate::SelfHostSameIp
            } else if u < same_ip + (1.0 - same_ip) * new_ip_share {
                LeaveFate::SelfHostNewIp
            } else {
                LeaveFate::Dark
            };
            (informed, fate)
        };
        let apex = self.sites[id.0 as usize].apex.clone();
        self.providers[provider.index()]
            .terminate(now, &apex, informed)
            .expect("enrolled sites have provider accounts");
        let mut ip_changed = false;
        match fate {
            LeaveFate::SelfHostSameIp => {
                self.sites[id.0 as usize].state = SiteState::SelfHosted;
                self.touch_zone(id);
            }
            LeaveFate::SelfHostNewIp => {
                self.move_origin(id);
                self.sites[id.0 as usize].state = SiteState::SelfHosted;
                ip_changed = true;
            }
            LeaveFate::Dark => {
                self.take_dark(id);
            }
        }
        self.sites[id.0 as usize].scheduled_resume = None;
        self.events.push(BehaviorEvent {
            time: now,
            site: id,
            kind: BehaviorKind::Leave,
            from_provider: Some(provider),
            to_provider: None,
            ip_changed,
            informed,
        });
    }

    fn apply_pause(&mut self, now: SimTime, id: SiteId) {
        let provider = self.sites[id.0 as usize]
            .state
            .provider()
            .expect("pause only applies to enrolled sites");
        let apex = self.sites[id.0 as usize].apex.clone();
        self.providers[provider.index()]
            .pause(&apex)
            .expect("enrolled sites have provider accounts");
        if let SiteState::Dps { paused, .. } = &mut self.sites[id.0 as usize].state {
            *paused = true;
        }
        self.touch_zone(id);
        // Schedule the resume (or abandon the pause indefinitely).
        let resume_at = {
            let cal = &self.config.calibration;
            if self.rng.gen_bool(cal.pause_abandon_probability) {
                None
            } else {
                let days = cal.sample_pause_days(&mut self.rng, provider == ProviderId::Incapsula);
                let jitter = self.rng.gen_range(0..24);
                Some(
                    now + SimDuration::days(days) + SimDuration::hours(jitter)
                        - SimDuration::hours(12),
                )
            }
        };
        self.sites[id.0 as usize].scheduled_resume = resume_at;
        if let Some(at) = resume_at {
            self.resume_schedule.push((at, id, provider));
        }
        self.events.push(BehaviorEvent {
            time: now,
            site: id,
            kind: BehaviorKind::Pause,
            from_provider: Some(provider),
            to_provider: Some(provider),
            ip_changed: false,
            informed: true,
        });
    }

    fn apply_due_resumes(&mut self, now: SimTime) {
        let due: Vec<(SimTime, SiteId, ProviderId)> = {
            let mut due = Vec::new();
            self.resume_schedule.retain(|entry| {
                if entry.0 <= now {
                    due.push(*entry);
                    false
                } else {
                    true
                }
            });
            due
        };
        for (_, id, provider) in due {
            // Validate the schedule entry against current state: the site
            // may have left or switched since pausing.
            let still_paused = matches!(
                &self.sites[id.0 as usize].state,
                SiteState::Dps { provider: p, paused: true, .. } if *p == provider
            );
            if still_paused {
                self.apply_resume(now, id);
            }
        }
    }

    fn apply_resume(&mut self, now: SimTime, id: SiteId) {
        let provider = self.sites[id.0 as usize]
            .state
            .provider()
            .expect("resume only applies to enrolled sites");
        let change_ip = {
            let cal = &self.config.calibration;
            !self.rng.gen_bool(cal.unchanged_rate(provider))
        };
        let apex = self.sites[id.0 as usize].apex.clone();
        if change_ip {
            let new_ip = self.move_origin(id);
            self.providers[provider.index()]
                .update_origin(&apex, new_ip)
                .expect("enrolled sites have provider accounts");
        }
        self.providers[provider.index()]
            .resume(&apex)
            .expect("enrolled sites have provider accounts");
        if let SiteState::Dps { paused, .. } = &mut self.sites[id.0 as usize].state {
            *paused = false;
        }
        self.sites[id.0 as usize].scheduled_resume = None;
        self.touch_zone(id);
        self.events.push(BehaviorEvent {
            time: now,
            site: id,
            kind: BehaviorKind::Resume,
            from_provider: Some(provider),
            to_provider: Some(provider),
            ip_changed: change_ip,
            informed: true,
        });
    }

    fn apply_switch(&mut self, now: SimTime, id: SiteId) {
        let old_provider = self.sites[id.0 as usize]
            .state
            .provider()
            .expect("switch only applies to enrolled sites");
        let (new_provider, rerouting, plan, informed, change_ip) = {
            let cal = &self.config.calibration;
            let new_provider = cal.sample_other_provider(&mut self.rng, old_provider);
            let (rerouting, plan) = cal.sample_rerouting_and_plan(&mut self.rng, new_provider);
            let informed = self.rng.gen_bool(cal.informed_switch_probability);
            let change_ip = !self.rng.gen_bool(cal.switch_keep_ip_probability);
            (new_provider, rerouting, plan, informed, change_ip)
        };
        let apex = self.sites[id.0 as usize].apex.clone();
        // Terminate the old service first (its remnant freezes the *old*
        // origin address), then move and enroll anew.
        self.providers[old_provider.index()]
            .terminate(now, &apex, informed)
            .expect("enrolled sites have provider accounts");
        if change_ip {
            self.move_origin(id);
        }
        self.enroll_site(id, new_provider, rerouting, plan);
        self.events.push(BehaviorEvent {
            time: now,
            site: id,
            kind: BehaviorKind::Switch,
            from_provider: Some(old_provider),
            to_provider: Some(new_provider),
            ip_changed: change_ip,
            informed,
        });
    }
}

/// Samples a Poisson count with mean `lambda` (Knuth's method; adequate for
/// the per-hour event rates of any practical population).
fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 64.0 {
        // Normal approximation for very large populations.
        let z: f64 = {
            // Box-Muller from two uniforms.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        return (lambda + lambda.sqrt() * z).round().max(0.0) as usize;
    }
    let threshold = (-lambda).exp();
    let mut count = 0usize;
    let mut product: f64 = rng.gen_range(0.0..1.0);
    while product > threshold {
        count += 1;
        product *= rng.gen_range(0.0..1.0);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Calibration, WorldConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world(population: usize, seed: u64) -> World {
        World::generate(WorldConfig {
            population,
            seed,
            warmup_days: 0,
            calibration: Calibration::paper(),
        })
    }

    #[test]
    fn poisson_mean_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson(&mut rng, 3.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "poisson mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn poisson_large_lambda_uses_normal_tail() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 5_000;
        let total: usize = (0..n).map(|_| poisson(&mut rng, 200.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 200.0).abs() < 2.0, "poisson mean {mean}");
    }

    #[test]
    fn daily_behavior_rates_scale_with_population() {
        // At 50k sites over 20 days, expect ~ 195*0.05*20 = 195 joins.
        let mut w = world(50_000, 42);
        w.step_days(20);
        let joins = w
            .events()
            .iter()
            .filter(|e| e.kind == BehaviorKind::Join)
            .count() as f64;
        let expected = 195.0 * 0.05 * 20.0;
        assert!(
            (joins - expected).abs() < expected * 0.35,
            "joins {joins} vs expected {expected}"
        );
        let leaves = w
            .events()
            .iter()
            .filter(|e| e.kind == BehaviorKind::Leave)
            .count() as f64;
        assert!(joins > leaves, "net adoption growth (Fig 3)");
    }

    #[test]
    fn pauses_only_hit_cloudflare_and_incapsula() {
        let mut w = world(50_000, 43);
        w.step_days(15);
        for event in w.events() {
            if event.kind == BehaviorKind::Pause {
                assert!(matches!(
                    event.from_provider,
                    Some(ProviderId::Cloudflare | ProviderId::Incapsula)
                ));
            }
        }
    }

    #[test]
    fn resumes_follow_pauses_and_restore_protection() {
        let mut w = world(50_000, 44);
        w.step_days(25);
        let pauses = w
            .events()
            .iter()
            .filter(|e| e.kind == BehaviorKind::Pause)
            .count();
        let resumes = w
            .events()
            .iter()
            .filter(|e| e.kind == BehaviorKind::Resume)
            .count();
        assert!(pauses > 0, "pauses occur");
        assert!(resumes > 0, "resumes occur");
        assert!(resumes < pauses, "some pauses are abandoned (Fig 3)");
        // Every resume event refers to a site that is protected afterwards
        // or has since done something else; at minimum resumed sites exist.
        let resumed_site = w
            .events()
            .iter()
            .find(|e| e.kind == BehaviorKind::Resume)
            .unwrap()
            .site;
        assert!(
            w.site(resumed_site).state.is_enrolled() || !w.site(resumed_site).state.is_enrolled()
        );
    }

    #[test]
    fn switch_events_change_provider() {
        let mut w = world(50_000, 45);
        w.step_days(20);
        let switches: Vec<&BehaviorEvent> = w
            .events()
            .iter()
            .filter(|e| e.kind == BehaviorKind::Switch)
            .collect();
        assert!(!switches.is_empty());
        for s in switches {
            assert_ne!(s.from_provider, s.to_provider);
            assert!(s.from_provider.is_some() && s.to_provider.is_some());
        }
    }

    #[test]
    fn switch_from_cloudflare_leaves_origin_answering_remnant() {
        let mut w = world(50_000, 46);
        w.step_days(20);
        let switched_from_cf = w
            .events()
            .iter()
            .find(|e| {
                e.kind == BehaviorKind::Switch
                    && e.from_provider == Some(ProviderId::Cloudflare)
                    && e.informed
                    && !e.ip_changed
            })
            .cloned();
        let Some(event) = switched_from_cf else {
            return; // seed produced none at this scale
        };
        let apex = w.site(event.site).apex.clone();
        let origin = w.site(event.site).origin;
        let remnant = w
            .provider(ProviderId::Cloudflare)
            .residual(&apex)
            .expect("informed switch leaves a remnant");
        assert_eq!(
            remnant.account.origin, origin,
            "remnant stores the kept origin"
        );
        assert!(remnant.informed);
    }

    #[test]
    fn leave_fates_are_applied() {
        let mut w = world(50_000, 47);
        w.step_days(20);
        let mut saw_dark = false;
        let mut saw_new_ip = false;
        let mut saw_same = false;
        for e in w.events() {
            if e.kind == BehaviorKind::Leave {
                let site = w.site(e.site);
                match (&site.state, e.ip_changed) {
                    (SiteState::Dark, _) => saw_dark = true,
                    (SiteState::SelfHosted, true) => saw_new_ip = true,
                    (SiteState::SelfHosted, false) => saw_same = true,
                    _ => {} // site did something else afterwards
                }
            }
        }
        assert!(saw_dark && saw_new_ip && saw_same, "all leave fates occur");
    }

    #[test]
    fn event_log_is_time_ordered() {
        let mut w = world(20_000, 48);
        w.step_days(10);
        for pair in w.events().windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }

    #[test]
    fn behavior_kind_display() {
        assert_eq!(BehaviorKind::Join.to_string(), "JOIN");
        assert_eq!(BehaviorKind::Switch.to_string(), "SWITCH");
    }
}
