//! The DPS usage finite state machine (Fig 4).
//!
//! States are `NONE`, `P:ON`, `P:OFF` for any provider `P`; transitions are
//! the Table IV behaviors. The FSM validates that every observed behavior
//! sequence corresponds to a legal path — the consistency check behind the
//! paper's Fig 4.

use std::fmt;

use remnant_provider::ProviderId;
use remnant_world::BehaviorKind;

/// An FSM state: which provider (if any) and whether protection is active.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DpsState {
    /// No DPS involvement.
    #[default]
    None,
    /// Protected by a provider.
    On(ProviderId),
    /// Delegated to a provider but paused.
    Off(ProviderId),
}

impl DpsState {
    /// The provider, if any.
    pub fn provider(&self) -> Option<ProviderId> {
        match self {
            DpsState::None => None,
            DpsState::On(p) | DpsState::Off(p) => Some(*p),
        }
    }
}

impl fmt::Display for DpsState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpsState::None => f.write_str("NONE"),
            DpsState::On(p) => write!(f, "{p}:ON"),
            DpsState::Off(p) => write!(f, "{p}:OFF"),
        }
    }
}

/// An illegal transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidTransition {
    /// The state the behavior was applied in.
    pub state: DpsState,
    /// The offending behavior.
    pub behavior: BehaviorKind,
}

impl fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "behavior {} is illegal in state {}",
            self.behavior, self.state
        )
    }
}

impl std::error::Error for InvalidTransition {}

/// Applies `behavior` to `state` per Fig 4.
///
/// `to` carries the destination provider for JOIN and SWITCH (the paper
/// assumes joins land in ON).
///
/// # Errors
///
/// Returns [`InvalidTransition`] for behaviors illegal in the state (e.g.
/// RESUME while not paused).
pub fn apply(
    state: DpsState,
    behavior: BehaviorKind,
    to: Option<ProviderId>,
) -> Result<DpsState, InvalidTransition> {
    let illegal = || InvalidTransition { state, behavior };
    match (state, behavior) {
        (DpsState::None, BehaviorKind::Join) => Ok(DpsState::On(to.ok_or_else(illegal)?)),
        (DpsState::On(_) | DpsState::Off(_), BehaviorKind::Leave) => Ok(DpsState::None),
        (DpsState::On(p), BehaviorKind::Pause) => Ok(DpsState::Off(p)),
        (DpsState::Off(p), BehaviorKind::Resume) => Ok(DpsState::On(p)),
        (DpsState::On(p) | DpsState::Off(p), BehaviorKind::Switch) => {
            let next = to.ok_or_else(illegal)?;
            if next == p {
                Err(illegal())
            } else {
                Ok(DpsState::On(next))
            }
        }
        _ => Err(illegal()),
    }
}

/// Validates a whole behavior sequence from `start`, returning the final
/// state.
///
/// # Errors
///
/// Returns the first [`InvalidTransition`] encountered.
pub fn validate_sequence(
    start: DpsState,
    behaviors: impl IntoIterator<Item = (BehaviorKind, Option<ProviderId>)>,
) -> Result<DpsState, InvalidTransition> {
    let mut state = start;
    for (behavior, to) in behaviors {
        state = apply(state, behavior, to)?;
    }
    Ok(state)
}

/// The full legal transition table as `(from, behavior, to)` descriptions,
/// for rendering Fig 4.
pub fn transition_table() -> Vec<(String, BehaviorKind, String)> {
    let p1 = ProviderId::Cloudflare;
    let p2 = ProviderId::Incapsula;
    let mut rows = Vec::new();
    let mut push = |from: DpsState, kind: BehaviorKind, to: Option<ProviderId>| {
        if let Ok(next) = apply(from, kind, to) {
            rows.push((from.to_string(), kind, next.to_string()));
        }
    };
    push(DpsState::None, BehaviorKind::Join, Some(p1));
    push(DpsState::On(p1), BehaviorKind::Pause, None);
    push(DpsState::Off(p1), BehaviorKind::Resume, None);
    push(DpsState::On(p1), BehaviorKind::Leave, None);
    push(DpsState::Off(p1), BehaviorKind::Leave, None);
    push(DpsState::On(p1), BehaviorKind::Switch, Some(p2));
    push(DpsState::Off(p1), BehaviorKind::Switch, Some(p2));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const CF: ProviderId = ProviderId::Cloudflare;
    const INC: ProviderId = ProviderId::Incapsula;

    #[test]
    fn happy_paths() {
        assert_eq!(
            apply(DpsState::None, BehaviorKind::Join, Some(CF)).unwrap(),
            DpsState::On(CF)
        );
        assert_eq!(
            apply(DpsState::On(CF), BehaviorKind::Pause, None).unwrap(),
            DpsState::Off(CF)
        );
        assert_eq!(
            apply(DpsState::Off(CF), BehaviorKind::Resume, None).unwrap(),
            DpsState::On(CF)
        );
        assert_eq!(
            apply(DpsState::On(CF), BehaviorKind::Leave, None).unwrap(),
            DpsState::None
        );
        assert_eq!(
            apply(DpsState::Off(CF), BehaviorKind::Switch, Some(INC)).unwrap(),
            DpsState::On(INC)
        );
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        assert!(apply(DpsState::None, BehaviorKind::Leave, None).is_err());
        assert!(apply(DpsState::None, BehaviorKind::Pause, None).is_err());
        assert!(apply(DpsState::None, BehaviorKind::Resume, None).is_err());
        assert!(apply(DpsState::None, BehaviorKind::Switch, Some(CF)).is_err());
        assert!(apply(DpsState::Off(CF), BehaviorKind::Pause, None).is_err());
        assert!(apply(DpsState::On(CF), BehaviorKind::Resume, None).is_err());
        assert!(apply(DpsState::On(CF), BehaviorKind::Join, Some(INC)).is_err());
        // Switching to the same provider is not a switch.
        assert!(apply(DpsState::On(CF), BehaviorKind::Switch, Some(CF)).is_err());
        // Join/switch without a destination provider are malformed.
        assert!(apply(DpsState::None, BehaviorKind::Join, None).is_err());
        assert!(apply(DpsState::On(CF), BehaviorKind::Switch, None).is_err());
    }

    #[test]
    fn sequences_validate_end_to_end() {
        // The paper's composite example: join then pause the same day is
        // J followed by P.
        let end = validate_sequence(
            DpsState::None,
            [
                (BehaviorKind::Join, Some(CF)),
                (BehaviorKind::Pause, None),
                (BehaviorKind::Resume, None),
                (BehaviorKind::Switch, Some(INC)),
                (BehaviorKind::Leave, None),
            ],
        )
        .unwrap();
        assert_eq!(end, DpsState::None);
    }

    #[test]
    fn sequence_stops_at_first_error() {
        let err = validate_sequence(
            DpsState::None,
            [
                (BehaviorKind::Join, Some(CF)),
                (BehaviorKind::Join, Some(CF)),
            ],
        )
        .unwrap_err();
        assert_eq!(err.state, DpsState::On(CF));
        assert_eq!(err.behavior, BehaviorKind::Join);
        assert!(err.to_string().contains("illegal"));
    }

    #[test]
    fn transition_table_covers_all_five_behaviors() {
        let table = transition_table();
        for kind in BehaviorKind::ALL {
            assert!(
                table.iter().any(|(_, k, _)| *k == kind),
                "{kind} missing from Fig 4 table"
            );
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(DpsState::None.to_string(), "NONE");
        assert_eq!(DpsState::On(CF).to_string(), "Cloudflare:ON");
        assert_eq!(DpsState::Off(INC).to_string(), "Incapsula:OFF");
    }
}
