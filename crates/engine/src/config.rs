//! Engine tuning knobs.

use crate::error::ConfigFieldError;

/// Retry policy applied per item inside a shard.
///
/// A task signals a retryable outcome by returning
/// [`TaskResult::Retry`](crate::TaskResult::Retry) with a fallback output.
/// The engine re-runs the task until it returns
/// [`TaskResult::Done`](crate::TaskResult::Done) or `max_attempts` is
/// reached, at which point the *last* fallback is kept and the item is
/// counted as exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts per item, including the first (`>= 1`).
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// A policy that never retries.
    pub const fn once() -> Self {
        RetryPolicy { max_attempts: 1 }
    }

    /// A policy allowing up to `max_attempts` attempts per item.
    pub const fn attempts(max_attempts: u32) -> Self {
        RetryPolicy { max_attempts }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Matches the paper's collector: a failed lookup is re-issued a
        // couple of times before the site is recorded as unresolvable.
        RetryPolicy { max_attempts: 3 }
    }
}

/// Token-bucket rate limit shared by every worker of a sweep.
///
/// The limit applies to task *attempts* (one attempt ≈ one resolution),
/// in real wall-clock time. It exists for operators pointing the scanner
/// at infrastructure with query budgets; simulation runs leave it off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateLimit {
    /// Sustained attempts per second across all workers.
    pub per_second: f64,
    /// Bucket capacity: how many attempts may burst back-to-back.
    pub burst: u32,
}

impl RateLimit {
    /// A sustained rate of `per_second` with a same-sized burst.
    pub fn per_second(per_second: f64) -> Self {
        RateLimit {
            per_second,
            burst: per_second.max(1.0).ceil() as u32,
        }
    }
}

/// Configuration for a [`ScanEngine`](crate::ScanEngine).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// Number of worker threads. Any value `>= 1`; the engine never spawns
    /// more workers than shards. Output is identical for every value.
    pub workers: usize,
    /// Items per *planning unit*. Together with
    /// [`shards_per_worker`](EngineConfig::shards_per_worker) this fixes
    /// the shard layout; the layout is a function of the item count and
    /// these two constants only — never of `workers` — which is what makes
    /// the merged output independent of parallelism.
    pub shard_size: usize,
    /// Claim granularity: how many claimable shards each `shard_size`
    /// planning unit is split into. `1` (the default) reproduces the
    /// classic layout (one shard per unit); higher values cut the same
    /// units into finer shards so the work-claiming queue can route around
    /// a straggling shard instead of stalling everything scheduled behind
    /// it.
    ///
    /// Deliberately **not** tied to the runtime worker count: the
    /// effective shard size is `ceil(shard_size / shards_per_worker)`, a
    /// pure layout constant, so two runs that differ only in `workers`
    /// still plan identical shards and produce byte-identical output.
    pub shards_per_worker: usize,
    /// Per-item retry policy.
    pub retry: RetryPolicy,
    /// Optional global rate limit (off by default; simulations don't wait).
    pub rate: Option<RateLimit>,
    /// Root seed for the per-shard RNG streams.
    pub seed: u64,
}

impl EngineConfig {
    /// Default shard size: small enough to load-balance a million-site
    /// sweep over any sane worker count, large enough that per-shard setup
    /// (fresh resolver, RNG derivation) is amortized.
    pub const DEFAULT_SHARD_SIZE: usize = 512;

    /// Upper bound on `workers`: beyond this the per-shard setup cost
    /// dominates and the sharding model stops making sense.
    pub const MAX_WORKERS: usize = 1024;

    /// Configuration with `workers` threads and the given RNG seed.
    ///
    /// Returns the named offending field for out-of-range worker counts —
    /// `workers == 0` is a configuration mistake the caller should see,
    /// not a value to silently clamp.
    pub fn with_workers(workers: usize, seed: u64) -> Result<Self, ConfigFieldError> {
        EngineConfig::builder().workers(workers).seed(seed).build()
    }

    /// A builder starting from the defaults, with validated setters —
    /// see [`EngineConfigBuilder`].
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
        }
    }

    /// Items per claimable shard:
    /// `ceil(shard_size / shards_per_worker)`, at least 1. This — not
    /// `shard_size` alone — is what [`crate::plan_shards`] receives.
    pub fn effective_shard_size(&self) -> usize {
        let per = self.shards_per_worker.max(1);
        self.shard_size.max(1).div_ceil(per)
    }

    /// Validates the configuration, naming the first rejected field.
    pub fn validate(&self) -> Result<(), ConfigFieldError> {
        if self.workers == 0 {
            return Err(ConfigFieldError::new(
                "workers",
                self.workers,
                "at least one worker thread is required",
            ));
        }
        if self.workers > Self::MAX_WORKERS {
            return Err(ConfigFieldError::new(
                "workers",
                self.workers,
                "more than 1024 workers exceeds the engine's sharding model",
            ));
        }
        if self.shard_size == 0 {
            return Err(ConfigFieldError::new(
                "shard_size",
                self.shard_size,
                "shards must hold at least one item",
            ));
        }
        if self.shards_per_worker == 0 {
            return Err(ConfigFieldError::new(
                "shards_per_worker",
                self.shards_per_worker,
                "each planning unit must yield at least one claimable shard",
            ));
        }
        if self.retry.max_attempts == 0 {
            return Err(ConfigFieldError::new(
                "retry.max_attempts",
                self.retry.max_attempts,
                "every item needs at least one attempt",
            ));
        }
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            shard_size: Self::DEFAULT_SHARD_SIZE,
            shards_per_worker: 1,
            retry: RetryPolicy::default(),
            rate: None,
            seed: 0,
        }
    }
}

/// Builder for [`EngineConfig`] — the validated construction path.
///
/// The struct-literal path stays open for tests and internal callers;
/// the builder names the offending field, value, and reason when a
/// combination is rejected:
///
/// ```
/// use remnant_engine::EngineConfig;
///
/// let config = EngineConfig::builder().workers(8).seed(42).build()?;
/// assert_eq!(config.workers, 8);
/// let err = EngineConfig::builder().workers(0).build().unwrap_err();
/// assert_eq!(err.field, "workers");
/// # Ok::<(), remnant_engine::ConfigFieldError>(())
/// ```
#[derive(Clone, Debug)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Number of worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Items per planning unit.
    pub fn shard_size(mut self, shard_size: usize) -> Self {
        self.config.shard_size = shard_size;
        self
    }

    /// Claimable shards per planning unit (see
    /// [`EngineConfig::shards_per_worker`]).
    pub fn shards_per_worker(mut self, shards: usize) -> Self {
        self.config.shards_per_worker = shards;
        self
    }

    /// Per-item retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Global rate limit.
    pub fn rate(mut self, rate: RateLimit) -> Self {
        self.config.rate = Some(rate);
        self
    }

    /// Root seed for the per-shard RNG streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration, naming the first rejected
    /// field on failure.
    pub fn build(self) -> Result<EngineConfig, ConfigFieldError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_workers_names_the_offending_field_for_zero() {
        let err = EngineConfig::with_workers(0, 7).unwrap_err();
        assert_eq!(err.field, "workers");
        assert_eq!(err.value, "0");
        let config = EngineConfig::with_workers(8, 7).unwrap();
        assert_eq!(config.workers, 8);
        assert_eq!(config.seed, 7);
    }

    #[test]
    fn builder_validates_every_field() {
        let config = EngineConfig::builder()
            .workers(4)
            .shard_size(128)
            .shards_per_worker(4)
            .retry(RetryPolicy::attempts(2))
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(config.workers, 4);
        assert_eq!(config.effective_shard_size(), 32);

        for (build, field) in [
            (EngineConfig::builder().workers(0).build(), "workers"),
            (EngineConfig::builder().workers(2048).build(), "workers"),
            (EngineConfig::builder().shard_size(0).build(), "shard_size"),
            (
                EngineConfig::builder().shards_per_worker(0).build(),
                "shards_per_worker",
            ),
            (
                EngineConfig::builder()
                    .retry(RetryPolicy::attempts(0))
                    .build(),
                "retry.max_attempts",
            ),
        ] {
            assert_eq!(build.unwrap_err().field, field);
        }
    }

    #[test]
    fn effective_shard_size_refines_without_reading_workers() {
        let base = EngineConfig::default();
        assert_eq!(
            base.effective_shard_size(),
            EngineConfig::DEFAULT_SHARD_SIZE,
            "default granularity reproduces the classic layout"
        );
        let fine = EngineConfig {
            shard_size: 100,
            shards_per_worker: 3,
            ..EngineConfig::default()
        };
        assert_eq!(fine.effective_shard_size(), 34);
        // Same layout constants, different worker counts: same plan.
        let more_workers = EngineConfig {
            workers: 64,
            ..fine.clone()
        };
        assert_eq!(
            fine.effective_shard_size(),
            more_workers.effective_shard_size()
        );
    }

    #[test]
    fn rate_limit_burst_tracks_rate() {
        assert_eq!(RateLimit::per_second(100.0).burst, 100);
        assert_eq!(RateLimit::per_second(0.5).burst, 1);
    }
}
