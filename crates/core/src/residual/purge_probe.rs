//! The purge-probe self-experiment (Sec V-A.3).
//!
//! "we sign up its free DPS service with our own website and terminate the
//! service at the same day. We then find that our A record is purged at the
//! 4th week after the day of termination. We conduct the same trial for
//! three times ... the time interval between any two trials is 3 weeks."

use remnant_dns::{DnsTransport, Query, RecordType};
use remnant_net::Region;
use remnant_provider::{ProviderId, ReroutingMethod, ServicePlan};
use remnant_world::{SiteId, SiteState, World};

/// The probe's findings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PurgeProbeResult {
    /// Per trial: the week (1-based, after termination) in which the
    /// provider first ignored the probe query, or `None` if the record
    /// outlived the probe horizon.
    pub purge_week: Vec<Option<u32>>,
}

impl PurgeProbeResult {
    /// True if every trial observed the same purge week.
    pub fn is_consistent(&self) -> bool {
        self.purge_week.windows(2).all(|w| w[0] == w[1])
    }
}

/// The sign-up / terminate / probe-weekly experiment.
#[derive(Clone, Copy, Debug)]
pub struct PurgeProbe {
    /// Provider under test.
    pub provider: ProviderId,
    /// Plan to sign up with (the paper used the free plan).
    pub plan: ServicePlan,
    /// Number of trials (the paper ran three).
    pub trials: u32,
    /// Weeks between trials (the paper used three).
    pub trial_gap_weeks: u32,
    /// Maximum weeks to probe before giving up on a trial.
    pub horizon_weeks: u32,
}

impl Default for PurgeProbe {
    fn default() -> Self {
        PurgeProbe {
            provider: ProviderId::Cloudflare,
            plan: ServicePlan::Free,
            trials: 3,
            trial_gap_weeks: 3,
            horizon_weeks: 8,
        }
    }
}

impl PurgeProbe {
    /// Runs the experiment in `world`, enrolling throw-away self-hosted
    /// sites as "our own website". Time advances inside.
    ///
    /// # Panics
    ///
    /// Panics if the world has no self-hosted sites left to enroll.
    pub fn run(&self, world: &mut World) -> PurgeProbeResult {
        let mut purge_week = Vec::new();
        for trial in 0..self.trials {
            let site_id = pick_self_hosted(world);
            let www = world.site(site_id).www.clone();
            // Sign up and terminate the same day (explicitly informed).
            world.force_join(site_id, self.provider, ReroutingMethod::Ns, self.plan);
            world.force_leave(site_id, true);

            // Probe weekly: a direct A query to one provider nameserver.
            let server = world.provider(self.provider).ns_addresses()[0];
            let mut observed = None;
            for week in 1..=self.horizon_weeks {
                world.step_days(7);
                let now = world.now();
                let query = Query::new(www.clone(), RecordType::A);
                let response = world.query(now, server, Region::Oregon, &query);
                let answered = response.is_some_and(|r| !r.answers.is_empty());
                if !answered {
                    observed = Some(week);
                    break;
                }
            }
            purge_week.push(observed);
            if trial + 1 < self.trials {
                world.step_days(u64::from(self.trial_gap_weeks) * 7);
            }
        }
        PurgeProbeResult { purge_week }
    }
}

/// Picks a currently self-hosted site to act as "our own website".
fn pick_self_hosted(world: &World) -> SiteId {
    world
        .sites()
        .iter()
        .rev() // unpopular tail sites: least likely to churn mid-probe
        .find(|s| s.state == SiteState::SelfHosted)
        .map(|s| s.id)
        .expect("a self-hosted site exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use remnant_world::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig {
            population: 400,
            seed: 88,
            warmup_days: 0,
            calibration: remnant_world::Calibration::paper(),
        })
    }

    #[test]
    fn free_plan_purges_in_week_four() {
        let mut w = world();
        let result = PurgeProbe::default().run(&mut w);
        assert_eq!(result.purge_week.len(), 3);
        assert!(result.is_consistent(), "{:?}", result.purge_week);
        // Policy: 4-week retention; the first probe that finds it gone is
        // the 4th weekly probe.
        assert_eq!(result.purge_week[0], Some(4));
    }

    #[test]
    fn enterprise_plan_outlives_the_horizon() {
        let mut w = world();
        let probe = PurgeProbe {
            plan: ServicePlan::Enterprise,
            trials: 1,
            ..PurgeProbe::default()
        };
        let result = probe.run(&mut w);
        assert_eq!(result.purge_week, vec![None], "never purged within horizon");
    }

    #[test]
    fn deny_policy_provider_purges_immediately() {
        let mut w = world();
        // Fastly terminates cleanly: the very first weekly probe is dark.
        // Fastly is CNAME-only, so probe with a CNAME enrollment by hand.
        let site = w
            .sites()
            .iter()
            .find(|s| s.state == SiteState::SelfHosted)
            .unwrap()
            .clone();
        w.force_join(
            site.id,
            ProviderId::Fastly,
            ReroutingMethod::Cname,
            ServicePlan::Pro,
        );
        let token = w
            .provider(ProviderId::Fastly)
            .account(&site.apex)
            .unwrap()
            .cname_token
            .clone()
            .unwrap();
        w.force_leave(site.id, true);
        w.step_days(7);
        let now = w.now();
        let server = w.provider(ProviderId::Fastly).ns_addresses()[0];
        let response = w
            .query(
                now,
                server,
                Region::Oregon,
                &Query::new(token, RecordType::A),
            )
            .expect("fastly answers NXDOMAIN inside its own domain");
        assert!(
            response.answers.is_empty(),
            "no residual at deny-policy providers"
        );
    }

    #[test]
    fn consistency_check() {
        assert!(PurgeProbeResult {
            purge_week: vec![Some(4), Some(4), Some(4)]
        }
        .is_consistent());
        assert!(!PurgeProbeResult {
            purge_week: vec![Some(4), Some(5)]
        }
        .is_consistent());
        assert!(PurgeProbeResult { purge_week: vec![] }.is_consistent());
    }
}
