//! HTTP transport abstraction and message types.

use std::fmt;
use std::net::Ipv4Addr;

use remnant_obs::{transport_counters, Instrumented, MetricKey};
use remnant_sim::SimTime;

use crate::page::HtmlDocument;

/// HTTP status codes used in the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum HttpStatus {
    /// 200.
    Ok,
    /// 403 — origin firewall rejected the client.
    Forbidden,
    /// 404 — host or path not served here.
    NotFound,
    /// 502 — an edge could not reach its configured origin.
    BadGateway,
}

impl HttpStatus {
    /// The numeric code.
    pub const fn code(self) -> u16 {
        match self {
            HttpStatus::Ok => 200,
            HttpStatus::Forbidden => 403,
            HttpStatus::NotFound => 404,
            HttpStatus::BadGateway => 502,
        }
    }

    /// The coarse class of this status.
    ///
    /// `HttpStatus` is `#[non_exhaustive]`, so downstream crates cannot
    /// match it exhaustively. Classify through this method instead of a
    /// variant match: it buckets by numeric range, so a variant added
    /// later lands in a class instead of silently falling into whatever
    /// `_` arm a caller happened to write.
    pub const fn class(self) -> StatusClass {
        match self.code() {
            200..=299 => StatusClass::Success,
            400..=499 => StatusClass::ClientError,
            _ => StatusClass::ServerError,
        }
    }
}

/// Coarse response classification for counters and downstream matches.
///
/// Unlike [`HttpStatus`] this enum is exhaustive by design: every code —
/// including ones added to `HttpStatus` later — maps to exactly one class
/// via [`HttpStatus::class`], so matching on it needs no wildcard arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StatusClass {
    /// 2xx.
    Success,
    /// 4xx.
    ClientError,
    /// 5xx, and conservatively any code outside the modeled ranges.
    ServerError,
}

impl StatusClass {
    /// Stable label for metric dimensions.
    pub const fn label(self) -> &'static str {
        match self {
            StatusClass::Success => "success",
            StatusClass::ClientError => "client_error",
            StatusClass::ServerError => "server_error",
        }
    }
}

impl fmt::Display for StatusClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl fmt::Display for HttpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A GET request: source address, virtual host, and path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// The client's source address (origin firewalls filter on this).
    pub src: Ipv4Addr,
    /// The `Host:` header.
    pub host: String,
    /// The request path (the study only fetches landing pages, `/`).
    pub path: String,
}

impl HttpRequest {
    /// A landing-page request from `src` for `host`.
    pub fn landing(src: Ipv4Addr, host: impl Into<String>) -> Self {
        HttpRequest {
            src,
            host: host.into(),
            path: "/".to_owned(),
        }
    }
}

impl fmt::Display for HttpRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GET {} Host:{} (from {})",
            self.path, self.host, self.src
        )
    }
}

/// A response: status, optional document, and the address that served it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: HttpStatus,
    /// Rendered page on 200, `None` otherwise.
    pub document: Option<HtmlDocument>,
    /// The address of the server that produced the response.
    pub served_by: Ipv4Addr,
}

impl HttpResponse {
    /// A 200 response with `document` served by `served_by`.
    pub fn ok(document: HtmlDocument, served_by: Ipv4Addr) -> Self {
        HttpResponse {
            status: HttpStatus::Ok,
            document: Some(document),
            served_by,
        }
    }

    /// An empty non-200 response.
    pub fn status(status: HttpStatus, served_by: Ipv4Addr) -> Self {
        HttpResponse {
            status,
            document: None,
            served_by,
        }
    }

    /// True if the response carries a document.
    pub fn is_ok(&self) -> bool {
        self.status == HttpStatus::Ok && self.document.is_some()
    }
}

/// Delivers HTTP GETs to servers by IP address.
///
/// `None` models a connection that never completes (dropped SYN, firewall
/// DROP) — distinct from an explicit error status.
pub trait HttpTransport {
    /// Sends `request` to the server at `dst` at virtual time `now`.
    fn get(&mut self, now: SimTime, dst: Ipv4Addr, request: &HttpRequest) -> Option<HttpResponse>;
}

/// Fetch counters on the unified `transport.*` surface.
///
/// `ignored` (sent minus answered) counts connections that never
/// completed — dropped SYNs and firewall DROPs, the `None` returns of
/// [`HttpTransport::get`]. Answered fetches are further broken down by
/// [`StatusClass`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// GETs issued.
    pub sent: u64,
    /// GETs that produced any response, success or error.
    pub answered: u64,
    /// Responses with a 2xx status.
    pub success: u64,
    /// Responses with a 4xx status.
    pub client_error: u64,
    /// Responses with a 5xx (or unclassified) status.
    pub server_error: u64,
}

impl FetchStats {
    /// Fetches that never completed (`sent - answered`).
    pub const fn ignored(&self) -> u64 {
        self.sent.saturating_sub(self.answered)
    }

    /// Tallies one [`HttpTransport::get`] outcome.
    pub fn record(&mut self, response: Option<&HttpResponse>) {
        self.sent += 1;
        let Some(response) = response else { return };
        self.answered += 1;
        match response.status.class() {
            StatusClass::Success => self.success += 1,
            StatusClass::ClientError => self.client_error += 1,
            StatusClass::ServerError => self.server_error += 1,
        }
    }
}

impl Instrumented for FetchStats {
    fn component(&self) -> &'static str {
        "http.transport"
    }

    fn counters(&self) -> Vec<(MetricKey, u64)> {
        let mut counters = transport_counters(self.sent, self.answered);
        for (class, count) in [
            (StatusClass::Success, self.success),
            (StatusClass::ClientError, self.client_error),
            (StatusClass::ServerError, self.server_error),
        ] {
            counters.push((
                MetricKey::labeled("http.responses", &[("class", class.label())]),
                count,
            ));
        }
        counters
    }
}

/// Wraps an [`HttpTransport`] and tallies every fetch into [`FetchStats`].
///
/// The HTTP twin of the DNS layer's `CountingTransport`: scanners that
/// need per-run fetch telemetry wrap their transport in this instead of
/// keeping private tallies.
#[derive(Debug)]
pub struct CountingHttpTransport<'a, T> {
    inner: &'a mut T,
    stats: FetchStats,
}

impl<'a, T: HttpTransport> CountingHttpTransport<'a, T> {
    /// Wraps `inner`, starting all counters at zero.
    pub fn new(inner: &'a mut T) -> Self {
        CountingHttpTransport {
            inner,
            stats: FetchStats::default(),
        }
    }

    /// The counters accumulated so far.
    pub fn fetch_stats(&self) -> FetchStats {
        self.stats
    }
}

impl<T: HttpTransport> HttpTransport for CountingHttpTransport<'_, T> {
    fn get(&mut self, now: SimTime, dst: Ipv4Addr, request: &HttpRequest) -> Option<HttpResponse> {
        let response = self.inner.get(now, dst, request);
        self.stats.record(response.as_ref());
        response
    }
}

impl<T: HttpTransport> Instrumented for CountingHttpTransport<'_, T> {
    fn component(&self) -> &'static str {
        "http.counting_transport"
    }

    fn counters(&self) -> Vec<(MetricKey, u64)> {
        self.stats.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageTemplate;

    #[test]
    fn status_codes() {
        assert_eq!(HttpStatus::Ok.code(), 200);
        assert_eq!(HttpStatus::Forbidden.code(), 403);
        assert_eq!(HttpStatus::NotFound.code(), 404);
        assert_eq!(HttpStatus::BadGateway.code(), 502);
        assert_eq!(HttpStatus::Ok.to_string(), "200");
    }

    #[test]
    fn landing_request_defaults_to_root_path() {
        let req = HttpRequest::landing(Ipv4Addr::new(1, 2, 3, 4), "www.example.com");
        assert_eq!(req.path, "/");
        assert_eq!(req.host, "www.example.com");
    }

    #[test]
    fn ok_response_carries_document() {
        let doc = PageTemplate::generate("example.com", 1).render(0);
        let resp = HttpResponse::ok(doc, Ipv4Addr::new(5, 5, 5, 5));
        assert!(resp.is_ok());
        assert_eq!(resp.served_by, Ipv4Addr::new(5, 5, 5, 5));
    }

    #[test]
    fn error_response_has_no_document() {
        let resp = HttpResponse::status(HttpStatus::NotFound, Ipv4Addr::new(5, 5, 5, 5));
        assert!(!resp.is_ok());
        assert!(resp.document.is_none());
    }

    #[test]
    fn every_status_classifies_without_a_variant_match() {
        // The non_exhaustive audit: downstream code must never match
        // HttpStatus variants directly. class() buckets by code range, so
        // every current variant — and any added later — lands in a class.
        for status in [
            HttpStatus::Ok,
            HttpStatus::Forbidden,
            HttpStatus::NotFound,
            HttpStatus::BadGateway,
        ] {
            let class = status.class();
            match status.code() {
                200..=299 => assert_eq!(class, StatusClass::Success),
                400..=499 => assert_eq!(class, StatusClass::ClientError),
                _ => assert_eq!(class, StatusClass::ServerError),
            }
        }
        assert_eq!(StatusClass::Success.label(), "success");
        assert_eq!(StatusClass::ServerError.to_string(), "server_error");
    }

    /// A transport answering from a fixed script of responses.
    struct Scripted(Vec<Option<HttpResponse>>);

    impl HttpTransport for Scripted {
        fn get(&mut self, _: SimTime, _: Ipv4Addr, _: &HttpRequest) -> Option<HttpResponse> {
            self.0.remove(0)
        }
    }

    #[test]
    fn counting_transport_tallies_classes_and_drops() {
        let served_by = Ipv4Addr::new(5, 5, 5, 5);
        let doc = PageTemplate::generate("example.com", 1).render(0);
        let mut inner = Scripted(vec![
            Some(HttpResponse::ok(doc, served_by)),
            Some(HttpResponse::status(HttpStatus::Forbidden, served_by)),
            Some(HttpResponse::status(HttpStatus::BadGateway, served_by)),
            None,
        ]);
        let mut transport = CountingHttpTransport::new(&mut inner);
        let req = HttpRequest::landing(Ipv4Addr::new(1, 2, 3, 4), "www.example.com");
        for _ in 0..4 {
            let _ = transport.get(SimTime::EPOCH, served_by, &req);
        }
        let stats = transport.fetch_stats();
        assert_eq!(stats.sent, 4);
        assert_eq!(stats.answered, 3);
        assert_eq!(stats.ignored(), 1);
        assert_eq!(
            (stats.success, stats.client_error, stats.server_error),
            (1, 1, 1)
        );

        let mut registry = remnant_obs::MetricsRegistry::new();
        stats.export_into(&mut registry);
        assert_eq!(
            registry.counter_key(&MetricKey::labeled(
                remnant_obs::TRANSPORT_IGNORED,
                &[("component", "http.transport")],
            )),
            1
        );
        assert_eq!(
            registry.counter_key(&MetricKey::labeled(
                "http.responses",
                &[("class", "client_error"), ("component", "http.transport")],
            )),
            1
        );
    }
}
