//! Work-claiming primitives: the shard injector queue and the positional
//! result slots.
//!
//! Together these two types carry the engine's determinism contract
//! through arbitrary scheduling. A sweep plans its shard list up front
//! ([`crate::plan_shards`] — a pure function of the item count and shard
//! size), then:
//!
//! * every worker thread pulls its next shard from one shared
//!   [`ShardQueue`] — a single atomic cursor over the planned list, so a
//!   slow shard never strands the work behind it on the same thread the
//!   way a static contiguous worker-range split would;
//! * every finished shard writes its result into the [`SlotVec`] slot for
//!   its *position in the plan*, never "the next free slot" — so the
//!   merged output reads back in plan order no matter which thread
//!   finished which shard first.
//!
//! Claim order is observable only through wall-clock timings. Everything
//! else — outputs, stats, RNG streams, metrics — is a function of the
//! shard index alone, which is what the adversarial-scheduling proptests
//! pin down.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A claim handed out by [`ShardQueue::claim`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardClaim {
    /// Position of the claimed entry in the queue's planned list. Results
    /// for this claim must be written to [`SlotVec`] slot `pos`.
    pub pos: usize,
    /// The claimed shard's index in the full shard plan (the value stored
    /// at `pos`). This is the shard's *identity*: it selects the item
    /// range, the RNG stream, and the `ShardStats::shard` label.
    pub shard: usize,
}

/// The shared shard injector: a lock-free multi-consumer queue over a
/// planned shard list.
///
/// Workers call [`claim`](ShardQueue::claim) until it returns `None`.
/// Each planned entry is handed out exactly once; the hand-out *order* is
/// first-come-first-served and therefore nondeterministic under real
/// scheduling — which is fine, because claims carry their plan position
/// and results are merged positionally.
#[derive(Debug)]
pub struct ShardQueue<'plan> {
    selected: &'plan [usize],
    next: AtomicUsize,
}

impl<'plan> ShardQueue<'plan> {
    /// A queue over `selected`, a (sorted, deduped) list of shard indices
    /// from the sweep's shard plan.
    pub fn new(selected: &'plan [usize]) -> Self {
        ShardQueue {
            selected,
            next: AtomicUsize::new(0),
        }
    }

    /// Claims the next unclaimed shard, or `None` when the plan is drained.
    pub fn claim(&self) -> Option<ShardClaim> {
        let pos = self.next.fetch_add(1, Ordering::Relaxed);
        let shard = *self.selected.get(pos)?;
        Some(ShardClaim { pos, shard })
    }

    /// Number of entries in the planned list (claimed or not).
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// Whether the planned list is empty.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }
}

/// Positionally-indexed write-once result slots.
///
/// One slot per planned shard; each slot accepts exactly one value, from
/// whichever thread finished that shard. [`into_vec`](SlotVec::into_vec)
/// reads the slots back in plan order — the positional merge that makes
/// sweep output independent of claim order.
/// Internally each slot is a tiny mutex over an option rather than a
/// `OnceLock`: a slot is written exactly once and read only after every
/// writer has joined, so the lock is never contended — but unlike
/// `OnceLock` it only asks `T: Send` of the payload, matching the
/// engine's output bound.
#[derive(Debug)]
pub struct SlotVec<T> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T> SlotVec<T> {
    /// `len` empty slots.
    pub fn new(len: usize) -> Self {
        let mut slots = Vec::with_capacity(len);
        slots.resize_with(len, || Mutex::new(None));
        SlotVec { slots }
    }

    /// Fills slot `pos`. Shared-reference write: many threads fill
    /// disjoint slots concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range or the slot was already filled —
    /// both are scheduler bugs (a shard claimed twice), never data races.
    pub fn set(&self, pos: usize, value: T) {
        let mut slot = self.slots[pos].lock().expect("slot lock poisoned");
        if slot.is_some() {
            panic!("slot {pos} filled twice: a shard was claimed by two workers");
        }
        *slot = Some(value);
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Consumes the slots in plan order.
    ///
    /// # Panics
    ///
    /// Panics if any slot is still empty — every claim must have produced
    /// a result before the merge.
    pub fn into_vec(self) -> Vec<T> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(pos, slot)| {
                slot.into_inner()
                    .expect("slot lock poisoned")
                    .unwrap_or_else(|| panic!("slot {pos} never filled: a claimed shard vanished"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_hands_out_each_entry_exactly_once() {
        let selected = [3usize, 5, 9];
        let queue = ShardQueue::new(&selected);
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.claim(), Some(ShardClaim { pos: 0, shard: 3 }));
        assert_eq!(queue.claim(), Some(ShardClaim { pos: 1, shard: 5 }));
        assert_eq!(queue.claim(), Some(ShardClaim { pos: 2, shard: 9 }));
        assert_eq!(queue.claim(), None);
        assert_eq!(queue.claim(), None, "drained queues stay drained");
    }

    #[test]
    fn concurrent_claims_partition_the_plan() {
        let selected: Vec<usize> = (0..1000).collect();
        let queue = ShardQueue::new(&selected);
        let claimed: Vec<Vec<ShardClaim>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        while let Some(claim) = queue.claim() {
                            mine.push(claim);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<ShardClaim> = claimed.into_iter().flatten().collect();
        all.sort_by_key(|c| c.pos);
        assert_eq!(all.len(), 1000, "every entry claimed exactly once");
        for (expect, claim) in all.iter().enumerate() {
            assert_eq!(claim.pos, expect);
            assert_eq!(claim.shard, expect);
        }
    }

    #[test]
    fn slots_merge_in_plan_order_not_completion_order() {
        let slots = SlotVec::new(4);
        slots.set(2, "c");
        slots.set(0, "a");
        slots.set(3, "d");
        slots.set(1, "b");
        assert_eq!(slots.into_vec(), ["a", "b", "c", "d"]);
    }

    #[test]
    #[should_panic(expected = "filled twice")]
    fn double_fill_is_a_scheduler_bug() {
        let slots = SlotVec::new(1);
        slots.set(0, 1u32);
        slots.set(0, 2u32);
    }

    #[test]
    #[should_panic(expected = "never filled")]
    fn missing_result_is_a_scheduler_bug() {
        let slots: SlotVec<u32> = SlotVec::new(2);
        slots.set(0, 1);
        let _ = slots.into_vec();
    }
}
