//! Exposure timelines across weekly scans (Table VI totals and Fig 9).

use std::collections::BTreeSet;

use crate::residual::filters::WeeklyScanReport;

/// Aggregates weekly scan reports into the paper's summary statistics.
#[derive(Clone, Debug, Default)]
pub struct ExposureTracker {
    /// Per-week (hidden ranks, verified ranks).
    weeks: Vec<(BTreeSet<usize>, BTreeSet<usize>)>,
}

impl ExposureTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ExposureTracker::default()
    }

    /// Folds a sequence of weekly reports (in week order) into a tracker.
    ///
    /// This is the query-layer shape of the exposure analysis: a pure
    /// deterministic fold over the weekly scan outputs, usable both by
    /// the live study and by a replay from persisted campaign data.
    pub fn fold<'a>(reports: impl IntoIterator<Item = &'a WeeklyScanReport>) -> Self {
        let mut tracker = ExposureTracker::new();
        for report in reports {
            #[allow(deprecated)]
            tracker.push(report);
        }
        tracker
    }

    /// Feeds one weekly report (in week order).
    #[deprecated(
        since = "0.7.0",
        note = "build the tracker in one pass with `ExposureTracker::fold`"
    )]
    pub fn push(&mut self, report: &WeeklyScanReport) {
        let hidden = report.hidden.iter().map(|h| h.rank).collect();
        let verified = report.verified.iter().copied().collect();
        self.weeks.push((hidden, verified));
    }

    /// Number of weeks observed.
    pub fn week_count(&self) -> usize {
        self.weeks.len()
    }

    /// Per-week (hidden count, verified count, verified %) — the weekly
    /// rows of Table VI.
    pub fn weekly_rows(&self) -> Vec<(usize, usize, f64)> {
        self.weeks
            .iter()
            .map(|(hidden, verified)| {
                let pct = if hidden.is_empty() {
                    0.0
                } else {
                    verified.len() as f64 / hidden.len() as f64
                };
                (hidden.len(), verified.len(), pct)
            })
            .collect()
    }

    /// Distinct hidden records across all weeks (Table VI "Total").
    pub fn total_hidden(&self) -> usize {
        self.union_hidden().len()
    }

    /// Distinct verified origins across all weeks (Table VI "Total").
    pub fn total_verified(&self) -> usize {
        self.union_verified().len()
    }

    /// Total verified / total hidden, if any hidden records exist.
    pub fn total_verified_rate(&self) -> Option<f64> {
        let hidden = self.total_hidden();
        (hidden > 0).then(|| self.total_verified() as f64 / hidden as f64)
    }

    /// Verified origins first seen in week `w` (Fig 9 "newly exposed").
    /// Week 0 reports the initial pool.
    pub fn newly_exposed_per_week(&self) -> Vec<usize> {
        let mut seen = BTreeSet::new();
        self.weeks
            .iter()
            .map(|(_, verified)| {
                let new = verified.difference(&seen).count();
                seen.extend(verified.iter().copied());
                new
            })
            .collect()
    }

    /// Origins verified in *every* week (Fig 9's always-exposed cohort —
    /// exposure duration spanning the whole measurement).
    pub fn always_exposed(&self) -> usize {
        let Some((_, first)) = self.weeks.first() else {
            return 0;
        };
        let mut always = first.clone();
        for (_, verified) in &self.weeks[1..] {
            always = always.intersection(verified).copied().collect();
        }
        always.len()
    }

    /// Origins whose exposure both appeared and disappeared within the
    /// measurement: absent in the first week, present somewhere in the
    /// middle, absent again in the last week (Fig 9's bounded cohort).
    pub fn bounded_exposures(&self) -> usize {
        if self.weeks.len() < 3 {
            return 0;
        }
        let first = &self.weeks.first().expect("nonempty").1;
        let last = &self.weeks.last().expect("nonempty").1;
        self.union_verified()
            .into_iter()
            .filter(|rank| !first.contains(rank) && !last.contains(rank))
            .count()
    }

    fn union_hidden(&self) -> BTreeSet<usize> {
        self.weeks
            .iter()
            .flat_map(|(hidden, _)| hidden.iter().copied())
            .collect()
    }

    fn union_verified(&self) -> BTreeSet<usize> {
        self.weeks
            .iter()
            .flat_map(|(_, verified)| verified.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::residual::HiddenRecord;
    use remnant_provider::ProviderId;

    /// Builds a weekly report with the given hidden/verified rank sets.
    fn report(week: u32, hidden: &[usize], verified: &[usize]) -> WeeklyScanReport {
        WeeklyScanReport {
            provider: ProviderId::Cloudflare,
            week,
            retrieved: hidden.len() + 5,
            after_ip_matching: hidden.len(),
            hidden: hidden
                .iter()
                .map(|rank| HiddenRecord {
                    rank: *rank,
                    apex: format!("site{rank}.com").parse().unwrap(),
                    hidden: vec![[10, 0, 0, *rank as u8].into()],
                    public: vec![],
                })
                .collect(),
            verified: verified.to_vec(),
        }
    }

    fn tracker(weeks: &[(&[usize], &[usize])]) -> ExposureTracker {
        let reports: Vec<WeeklyScanReport> = weeks
            .iter()
            .enumerate()
            .map(|(i, (hidden, verified))| report(i as u32, hidden, verified))
            .collect();
        ExposureTracker::fold(&reports)
    }

    #[test]
    fn totals_deduplicate_across_weeks() {
        let t = tracker(&[
            (&[1, 2, 3], &[1, 2]),
            (&[2, 3, 4], &[2]),
            (&[3, 4, 5], &[3, 4]),
        ]);
        assert_eq!(t.total_hidden(), 5);
        assert_eq!(t.total_verified(), 4);
        assert!((t.total_verified_rate().unwrap() - 0.8).abs() < 1e-9);
        assert_eq!(t.week_count(), 3);
    }

    #[test]
    fn weekly_rows_report_percentages() {
        let t = tracker(&[(&[1, 2, 3, 4], &[1])]);
        let rows = t.weekly_rows();
        assert_eq!(rows, vec![(4, 1, 0.25)]);
    }

    #[test]
    fn newly_exposed_counts_first_appearances() {
        let t = tracker(&[
            (&[1, 2], &[1, 2]),
            (&[1, 2, 3], &[1, 3]),
            (&[1, 4], &[1, 2, 4]),
        ]);
        assert_eq!(t.newly_exposed_per_week(), vec![2, 1, 1]);
    }

    #[test]
    fn always_exposed_requires_every_week() {
        let t = tracker(&[(&[1, 2], &[1, 2]), (&[1, 2], &[1]), (&[1, 2], &[1, 2])]);
        assert_eq!(t.always_exposed(), 1);
    }

    #[test]
    fn bounded_exposures_exclude_first_and_last_week_members() {
        let t = tracker(&[
            (&[1], &[1]),       // week 0: site 1 already exposed
            (&[1, 2], &[1, 2]), // week 1: site 2 appears
            (&[1], &[1]),       // week 2: site 2 gone — bounded
        ]);
        assert_eq!(t.bounded_exposures(), 1);
        assert_eq!(t.always_exposed(), 1);
    }

    #[test]
    fn empty_tracker_is_all_zero() {
        let t = ExposureTracker::new();
        assert_eq!(t.total_hidden(), 0);
        assert_eq!(t.total_verified_rate(), None);
        assert_eq!(t.always_exposed(), 0);
        assert_eq!(t.bounded_exposures(), 0);
        assert!(t.newly_exposed_per_week().is_empty());
    }
}
