//! The central validation of this reproduction: the measurement pipeline
//! (which only sees DNS answers and HTTP bodies, like the authors') must
//! recover the synthetic world's ground truth.

use remnant::core::study::{PaperStudy, StudyConfig};
use remnant::provider::ProviderId;
use remnant::world::{BehaviorKind, World, WorldConfig};

fn generate(population: usize, seed: u64) -> World {
    World::generate(WorldConfig {
        population,
        seed,
        warmup_days: 14,
        calibration: remnant::world::Calibration::paper(),
    })
}

#[test]
fn measured_adoption_matches_ground_truth() {
    let mut world = generate(8_000, 1);
    let truth_enrolled = world
        .sites()
        .iter()
        .filter(|s| s.state.is_enrolled())
        .count();
    let report = PaperStudy::new(StudyConfig {
        weeks: 1,
        uneven_intervals: false,
        ..StudyConfig::default()
    })
    .run(&mut world);

    let measured = report.adoption().first_day_rate * 8_000.0;
    let diff = (measured - truth_enrolled as f64).abs();
    assert!(
        diff / (truth_enrolled as f64) < 0.02,
        "measured {measured} vs truth {truth_enrolled}"
    );
}

#[test]
fn measured_provider_shares_match_ground_truth() {
    let mut world = generate(12_000, 2);
    let truth_cf = world.provider(ProviderId::Cloudflare).customer_count() as f64;
    let truth_total: usize = ProviderId::ALL
        .iter()
        .map(|p| world.provider(*p).customer_count())
        .sum();
    let report = PaperStudy::new(StudyConfig {
        weeks: 1,
        uneven_intervals: false,
        ..StudyConfig::default()
    })
    .run(&mut world);

    let measured_cf = report.adoption().avg_by_provider[ProviderId::Cloudflare.index()].1;
    let measured_total: f64 = report
        .adoption()
        .avg_by_provider
        .iter()
        .map(|(_, n)| n)
        .sum();
    let truth_share = truth_cf / truth_total as f64;
    let measured_share = measured_cf / measured_total;
    assert!(
        (truth_share - measured_share).abs() < 0.03,
        "truth {truth_share} vs measured {measured_share}"
    );
}

#[test]
fn observed_behaviors_track_ground_truth_events() {
    let mut world = generate(30_000, 3);
    world.clear_events();
    let report = PaperStudy::new(StudyConfig {
        weeks: 3,
        uneven_intervals: false,
        ..StudyConfig::default()
    })
    .run(&mut world);

    // Ground truth events during the study window.
    let truth: std::collections::HashMap<BehaviorKind, usize> = BehaviorKind::ALL
        .into_iter()
        .map(|k| (k, world.events().iter().filter(|e| e.kind == k).count()))
        .collect();

    for kind in [BehaviorKind::Join, BehaviorKind::Leave] {
        let measured: f64 = report
            .behaviors()
            .series
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| s.points().iter().map(|(_, y)| y).sum())
            .unwrap_or(0.0);
        let truth_count = truth[&kind] as f64;
        assert!(truth_count > 0.0, "{kind}: no ground-truth events");
        // The daily diff misses same-day reversals and the last interval's
        // tail; allow generous tolerance but require the right magnitude.
        assert!(
            measured >= truth_count * 0.5 && measured <= truth_count * 1.15,
            "{kind}: measured {measured} vs truth {truth_count}"
        );
    }
    assert_eq!(report.behaviors().fsm_violations, 0);
}

#[test]
fn verified_origins_are_never_false_positives() {
    let mut world = generate(20_000, 4);
    let report = PaperStudy::new(StudyConfig {
        weeks: 2,
        uneven_intervals: false,
        ..StudyConfig::default()
    })
    .run(&mut world);

    // Every verified hidden record must point at an address that is (or
    // was) genuinely the site's origin — cross-check against the world.
    let mut checked = 0;
    for weekly in &report.residual().cloudflare.weekly {
        for record in &weekly.hidden {
            if !weekly.verified.contains(&record.rank) {
                continue;
            }
            let site = &world.sites()[record.rank];
            // The hidden address equals the site's current origin (kept
            // across the provider change) — the exact vulnerability.
            assert!(
                record.hidden.contains(&site.origin),
                "verified record for {} does not match its origin",
                site.apex
            );
            checked += 1;
        }
    }
    // At this scale and horizon at least a few must have been verified.
    assert!(checked > 0, "no verified origins to validate");
}

#[test]
fn hidden_records_only_come_from_past_cloudflare_customers() {
    let mut world = generate(20_000, 5);
    world.clear_events();
    let report = PaperStudy::new(StudyConfig {
        weeks: 2,
        uneven_intervals: false,
        ..StudyConfig::default()
    })
    .run(&mut world);

    for weekly in &report.residual().cloudflare.weekly {
        for record in &weekly.hidden {
            let site = &world.sites()[record.rank];
            let currently_cf = site.state.provider() == Some(ProviderId::Cloudflare);
            // A hidden record means the provider answered with a non-edge
            // address that public DNS does not serve: the site cannot be a
            // currently protected Cloudflare customer.
            let currently_active_cf = currently_cf && site.state.is_protected();
            assert!(
                !currently_active_cf,
                "{} is an active customer yet produced a hidden record",
                site.apex
            );
        }
    }
}

#[test]
fn deterministic_worlds_yield_deterministic_reports() {
    let run = |seed: u64| {
        let mut world = generate(3_000, seed);
        let report = PaperStudy::new(StudyConfig {
            weeks: 1,
            uneven_intervals: false,
            ..StudyConfig::default()
        })
        .run(&mut world);
        (
            report.adoption().overall_rate,
            report.residual().cloudflare.exposure.total_hidden(),
            report.unchanged().total.events,
        )
    };
    assert_eq!(run(77), run(77), "same seed, same report");
    assert_ne!(run(77), run(78), "different seed, different world");
}
