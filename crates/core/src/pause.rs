//! Pause-window tracking (Sec IV-C.1, Fig 5).
//!
//! A pause window is an exposure window: while a customer is OFF, the
//! provider's nameservers answer with the origin address. The tracker
//! consumes the daily classification series and extracts, per site, every
//! `ON → OFF → (ON | end)` interval.

use remnant_provider::ProviderId;
use remnant_sim::stats::Ecdf;
use remnant_sim::SimTime;

use crate::adoption::{Adoption, DpsStatus};

/// One completed or still-open pause window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PauseWindow {
    /// Site rank.
    pub rank: usize,
    /// The provider the pause started at.
    pub paused_at_provider: Option<ProviderId>,
    /// The provider the site resumed at (None while open or after leave).
    pub resumed_at_provider: Option<ProviderId>,
    /// When the OFF status was first observed.
    pub start: SimTime,
    /// Daily observation index at which OFF was first observed.
    pub start_observation: u32,
    /// When the site was next observed ON (None = never, window open).
    pub end: Option<SimTime>,
    /// Observation index at which ON reappeared (None while open).
    pub end_observation: Option<u32>,
}

impl PauseWindow {
    /// The window length counted in daily observations, matching the
    /// paper's day-granular measurement (a pause seen OFF in exactly one
    /// daily experiment is a one-day pause), if closed.
    pub fn duration_days(&self) -> Option<f64> {
        self.end_observation
            .map(|end| f64::from(end - self.start_observation))
    }

    /// The window length in fractional virtual days, if closed.
    pub fn duration_days_exact(&self) -> Option<f64> {
        self.end.map(|end| (end - self.start).as_days_f64())
    }

    /// True if pause and resume happened at the same provider.
    pub fn same_provider(&self) -> bool {
        self.paused_at_provider.is_some() && self.paused_at_provider == self.resumed_at_provider
    }
}

/// Streaming pause tracker over the daily classification series.
#[derive(Clone, Debug, Default)]
pub struct PauseTracker {
    /// Open pause start per site: (start time, observation index, provider).
    open: std::collections::HashMap<usize, (SimTime, u32, Option<ProviderId>)>,
    windows: Vec<PauseWindow>,
    prev: Option<Vec<Adoption>>,
    observations: u32,
}

impl PauseTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        PauseTracker::default()
    }

    /// Feeds one day of classifications, observed at `when`.
    pub fn observe(&mut self, when: SimTime, classifications: &[Adoption]) {
        let observation = self.observations;
        self.observations += 1;
        if let Some(prev) = &self.prev {
            assert_eq!(
                prev.len(),
                classifications.len(),
                "classification series must cover the same targets"
            );
            for (rank, (before, after)) in prev.iter().zip(classifications).enumerate() {
                match (before.status, after.status) {
                    (DpsStatus::On, DpsStatus::Off) => {
                        self.open.insert(rank, (when, observation, after.provider));
                    }
                    (DpsStatus::Off, DpsStatus::On) => {
                        if let Some((start, start_observation, provider)) = self.open.remove(&rank)
                        {
                            self.windows.push(PauseWindow {
                                rank,
                                paused_at_provider: provider,
                                resumed_at_provider: after.provider,
                                start,
                                start_observation,
                                end: Some(when),
                                end_observation: Some(observation),
                            });
                        }
                    }
                    (DpsStatus::Off, DpsStatus::None) => {
                        // Left while paused: window closes unresolved.
                        if let Some((start, start_observation, provider)) = self.open.remove(&rank)
                        {
                            self.windows.push(PauseWindow {
                                rank,
                                paused_at_provider: provider,
                                resumed_at_provider: None,
                                start,
                                start_observation,
                                end: None,
                                end_observation: None,
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
        self.prev = Some(classifications.to_vec());
    }

    /// All windows closed so far.
    pub fn windows(&self) -> &[PauseWindow] {
        &self.windows
    }

    /// Number of still-open pauses.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// The Fig 5 "Overall" CDF: every completed pause period in days.
    ///
    /// The pause analysis now runs through the shared snapshot fold
    /// (`SnapshotPasses`), which assembles the whole Fig 5 report in one
    /// pass; this per-CDF entry point remains as a shim over
    /// [`windows`](Self::windows).
    #[deprecated(
        since = "0.7.0",
        note = "take the Fig 5 report from `SnapshotPasses::finish` (or a query `PausePlan`)"
    )]
    pub fn cdf_overall(&self) -> Ecdf {
        self.windows
            .iter()
            .filter_map(PauseWindow::duration_days)
            .collect()
    }

    /// The Fig 5 per-provider CDF: pause periods where PAUSE and RESUME
    /// happened at `provider` — a shim like
    /// [`cdf_overall`](Self::cdf_overall).
    #[deprecated(
        since = "0.7.0",
        note = "take the Fig 5 report from `SnapshotPasses::finish` (or a query `PausePlan`)"
    )]
    pub fn cdf_for(&self, provider: ProviderId) -> Ecdf {
        self.windows
            .iter()
            .filter(|w| w.same_provider() && w.paused_at_provider == Some(provider))
            .filter_map(PauseWindow::duration_days)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    // The deprecated per-CDF shims stay covered until they are removed.
    #![allow(deprecated)]

    use super::*;
    use remnant_provider::ReroutingMethod;
    use remnant_sim::SimTime;

    const CF: ProviderId = ProviderId::Cloudflare;
    const INC: ProviderId = ProviderId::Incapsula;

    fn on(p: ProviderId) -> Adoption {
        Adoption {
            provider: Some(p),
            status: DpsStatus::On,
            rerouting: Some(ReroutingMethod::Ns),
        }
    }

    fn off(p: ProviderId) -> Adoption {
        Adoption {
            provider: Some(p),
            status: DpsStatus::Off,
            rerouting: Some(ReroutingMethod::Ns),
        }
    }

    fn day(n: u64) -> SimTime {
        SimTime::from_days(n)
    }

    #[test]
    fn closed_window_measures_duration() {
        // Daily observations: ON, OFF, OFF, OFF, ON — a three-day pause.
        let mut tracker = PauseTracker::new();
        tracker.observe(day(0), &[on(CF)]);
        tracker.observe(day(1), &[off(CF)]);
        tracker.observe(day(2), &[off(CF)]);
        tracker.observe(day(3), &[off(CF)]);
        tracker.observe(day(4), &[on(CF)]);
        assert_eq!(tracker.windows().len(), 1);
        let w = &tracker.windows()[0];
        assert_eq!(w.duration_days(), Some(3.0));
        assert_eq!(w.duration_days_exact(), Some(3.0));
        assert!(w.same_provider());
        assert_eq!(tracker.open_count(), 0);
    }

    #[test]
    fn one_observation_pause_counts_one_day_despite_long_intervals() {
        // The paper's uneven 20–30h intervals: a site OFF in exactly one
        // daily experiment paused for one day, even if the wall-clock gap
        // was 30 hours.
        let mut tracker = PauseTracker::new();
        tracker.observe(SimTime::from_secs(0), &[on(CF)]);
        tracker.observe(SimTime::from_secs(30 * 3600), &[off(CF)]);
        tracker.observe(SimTime::from_secs(60 * 3600), &[on(CF)]);
        let w = &tracker.windows()[0];
        assert_eq!(w.duration_days(), Some(1.0));
        assert_eq!(w.duration_days_exact(), Some(1.25));
    }

    #[test]
    fn open_window_is_not_counted_in_cdf() {
        let mut tracker = PauseTracker::new();
        tracker.observe(day(0), &[on(CF)]);
        tracker.observe(day(1), &[off(CF)]);
        tracker.observe(day(2), &[off(CF)]);
        assert_eq!(tracker.open_count(), 1);
        assert!(tracker.cdf_overall().is_empty());
    }

    #[test]
    fn pause_at_one_provider_resume_at_another_counts_overall_only() {
        // The paper's "Overall" includes cross-provider pause/resume pairs.
        let mut tracker = PauseTracker::new();
        tracker.observe(day(0), &[on(CF)]);
        tracker.observe(day(1), &[off(CF)]);
        tracker.observe(day(3), &[on(INC)]);
        assert_eq!(tracker.windows().len(), 1);
        assert!(!tracker.windows()[0].same_provider());
        assert_eq!(tracker.cdf_overall().len(), 1);
        assert!(tracker.cdf_for(CF).is_empty());
        assert!(tracker.cdf_for(INC).is_empty());
    }

    #[test]
    fn leave_while_paused_closes_without_duration() {
        let mut tracker = PauseTracker::new();
        tracker.observe(day(0), &[on(INC)]);
        tracker.observe(day(1), &[off(INC)]);
        tracker.observe(day(2), &[Adoption::NONE]);
        assert_eq!(tracker.windows().len(), 1);
        assert_eq!(tracker.windows()[0].duration_days(), None);
        assert!(tracker.cdf_overall().is_empty());
    }

    #[test]
    fn multiple_pauses_accumulate() {
        let mut tracker = PauseTracker::new();
        tracker.observe(day(0), &[on(CF)]);
        tracker.observe(day(1), &[off(CF)]);
        tracker.observe(day(2), &[on(CF)]);
        for d in 3..9 {
            tracker.observe(day(d), &[off(CF)]);
        }
        tracker.observe(day(9), &[on(CF)]);
        assert_eq!(tracker.windows().len(), 2);
        let mut cdf = tracker.cdf_for(CF);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.quantile(1.0), Some(6.0));
        assert_eq!(cdf.fraction_gt(5.0), 0.5);
    }
}
