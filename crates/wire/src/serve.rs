//! A servable resolver front: wire frames in, wire frames out.
//!
//! Three pieces stack up here:
//!
//! * [`DnsService`] — the answer source. [`ResolverService`] adapts the
//!   dns crate's [`RecursiveResolver`] over any transport (typically the
//!   simulated world), and any `Fn(&Query) -> Option<Response>` works for
//!   tests.
//! * [`ServerCore`] — the transport-independent datapath. It parses a
//!   request frame, answers from a cache of fully *encoded* responses
//!   (the hot path is a header check, one stack-buffer name expansion,
//!   one map lookup, and an ID patch — no allocation beyond the reply
//!   copy), and falls back to the service on a miss. UDP replies longer
//!   than 512 bytes are replaced by a TC-bit truncation stub so clients
//!   retry over TCP.
//! * [`WireServer`] — real sockets. One UDP worker and a TCP accept loop
//!   (2-byte length-prefixed framing, one thread per connection) drive
//!   the same `ServerCore`, so the socket layer adds no semantics.
//!
//! Semantics for imperfect input mirror a conservative production
//! resolver, within the simulation's RCODE vocabulary (no FORMERR):
//! frames too short to carry a header, response frames, and unparseable
//! question names are **dropped**; parseable-but-unsupported requests
//! (non-QUERY opcode, QDCOUNT ≠ 1, unknown QTYPE, non-IN class) get
//! REFUSED; and a service answer of `None` — the paper's "ignored query"
//! behavior — is a drop, observable as a client timeout.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use remnant_dns::{
    empty_record_set, DnsTransport, DomainName, Query, Rcode, RecordType, RecursiveResolver,
    Response, ShardableTransport,
};
use remnant_net::Region;
use remnant_obs::{Instrumented, MetricKey};
use remnant_sim::SimTime;

use crate::message::{patch_id, Message};
use crate::name::{decode_name_into, NameScratch};
use crate::types::{rtype_from_wire, HEADER_LEN, MAX_UDP_PAYLOAD};

/// Largest request frame the server will read (UDP datagram or TCP
/// frame). Queries are tiny; this is purely a safety bound.
const MAX_REQUEST: usize = 4096;

/// How long socket loops sleep/wait before re-checking the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Read timeout for in-flight TCP connections.
const TCP_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Something that can answer DNS queries. `None` models an ignored
/// query — the residual-resolution behavior the paper measures — and
/// surfaces to clients as a timeout.
pub trait DnsService: Send + Sync {
    /// Answers `query`, or ignores it.
    fn answer(&self, query: &Query) -> Option<Response>;
}

impl<F: Fn(&Query) -> Option<Response> + Send + Sync> DnsService for F {
    fn answer(&self, query: &Query) -> Option<Response> {
        self(query)
    }
}

/// A [`DnsTransport`] over a shared [`ShardableTransport`], so an
/// `Arc<World>` can back a long-running daemon without borrowing.
#[derive(Clone, Debug)]
pub struct SharedTransport<T>(pub Arc<T>);

impl<T: ShardableTransport> DnsTransport for SharedTransport<T> {
    fn root(&self) -> std::net::Ipv4Addr {
        self.0.root()
    }

    fn query(
        &mut self,
        now: SimTime,
        server: std::net::Ipv4Addr,
        region: Region,
        query: &Query,
    ) -> Option<Response> {
        self.0.query_shared(now, server, region, query)
    }
}

/// A [`DnsService`] that runs the recursive resolver over a transport.
///
/// The resolver and transport sit behind one mutex: the server's cache
/// absorbs the high-volume path, so the service lock is only taken on
/// cold names. The resolver carries its own virtual clock — the daemon
/// serves whatever instant that clock reads, matching what an
/// in-process `resolve()` at the same instant returns.
pub struct ResolverService<T> {
    inner: Mutex<(RecursiveResolver, T)>,
}

impl<T: DnsTransport + Send> ResolverService<T> {
    /// Serves answers resolved through `resolver` over `transport`.
    pub fn new(resolver: RecursiveResolver, transport: T) -> Self {
        ResolverService {
            inner: Mutex::new((resolver, transport)),
        }
    }
}

impl<T: DnsTransport + Send> DnsService for ResolverService<T> {
    fn answer(&self, query: &Query) -> Option<Response> {
        let mut guard = self.inner.lock().expect("resolver service lock");
        let (resolver, transport) = &mut *guard;
        match resolver.resolve(transport, &query.name, query.rtype) {
            Ok(resolution) => Some(Response {
                query: query.clone(),
                rcode: resolution.rcode,
                authoritative: false,
                answers: resolution.records.into(),
                authority: empty_record_set(),
                additional: empty_record_set(),
            }),
            // Resolution errors (every nameserver ignored us, CNAME
            // loops, …) are what a recursive server reports as SERVFAIL.
            Err(_) => Some(Response {
                query: query.clone(),
                rcode: Rcode::ServFail,
                authoritative: false,
                answers: empty_record_set(),
                authority: empty_record_set(),
                additional: empty_record_set(),
            }),
        }
    }
}

/// One per-name cache row: a slot per [`RecordType::ALL`] entry.
#[derive(Clone, Default)]
enum CacheSlot {
    /// Never asked the service.
    #[default]
    Unknown,
    /// The service ignored this query; keep ignoring it.
    Ignored,
    /// Fully encoded response frame with transaction ID zero.
    Frame(Arc<[u8]>),
}

type CacheRow = [CacheSlot; RecordType::ALL.len()];

/// Deterministic counters for the serve datapath.
#[derive(Debug, Default)]
struct ServeCounters {
    udp_queries: AtomicU64,
    tcp_queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    truncated: AtomicU64,
    refused: AtomicU64,
    malformed: AtomicU64,
    ignored: AtomicU64,
}

/// The transport-independent request datapath with its encoded-response
/// cache. Wrap it in an `Arc` and share it between socket workers (and
/// benchmarks, which drive [`handle_udp`](ServerCore::handle_udp)
/// directly).
pub struct ServerCore<S> {
    service: S,
    cache: RwLock<HashMap<Box<str>, CacheRow>>,
    counters: ServeCounters,
}

impl<S: DnsService> ServerCore<S> {
    /// A core answering from `service`.
    pub fn new(service: S) -> Self {
        ServerCore {
            service,
            cache: RwLock::new(HashMap::new()),
            counters: ServeCounters::default(),
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Handles one UDP datagram. `None` means no reply is sent (the
    /// query is dropped). Replies longer than 512 bytes come back as a
    /// TC-bit truncation stub.
    pub fn handle_udp(&self, datagram: &[u8]) -> Option<Vec<u8>> {
        self.counters.udp_queries.fetch_add(1, Ordering::Relaxed);
        self.handle(datagram, Some(MAX_UDP_PAYLOAD))
    }

    /// Handles one TCP-framed request (without the 2-byte length
    /// prefix). No truncation: TCP replies carry the full message.
    pub fn handle_tcp(&self, frame: &[u8]) -> Option<Vec<u8>> {
        self.counters.tcp_queries.fetch_add(1, Ordering::Relaxed);
        self.handle(frame, None)
    }

    /// Pre-resolves `name`/`rtype` into the encoded-answer cache, so
    /// benchmarks and tests can separate cold resolution from the serve
    /// hot path.
    pub fn warm(&self, query: &Query) {
        let _ = self.lookup_or_resolve(query.name.as_str(), query.rtype);
    }

    fn handle(&self, packet: &[u8], udp_limit: Option<usize>) -> Option<Vec<u8>> {
        if packet.len() < HEADER_LEN || packet.len() > MAX_REQUEST {
            return self.malformed();
        }
        let id = u16::from_be_bytes([packet[0], packet[1]]);
        let flags = u16::from_be_bytes([packet[2], packet[3]]);
        if flags & 0x8000 != 0 {
            // A response frame; nothing to answer.
            return self.malformed();
        }
        let rd = flags & (1 << 8) != 0;
        let counts: Vec<u16> = (0..4)
            .map(|i| u16::from_be_bytes([packet[4 + 2 * i], packet[5 + 2 * i]]))
            .collect();
        let opcode = (flags >> 11) & 0xF;
        if opcode != 0 || counts != [1, 0, 0, 0] {
            self.counters.refused.fetch_add(1, Ordering::Relaxed);
            return Some(refused_reply(id, rd, None));
        }
        let mut scratch = NameScratch::new();
        let (name, after) = match decode_name_into(packet, HEADER_LEN, &mut scratch) {
            Ok(parsed) => parsed,
            Err(_) => return self.malformed(),
        };
        if packet.len() != after + 4 {
            // QTYPE + QCLASS must close the frame exactly.
            return self.malformed();
        }
        let qtype_raw = u16::from_be_bytes([packet[after], packet[after + 1]]);
        let qclass = u16::from_be_bytes([packet[after + 2], packet[after + 3]]);
        let question = &packet[HEADER_LEN..];
        let refuse = |counter: &AtomicU64| {
            counter.fetch_add(1, Ordering::Relaxed);
            Some(refused_reply(id, rd, Some(question)))
        };
        if qclass != crate::types::CLASS_IN {
            return refuse(&self.counters.refused);
        }
        let rtype = match rtype_from_wire(qtype_raw, after) {
            Ok(rtype) => rtype,
            // Typed Unsupported internally; REFUSED on the wire (the
            // model has no NOTIMP).
            Err(_) => return refuse(&self.counters.refused),
        };
        let frame = match self.lookup_or_resolve(name, rtype) {
            Lookup::Frame(frame) => frame,
            Lookup::Ignored => {
                self.counters.ignored.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Lookup::Refused => return refuse(&self.counters.refused),
        };
        if let Some(limit) = udp_limit {
            if frame.len() > limit {
                self.counters.truncated.fetch_add(1, Ordering::Relaxed);
                return Some(truncated_reply(id, rd, question));
            }
        }
        let mut reply = frame.to_vec();
        patch_id(&mut reply, id);
        Some(reply)
    }

    fn malformed(&self) -> Option<Vec<u8>> {
        self.counters.malformed.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn lookup_or_resolve(&self, name: &str, rtype: RecordType) -> Lookup {
        let index = RecordType::ALL
            .iter()
            .position(|&t| t == rtype)
            .expect("rtype_from_wire returns modeled types");
        if let Some(row) = self.cache.read().expect("serve cache lock").get(name) {
            match &row[index] {
                CacheSlot::Frame(frame) => {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Frame(Arc::clone(frame));
                }
                CacheSlot::Ignored => {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Ignored;
                }
                CacheSlot::Unknown => {}
            }
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        let Ok(owner) = DomainName::parse(name) else {
            // Wire-legal but not a modeled name (e.g. a label ending in
            // a hyphen): refuse rather than cache.
            return Lookup::Refused;
        };
        let query = Query::new(owner, rtype);
        let slot = match self.service.answer(&query) {
            None => CacheSlot::Ignored,
            Some(response) => match Message::response(0, &response).encode() {
                Ok(frame) => CacheSlot::Frame(frame.into()),
                // A response the codec cannot carry (unmodeled variant):
                // refuse, don't poison the cache.
                Err(_) => return Lookup::Refused,
            },
        };
        let mut cache = self.cache.write().expect("serve cache lock");
        let row = cache.entry(Box::from(name)).or_default();
        if matches!(row[index], CacheSlot::Unknown) {
            row[index] = slot;
        }
        match &row[index] {
            CacheSlot::Frame(frame) => Lookup::Frame(Arc::clone(frame)),
            CacheSlot::Ignored => Lookup::Ignored,
            CacheSlot::Unknown => unreachable!("slot was just filled"),
        }
    }
}

enum Lookup {
    Frame(Arc<[u8]>),
    Ignored,
    Refused,
}

impl<S> Instrumented for ServerCore<S> {
    fn component(&self) -> &'static str {
        "wire.server"
    }

    fn counters(&self) -> Vec<(MetricKey, u64)> {
        let read = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        vec![
            (
                MetricKey::named("wire.udp_queries"),
                read(&self.counters.udp_queries),
            ),
            (
                MetricKey::named("wire.tcp_queries"),
                read(&self.counters.tcp_queries),
            ),
            (
                MetricKey::named("wire.cache_hits"),
                read(&self.counters.cache_hits),
            ),
            (
                MetricKey::named("wire.cache_misses"),
                read(&self.counters.cache_misses),
            ),
            (
                MetricKey::named("wire.truncated"),
                read(&self.counters.truncated),
            ),
            (
                MetricKey::named("wire.refused"),
                read(&self.counters.refused),
            ),
            (
                MetricKey::named("wire.malformed"),
                read(&self.counters.malformed),
            ),
            (
                MetricKey::named("wire.ignored"),
                read(&self.counters.ignored),
            ),
        ]
    }
}

/// An empty REFUSED response, optionally echoing the question bytes.
fn refused_reply(id: u16, rd: bool, question: Option<&[u8]>) -> Vec<u8> {
    stub_reply(id, rd, false, 5, question)
}

/// A NOERROR response with TC set and the question echoed — the UDP
/// truncation stub that sends clients to TCP.
fn truncated_reply(id: u16, rd: bool, question: &[u8]) -> Vec<u8> {
    stub_reply(id, rd, true, 0, Some(question))
}

fn stub_reply(id: u16, rd: bool, tc: bool, rcode: u8, question: Option<&[u8]>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + question.map_or(0, <[u8]>::len));
    out.extend_from_slice(&id.to_be_bytes());
    let mut flags: u16 = 1 << 15 | 1 << 7 | u16::from(rcode); // QR + RA
    if rd {
        flags |= 1 << 8;
    }
    if tc {
        flags |= 1 << 9;
    }
    out.extend_from_slice(&flags.to_be_bytes());
    out.extend_from_slice(&u16::from(question.is_some()).to_be_bytes());
    out.extend_from_slice(&[0; 6]);
    if let Some(question) = question {
        out.extend_from_slice(question);
    }
    out
}

/// The socket front: one UDP worker and a TCP accept loop over a shared
/// [`ServerCore`]. Created bound, torn down with
/// [`shutdown`](WireServer::shutdown).
pub struct WireServer {
    udp_addr: SocketAddr,
    tcp_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl WireServer {
    /// Binds UDP and TCP sockets at `bind` (use port 0 for ephemeral)
    /// and starts serving `core`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn start<S: DnsService + 'static>(
        core: Arc<ServerCore<S>>,
        bind: &str,
    ) -> io::Result<Self> {
        let udp = UdpSocket::bind(bind)?;
        udp.set_read_timeout(Some(POLL_INTERVAL))?;
        let tcp = TcpListener::bind(bind)?;
        tcp.set_nonblocking(true)?;
        let udp_addr = udp.local_addr()?;
        let tcp_addr = tcp.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let udp_core = Arc::clone(&core);
        let udp_stop = Arc::clone(&stop);
        let udp_worker = std::thread::spawn(move || {
            let mut buf = [0u8; MAX_REQUEST];
            while !udp_stop.load(Ordering::Relaxed) {
                match udp.recv_from(&mut buf) {
                    Ok((len, peer)) => {
                        if let Some(reply) = udp_core.handle_udp(&buf[..len]) {
                            let _ = udp.send_to(&reply, peer);
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
        });

        let tcp_stop = Arc::clone(&stop);
        let tcp_worker = std::thread::spawn(move || {
            while !tcp_stop.load(Ordering::Relaxed) {
                match tcp.accept() {
                    Ok((stream, _)) => {
                        let conn_core = Arc::clone(&core);
                        // Connections are short-lived (clients retry one
                        // truncated query); a thread each is plenty.
                        std::thread::spawn(move || serve_tcp_connection(stream, &conn_core));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(WireServer {
            udp_addr,
            tcp_addr,
            stop,
            workers: vec![udp_worker, tcp_worker],
        })
    }

    /// The bound UDP address.
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// The bound TCP address.
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// Stops the socket workers and waits for them to exit. In-flight
    /// TCP connections finish on their own read timeouts.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Serves length-prefixed frames on one TCP connection until the peer
/// closes, errors, a query is dropped, or the read times out.
fn serve_tcp_connection<S: DnsService>(mut stream: TcpStream, core: &ServerCore<S>) {
    let _ = stream.set_read_timeout(Some(TCP_READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    loop {
        let mut len_bytes = [0u8; 2];
        if stream.read_exact(&mut len_bytes).is_err() {
            return;
        }
        let len = usize::from(u16::from_be_bytes(len_bytes));
        if len == 0 || len > MAX_REQUEST {
            return;
        }
        let mut frame = vec![0u8; len];
        if stream.read_exact(&mut frame).is_err() {
            return;
        }
        let Some(reply) = core.handle_tcp(&frame) else {
            // A dropped query over TCP surfaces as a closed connection.
            return;
        };
        let reply_len = (reply.len() as u16).to_be_bytes();
        if stream.write_all(&reply_len).is_err() || stream.write_all(&reply).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use remnant_dns::{RecordData, ResourceRecord, Ttl};

    use super::*;
    use crate::transport::query_id;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    fn service(answer_ip: Ipv4Addr) -> impl DnsService {
        move |query: &Query| {
            (query.rtype == RecordType::A && query.name.as_str() == "www.example.com").then(|| {
                Response::answer(
                    query.clone(),
                    vec![ResourceRecord::new(
                        query.name.clone(),
                        Ttl::secs(300),
                        RecordData::A(answer_ip),
                    )],
                )
            })
        }
    }

    fn encode_query(name_str: &str, rtype: RecordType) -> Vec<u8> {
        let query = Query::new(name(name_str), rtype);
        Message::query(query_id(&query), &query)
            .encode()
            .expect("query encodes")
    }

    #[test]
    fn answers_known_name_from_cache() {
        let core = ServerCore::new(service(Ipv4Addr::new(203, 0, 113, 7)));
        let request = encode_query("www.example.com", RecordType::A);
        let first = core.handle_udp(&request).expect("answered");
        let second = core.handle_udp(&request).expect("answered");
        assert_eq!(first, second);
        let message = Message::decode(&first).expect("reply parses");
        assert_eq!(message.id, u16::from_be_bytes([request[0], request[1]]));
        assert!(message.flags.qr);
        assert_eq!(
            message.answers[0].data.as_a(),
            Some(Ipv4Addr::new(203, 0, 113, 7))
        );
        // First call missed, second hit.
        let mut registry = remnant_obs::MetricsRegistry::new();
        core.export_into(&mut registry);
        let label = [("component", "wire.server")];
        assert_eq!(registry.counter_labeled("wire.cache_hits", &label), 1);
        assert_eq!(registry.counter_labeled("wire.cache_misses", &label), 1);
        assert_eq!(registry.counter_labeled("wire.udp_queries", &label), 2);
    }

    #[test]
    fn unknown_name_is_ignored_like_the_paper() {
        let core = ServerCore::new(service(Ipv4Addr::LOCALHOST));
        let request = encode_query("gone.example.com", RecordType::A);
        assert!(core.handle_udp(&request).is_none());
        // The ignore is cached too.
        assert!(core.handle_udp(&request).is_none());
    }

    #[test]
    fn unsupported_qtype_is_refused_with_question_echo() {
        let core = ServerCore::new(service(Ipv4Addr::LOCALHOST));
        // Hand-build a query for TYPE 28 (AAAA).
        let mut request = encode_query("www.example.com", RecordType::A);
        let qtype_at = request.len() - 4;
        request[qtype_at..qtype_at + 2].copy_from_slice(&28u16.to_be_bytes());
        let reply = core.handle_udp(&request).expect("refused, not dropped");
        assert_eq!(reply[0..2], request[0..2], "ID echoed");
        assert_eq!(reply[3] & 0xF, 5, "REFUSED");
        assert_eq!(
            &reply[HEADER_LEN..],
            &request[HEADER_LEN..],
            "question echoed"
        );
    }

    #[test]
    fn non_query_frames_are_dropped() {
        let core = ServerCore::new(service(Ipv4Addr::LOCALHOST));
        let mut response_frame = encode_query("www.example.com", RecordType::A);
        response_frame[2] |= 0x80; // QR=1
        assert!(core.handle_udp(&response_frame).is_none());
        assert!(core.handle_udp(&[0u8; 5]).is_none());
    }

    #[test]
    fn multi_question_is_refused() {
        let core = ServerCore::new(service(Ipv4Addr::LOCALHOST));
        let mut request = encode_query("www.example.com", RecordType::A);
        request[5] = 2; // QDCOUNT = 2
        let reply = core.handle_udp(&request).expect("refused");
        assert_eq!(reply[3] & 0xF, 5);
    }

    #[test]
    fn oversized_udp_reply_truncates_and_tcp_carries_it() {
        let big = move |query: &Query| {
            Some(Response::answer(
                query.clone(),
                (0..30)
                    .map(|i| {
                        ResourceRecord::new(
                            query.name.clone(),
                            Ttl::secs(60),
                            RecordData::Txt(format!("padding-record-{i:04}-{}", "x".repeat(20))),
                        )
                    })
                    .collect::<Vec<_>>(),
            ))
        };
        let core = ServerCore::new(big);
        let request = encode_query("big.example.com", RecordType::Txt);
        let udp_reply = core.handle_udp(&request).expect("truncation stub");
        assert!(udp_reply.len() <= MAX_UDP_PAYLOAD);
        assert_ne!(udp_reply[2] & 0x02, 0, "TC bit set");
        let tcp_reply = core.handle_tcp(&request).expect("full answer");
        assert!(tcp_reply.len() > MAX_UDP_PAYLOAD);
        let message = Message::decode(&tcp_reply).expect("parses");
        assert_eq!(message.answers.len(), 30);
    }
}
