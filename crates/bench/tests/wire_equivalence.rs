//! The wire-path differential contract: collecting a snapshot through
//! [`WireTransport`] — every query and response serialized to RFC 1035
//! frames and parsed back — must be byte-identical to the in-process
//! path, at any worker count. Any lossy corner of the codec, or any
//! ambient nondeterminism on the wire path, shows up here as a diff.

use remnant::core::RecordCollector;
use remnant::dns::{DomainName, QueryStats, ShardableTransport};
use remnant::engine::{EngineConfig, ScanEngine};
use remnant::net::Region;
use remnant::wire::WireTransport;
use remnant::world::{World, WorldConfig};

fn snapshot_with<T: ShardableTransport>(world: &World, transport: &T, workers: usize) -> String {
    let engine = ScanEngine::new(EngineConfig {
        workers,
        shard_size: 128,
        seed: 7,
        ..EngineConfig::default()
    });
    let targets: Vec<(DomainName, DomainName)> = world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect();
    let mut collector = RecordCollector::new(world.clock(), Region::Oregon);
    let (snapshot, _stats) = collector.collect_with(&engine, transport, &targets, 0);
    snapshot.encode()
}

#[test]
fn wire_path_is_byte_identical_to_in_process_at_any_worker_count() {
    let world = World::generate(WorldConfig::small(17));

    let in_process_1 = snapshot_with(&world, &world, 1);
    let in_process_8 = snapshot_with(&world, &world, 8);
    assert_eq!(
        in_process_1, in_process_8,
        "in-process path must be worker-count invariant"
    );

    let wire_1_transport = WireTransport::new(&world);
    let wire_1 = snapshot_with(&world, &wire_1_transport, 1);
    let wire_8_transport = WireTransport::new(&world);
    let wire_8 = snapshot_with(&world, &wire_8_transport, 8);

    assert_eq!(
        wire_1, in_process_1,
        "serializing every exchange through the codec changed the snapshot"
    );
    assert_eq!(
        wire_8, in_process_1,
        "wire path diverged from in-process at 8 workers"
    );

    // The codec saw real traffic and never failed.
    let (encoded_1, decoded_1, errors_1) = wire_1_transport.codec_stats();
    let (encoded_8, decoded_8, errors_8) = wire_8_transport.codec_stats();
    assert!(encoded_1 > 0, "wire path actually ran");
    assert_eq!(errors_1, 0, "codec errors on real resolver traffic");
    assert_eq!(errors_8, 0);
    assert_eq!(encoded_1, decoded_1, "every frame produced was parsed back");
    assert_eq!(
        (encoded_1, decoded_1),
        (encoded_8, decoded_8),
        "frame volume must not vary with worker count"
    );

    // Exchange totals match too, at both worker counts.
    let stats_1 = ShardableTransport::query_stats(&wire_1_transport);
    let stats_8 = ShardableTransport::query_stats(&wire_8_transport);
    assert_eq!(stats_1, stats_8);
    assert_ne!(stats_1, QueryStats::default());
}
