//! The unified counter-reading surface.
//!
//! Before this trait, every layer had its own ad-hoc counter API:
//! `dns::QueryStats` on transports, bare `(u64, u64)` tuples on scanner
//! types, cache hit/miss fields on the engine's `ShardStats`. The
//! [`Instrumented`] trait is the single way to read any of them: a
//! component names itself and lists its counters; [`export_into`]
//! publishes them into a [`MetricsRegistry`] tagged with a `component`
//! label.
//!
//! Transport-like components use the shared `transport.sent` /
//! `transport.answered` / `transport.ignored` names so query volume is
//! comparable across DNS, HTTP, and scanner surfaces.
//!
//! [`export_into`]: Instrumented::export_into

use crate::metrics::{MetricKey, MetricsRegistry};

/// Canonical counter name for requests issued by a transport-like
/// component.
pub const TRANSPORT_SENT: &str = "transport.sent";
/// Canonical counter name for requests that received an answer.
pub const TRANSPORT_ANSWERED: &str = "transport.answered";
/// Canonical counter name for requests that went unanswered.
pub const TRANSPORT_IGNORED: &str = "transport.ignored";

/// Canonical counter name for sites whose previous-round records were
/// reused by a delta-mode collector (structural sharing, no resolution).
pub const COLLECT_REUSED: &str = "collect.reused";
/// Canonical counter name for sites re-resolved by a delta-mode collector
/// because their shard's zone generations changed (or its cache was cold).
pub const COLLECT_RERESOLVED: &str = "collect.reresolved";
/// Canonical counter name for sites re-resolved only because their shard
/// fell into the round's deterministic refresh stratum.
pub const COLLECT_REFRESH_STRATUM: &str = "collect.refresh_stratum";

/// Canonical counter name for classification-cache lookups answered from
/// a cached per-shard column (an unchanged block reused across rounds).
pub const QUERY_CACHE_HIT: &str = "query.cache.hit";
/// Canonical counter name for classification-cache lookups that had to
/// classify a block (first sight, or the block's backing changed).
pub const QUERY_CACHE_MISS: &str = "query.cache.miss";
/// Canonical counter name for distinct classified columns held by a
/// classification cache.
pub const QUERY_CACHE_ENTRIES: &str = "query.cache.entries";
/// Canonical counter name for sites a provider posting-list index marks
/// as ever-adopting (labeled per provider).
pub const QUERY_INDEX_SITES: &str = "query.index.sites";
/// Canonical counter name for the in-memory size of a provider
/// posting-list index, in bytes.
pub const QUERY_INDEX_BYTES: &str = "query.index.bytes";

/// A component that exposes deterministic counters.
///
/// # Example
///
/// ```
/// use remnant_obs::{Instrumented, MetricKey, MetricsRegistry};
///
/// struct Probe { sent: u64, answered: u64 }
///
/// impl Instrumented for Probe {
///     fn component(&self) -> &'static str {
///         "probe"
///     }
///     fn counters(&self) -> Vec<(MetricKey, u64)> {
///         vec![
///             (MetricKey::named(remnant_obs::TRANSPORT_SENT), self.sent),
///             (MetricKey::named(remnant_obs::TRANSPORT_ANSWERED), self.answered),
///             (MetricKey::named(remnant_obs::TRANSPORT_IGNORED), self.sent - self.answered),
///         ]
///     }
/// }
///
/// let probe = Probe { sent: 5, answered: 3 };
/// let mut registry = MetricsRegistry::new();
/// probe.export_into(&mut registry);
/// assert_eq!(
///     registry.counter_labeled("transport.ignored", &[("component", "probe")]),
///     2,
/// );
/// ```
pub trait Instrumented {
    /// Stable component name attached as a `component` label on export,
    /// e.g. `"dns.static_transport"`.
    fn component(&self) -> &'static str;

    /// The component's current counters, in a stable order.
    fn counters(&self) -> Vec<(MetricKey, u64)>;

    /// Publishes [`counters`](Instrumented::counters) into `registry`,
    /// tagging each with this component's name.
    fn export_into(&self, registry: &mut MetricsRegistry) {
        let component = self.component();
        for (key, value) in self.counters() {
            registry.add_key(key.with_label("component", component), value);
        }
    }
}

/// Builds the canonical sent/answered/ignored counter triple from a
/// sent/answered pair (`ignored = sent - answered`, saturating).
pub fn transport_counters(sent: u64, answered: u64) -> Vec<(MetricKey, u64)> {
    vec![
        (MetricKey::named(TRANSPORT_SENT), sent),
        (MetricKey::named(TRANSPORT_ANSWERED), answered),
        (
            MetricKey::named(TRANSPORT_IGNORED),
            sent.saturating_sub(answered),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;

    impl Instrumented for Fake {
        fn component(&self) -> &'static str {
            "fake"
        }
        fn counters(&self) -> Vec<(MetricKey, u64)> {
            transport_counters(7, 4)
        }
    }

    #[test]
    fn export_tags_component_label() {
        let mut registry = MetricsRegistry::new();
        Fake.export_into(&mut registry);
        let by = |name| registry.counter_labeled(name, &[("component", "fake")]);
        assert_eq!(by("transport.sent"), 7);
        assert_eq!(by("transport.answered"), 4);
        assert_eq!(by("transport.ignored"), 3);
    }

    #[test]
    fn ignored_saturates() {
        let triple = transport_counters(2, 5);
        assert_eq!(triple[2].1, 0);
    }
}
