//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [EXPERIMENT] [--population N] [--weeks W] [--seed S] [--workers N]
//!       [--even-intervals] [--collection full|delta] [--metrics OUT.json]
//!
//! EXPERIMENT: all (default) | table2 | table5 | table6 |
//!             fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8 | fig9 |
//!             purge | funnel
//! ```
//!
//! The default population is 100,000 (a 1:10 scale model of the paper's
//! Alexa top 1M); pass `--population 1000000` for full scale. Absolute
//! counts are printed both raw and rescaled to 1M.
//!
//! `--workers N` shards the daily collection rounds and weekly residual
//! scans over N threads via `remnant-engine`. The printed report is
//! bit-identical for every worker count — only wall time changes — so
//! `repro all --population 1000000 --workers 8` is a faster drop-in for
//! the sequential run.
//!
//! `--metrics OUT.json` additionally writes the study's deterministic
//! observability snapshot (counters, span histograms, event journal — all
//! on virtual time) as canonical JSON. The snapshot is byte-identical for
//! every `--workers` value; the `funnel` experiment rebuilds the Fig 8
//! attrition table from such a snapshot's counters alone.
//!
//! `--collection delta` re-resolves only the shards whose zone generations
//! changed since the previous round (plus a rotating refresh stratum),
//! replaying the rest from the previous round's records. Output —
//! including `--metrics` — is byte-identical to `--collection full`; a
//! reuse summary is printed to stderr after the run.

use std::process::ExitCode;

use remnant::core::study::CollectionMode;
use remnant_bench::{
    render_ablation, render_fig1, render_fig2, render_fig3, render_fig4, render_fig5, render_fig6,
    render_fig7, render_fig8, render_fig8_from_obs, render_fig9, render_purge, render_table1,
    render_table2, render_table5, render_table6, run_study, ReproConfig,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [all|table1|table2|table5|table6|fig1..fig9|purge|ablation|funnel] \
         [--population N] [--weeks W] [--seed S] [--workers N] [--even-intervals] \
         [--collection full|delta] [--metrics OUT.json]\n\
         \n\
         --workers N shards the sweeps over N threads (output is identical\n\
         for every N; only wall time changes)\n\
         --collection delta reuses unchanged shards between daily rounds\n\
         (output is identical to full; only wall time changes)\n\
         --metrics OUT.json writes the deterministic observability snapshot;\n\
         'funnel' renders Fig 8 from those counters alone"
    );
    ExitCode::FAILURE
}

/// Parses a flag's value, naming the flag (and the offending value) on
/// failure so a typo in one argument doesn't leave the user guessing.
fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, ExitCode> {
    let Some(raw) = value else {
        eprintln!("repro: missing value for {flag}");
        return Err(usage());
    };
    raw.parse().map_err(|_| {
        eprintln!("repro: invalid value for {flag}: '{raw}'");
        usage()
    })
}

fn main() -> ExitCode {
    let mut experiment = "all".to_owned();
    let mut config = ReproConfig::default();
    let mut metrics_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--population" => match parse_flag("--population", args.next()) {
                Ok(v) => config.population = v,
                Err(code) => return code,
            },
            "--weeks" => match parse_flag("--weeks", args.next()) {
                Ok(v) => config.weeks = v,
                Err(code) => return code,
            },
            "--seed" => match parse_flag("--seed", args.next()) {
                Ok(v) => config.seed = v,
                Err(code) => return code,
            },
            "--workers" => match parse_flag("--workers", args.next()) {
                Ok(v) => config.workers = v,
                Err(code) => return code,
            },
            "--metrics" => match parse_flag("--metrics", args.next()) {
                Ok(v) => metrics_path = Some(v),
                Err(code) => return code,
            },
            "--collection" => match parse_flag::<String>("--collection", args.next()) {
                Ok(v) => match v.as_str() {
                    "full" => config.collection_mode = CollectionMode::Full,
                    "delta" => config.collection_mode = CollectionMode::Delta,
                    other => {
                        eprintln!("repro: invalid value for --collection: '{other}'");
                        return usage();
                    }
                },
                Err(code) => return code,
            },
            "--even-intervals" => config.even_intervals = true,
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            name if !name.starts_with('-') => experiment = name.to_owned(),
            _ => {
                eprintln!("repro: unknown flag '{arg}'");
                return usage();
            }
        }
    }

    // Experiments that do not need the full study.
    let study_free = matches!(
        experiment.as_str(),
        "table1" | "table2" | "ablation" | "fig1" | "purge"
    );
    if study_free && metrics_path.is_some() {
        eprintln!("repro: --metrics ignored for '{experiment}' (no study runs)");
    }
    match experiment.as_str() {
        "table2" => {
            println!("{}", render_table2());
            return ExitCode::SUCCESS;
        }
        "table1" => {
            println!("{}", render_table1(&config));
            return ExitCode::SUCCESS;
        }
        "ablation" => {
            println!("{}", render_ablation(&config));
            return ExitCode::SUCCESS;
        }
        "fig1" => {
            println!("{}", render_fig1(config.seed));
            return ExitCode::SUCCESS;
        }
        "purge" => {
            println!("{}", render_purge(config.seed));
            return ExitCode::SUCCESS;
        }
        _ => {}
    }

    eprintln!(
        "running {}-week study over {} sites (seed {}, {} intervals, {} worker{}, {} collection)...",
        config.weeks,
        config.population,
        config.seed,
        if config.even_intervals {
            "24h"
        } else {
            "20-30h"
        },
        config.workers.max(1),
        if config.workers.max(1) == 1 { "" } else { "s" },
        config.collection_mode.name()
    );
    let started = std::time::Instant::now();
    let (world, report) = run_study(&config);
    eprintln!(
        "study done in {:.1}s ({} DNS queries, {} HTTP requests served)",
        started.elapsed().as_secs_f64(),
        world.traffic_stats().0,
        world.traffic_stats().1
    );
    if config.collection_mode == CollectionMode::Delta {
        let collection = &report.collection;
        eprintln!(
            "delta collection: {} rounds, {} site-rounds reused ({:.1}%), \
             {} re-resolved ({} via refresh stratum)",
            collection.rounds,
            collection.reused,
            collection.reuse_rate() * 100.0,
            collection.reresolved,
            collection.refresh_stratum
        );
    }
    eprintln!();

    if let Some(path) = &metrics_path {
        if let Err(e) = std::fs::write(path, report.obs.to_json()) {
            eprintln!("repro: cannot write metrics to '{path}': {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics written to {path}\n");
    }

    let render = |name: &str| -> Option<String> {
        match name {
            "fig2" => Some(render_fig2(&config, &report)),
            "fig3" => Some(render_fig3(&config, &report)),
            "fig4" => Some(render_fig4(&report)),
            "fig5" => Some(render_fig5(&report)),
            "fig6" => Some(render_fig6(&report)),
            "fig7" => Some(render_fig7(&world)),
            "fig8" => Some(render_fig8(&report)),
            "funnel" => Some(render_fig8_from_obs(&report.obs)),
            "fig9" => Some(render_fig9(&config, &report)),
            "table5" => Some(render_table5(&config, &report)),
            "table6" => Some(render_table6(&config, &report)),
            _ => None,
        }
    };

    if experiment == "all" {
        println!("{}", render_table2());
        for name in [
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table5", "table6",
        ] {
            println!("{}", render(name).expect("known experiment"));
        }
        println!("{}", render_fig1(config.seed));
        println!("{}", render_purge(config.seed));
        println!("{}", render_table1(&config));
        ExitCode::SUCCESS
    } else if let Some(rendered) = render(&experiment) {
        println!("{rendered}");
        ExitCode::SUCCESS
    } else {
        usage()
    }
}
