//! A bounded, structured event journal for pipeline milestones.
//!
//! The journal is a ring buffer: once full, the oldest event is dropped
//! (and counted) to admit the newest. Events are stamped with virtual
//! [`SimTime`], never wall time, so the journal of a study run is
//! identical for any worker count.

use std::collections::VecDeque;

use remnant_sim::SimTime;

/// Default journal capacity — comfortably above a six-week study's
/// milestone count (a few per day plus a few per weekly scan).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// One pipeline milestone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual instant the event was recorded.
    pub at: SimTime,
    /// Stable machine-readable kind, e.g. `"sweep.finish"`.
    pub kind: &'static str,
    /// Free-form detail, e.g. `"day=3 shards=6"`.
    pub detail: String,
}

/// A fixed-capacity ring buffer of [`Event`]s.
///
/// # Example
///
/// ```
/// use remnant_obs::EventJournal;
/// use remnant_sim::SimTime;
///
/// let mut journal = EventJournal::with_capacity(2);
/// journal.push(SimTime::from_secs(1), "a", "first");
/// journal.push(SimTime::from_secs(2), "b", "second");
/// journal.push(SimTime::from_secs(3), "c", "third"); // evicts "a"
/// assert_eq!(journal.dropped(), 1);
/// assert_eq!(journal.iter().next().unwrap().kind, "b");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventJournal {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl EventJournal {
    /// A journal holding at most `capacity` events (minimum one).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventJournal {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the journal is full.
    pub fn push(&mut self, at: SimTime, kind: &'static str, detail: impl Into<String>) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            at,
            kind,
            detail: detail.into(),
        });
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the journal was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut journal = EventJournal::with_capacity(3);
        for i in 0..5u64 {
            journal.push(SimTime::from_secs(i), "tick", format!("i={i}"));
        }
        assert_eq!(journal.len(), 3);
        assert_eq!(journal.capacity(), 3);
        assert_eq!(journal.dropped(), 2);
        let kept: Vec<&str> = journal.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(kept, ["i=2", "i=3", "i=4"]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut journal = EventJournal::with_capacity(0);
        journal.push(SimTime::EPOCH, "a", "");
        journal.push(SimTime::EPOCH, "b", "");
        assert_eq!(journal.len(), 1);
        assert_eq!(journal.iter().next().unwrap().kind, "b");
        assert_eq!(journal.dropped(), 1);
    }

    #[test]
    fn events_keep_insertion_order() {
        let mut journal = EventJournal::default();
        journal.push(SimTime::from_secs(9), "late", "");
        journal.push(SimTime::from_secs(1), "early", "");
        let kinds: Vec<&str> = journal.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["late", "early"]);
        assert!(!journal.is_empty());
    }
}
