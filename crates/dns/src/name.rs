//! Domain names, interned process-wide.
//!
//! Every simulated query the collector and the residual scanners issue
//! flows through [`DomainName`]; zone lookups, cache keys, CNAME chases
//! and snapshot rows all copy names around. To keep that hot path free of
//! heap churn, parsing interns the normalized form in a process-wide
//! sharded intern table: `Clone` is a refcount bump, equality fast-paths
//! on pointer identity (with a content fallback, so handles from
//! different construction paths still compare correctly), and hashing
//! uses a precomputed content hash. The interner never evicts — the
//! simulation's name universe is bounded by the generated world, and a
//! stable address per name is what makes the pointer fast paths sound.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;
use std::sync::{Arc, LazyLock, RwLock};

use crate::error::DnsError;

/// Maximum total length of a domain name in presentation format.
const MAX_NAME_LEN: usize = 253;
/// Maximum length of a single label.
const MAX_LABEL_LEN: usize = 63;

/// The shared, immutable payload of an interned name.
struct NameInner {
    /// Normalized presentation form, e.g. "www.example.com".
    name: Box<str>,
    /// Byte offsets of label starts within `name`.
    label_starts: Box<[u16]>,
    /// FNV-1a hash of `name`, precomputed so `Hash` is O(1).
    hash: u64,
}

/// FNV-1a over the normalized name bytes. Any stable content hash works;
/// FNV keeps shard selection and `Hash` independent of std's per-process
/// `RandomState`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Label-start offsets of an already validated, normalized name.
fn label_starts_of(name: &str) -> Box<[u16]> {
    let mut starts = Vec::with_capacity(4);
    let mut start = 0usize;
    for label in name.split('.') {
        starts.push(start as u16);
        start += label.len() + 1;
    }
    starts.into_boxed_slice()
}

/// Intern-table entry: hashes and borrows as the name string so lookups
/// never allocate.
struct InternEntry(Arc<NameInner>);

impl Borrow<str> for InternEntry {
    fn borrow(&self) -> &str {
        &self.0.name
    }
}

impl Hash for InternEntry {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.name.hash(state);
    }
}

impl PartialEq for InternEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.name == other.0.name
    }
}

impl Eq for InternEntry {}

/// Shard count for the intern table. Power of two; 16 shards keep write
/// contention negligible even with the scan engine's worker threads all
/// parsing at once.
const INTERN_SHARDS: usize = 16;

struct Interner {
    shards: [RwLock<HashSet<InternEntry>>; INTERN_SHARDS],
}

static INTERNER: LazyLock<Interner> = LazyLock::new(|| Interner {
    shards: std::array::from_fn(|_| RwLock::new(HashSet::new())),
});

impl Interner {
    /// Returns the unique shared payload for `normalized`, creating it on
    /// first sight. Read-locks on the hit path; write-locks only on miss.
    fn intern(&self, normalized: &str) -> Arc<NameInner> {
        let hash = fnv1a(normalized.as_bytes());
        let shard = &self.shards[(hash as usize) & (INTERN_SHARDS - 1)];
        if let Some(entry) = shard.read().expect("interner lock").get(normalized) {
            return Arc::clone(&entry.0);
        }
        let inner = Arc::new(NameInner {
            name: normalized.into(),
            label_starts: label_starts_of(normalized),
            hash,
        });
        let mut guard = shard.write().expect("interner lock");
        match guard.get(normalized) {
            // Raced with another thread; keep the winner so pointer
            // identity stays unique per name.
            Some(existing) => Arc::clone(&existing.0),
            None => {
                guard.insert(InternEntry(Arc::clone(&inner)));
                inner
            }
        }
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("interner lock").len())
            .sum()
    }
}

/// A fully qualified domain name in normalized (lowercase, no trailing dot)
/// presentation form.
///
/// Names are validated on construction: 1–63 character labels of letters,
/// digits, hyphens and underscores (underscores occur in real DNS, e.g.
/// `_dmarc`), no leading/trailing hyphen in a label, total length ≤ 253.
/// Comparison is case-insensitive by construction because parsing lowercases.
///
/// Parsing interns the normalized form process-wide, so `Clone` is a
/// refcount bump and equality/hashing are O(1) on the fast path.
///
/// # Example
///
/// ```
/// use remnant_dns::DomainName;
///
/// let www: DomainName = "WWW.Example.COM".parse()?;
/// assert_eq!(www.to_string(), "www.example.com");
/// assert_eq!(www.apex().to_string(), "example.com");
/// assert!(www.is_subdomain_of(&"example.com".parse()?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct DomainName(Arc<NameInner>);

impl DomainName {
    /// Parses and validates a name (see type docs for the accepted syntax).
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::ParseName`] on empty names, empty labels, label
    /// or name length violations, or invalid characters.
    pub fn parse(s: &str) -> Result<Self, DnsError> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() || trimmed.len() > MAX_NAME_LEN {
            return Err(DnsError::ParseName(s.to_owned()));
        }
        let mut needs_lowering = false;
        for label in trimmed.split('.') {
            if label.is_empty() || label.len() > MAX_LABEL_LEN {
                return Err(DnsError::ParseName(s.to_owned()));
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(DnsError::ParseName(s.to_owned()));
            }
            for b in label.bytes() {
                if b.is_ascii_uppercase() {
                    needs_lowering = true;
                } else if !(b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
                {
                    return Err(DnsError::ParseName(s.to_owned()));
                }
            }
        }
        // Already-normalized input (the overwhelmingly common case once a
        // world exists) interns without allocating a lowercase copy.
        let inner = if needs_lowering {
            INTERNER.intern(&trimmed.to_ascii_lowercase())
        } else {
            INTERNER.intern(trimmed)
        };
        Ok(DomainName(inner))
    }

    /// Interns an already-normalized, already-validated substring of an
    /// existing name (used by [`DomainName::suffix`]).
    fn from_normalized(normalized: &str) -> DomainName {
        DomainName(INTERNER.intern(normalized))
    }

    /// Number of distinct names interned process-wide (diagnostics; the
    /// table never evicts).
    pub fn interned_count() -> usize {
        INTERNER.len()
    }

    /// The normalized presentation form.
    pub fn as_str(&self) -> &str {
        &self.0.name
    }

    /// Number of labels, e.g. 3 for `www.example.com`.
    pub fn label_count(&self) -> usize {
        self.0.label_starts.len()
    }

    /// Iterates labels left to right.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.name.split('.')
    }

    /// The `n` rightmost labels as a name, or `None` if `n` is 0 or exceeds
    /// the label count.
    pub fn suffix(&self, n: usize) -> Option<DomainName> {
        if n == 0 || n > self.label_count() {
            return None;
        }
        if n == self.label_count() {
            return Some(self.clone());
        }
        let idx = self.label_count() - n;
        let start = usize::from(self.0.label_starts[idx]);
        Some(DomainName::from_normalized(&self.0.name[start..]))
    }

    /// The top-level domain (rightmost label).
    pub fn tld(&self) -> &str {
        let start = usize::from(*self.0.label_starts.last().expect("names have >= 1 label"));
        &self.0.name[start..]
    }

    /// The registrable apex: the two rightmost labels (this simulation uses
    /// single-label TLDs only), or the whole name if it has fewer than two
    /// labels.
    pub fn apex(&self) -> DomainName {
        self.suffix(2.min(self.label_count()))
            .expect("suffix of own label count is always valid")
    }

    /// The name with its leftmost label removed, or `None` at a TLD.
    pub fn parent(&self) -> Option<DomainName> {
        self.suffix(self.label_count().checked_sub(1)?)
    }

    /// True if `self` is equal to or underneath `other`
    /// (`www.example.com` is a subdomain of `example.com` and of itself).
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        if Arc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        let name = &*self.0.name;
        let tail = &*other.0.name;
        if name.len() == tail.len() {
            return name == tail;
        }
        // A proper subdomain ends with ".<other>" — both names are
        // normalized, so a byte suffix check with a label boundary is
        // exactly the label-wise suffix relation.
        name.len() > tail.len()
            && name.ends_with(tail)
            && name.as_bytes()[name.len() - tail.len() - 1] == b'.'
    }

    /// Prefixes a label, e.g. `"example.com".prepend("www")`.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::ParseName`] if the resulting name is invalid.
    pub fn prepend(&self, label: &str) -> Result<DomainName, DnsError> {
        DomainName::parse(&format!("{label}.{}", self.as_str()))
    }

    /// All suffixes from the whole name down to the TLD, longest first.
    ///
    /// ```
    /// use remnant_dns::DomainName;
    /// let n: DomainName = "a.b.example.com".parse()?;
    /// let sufs: Vec<String> = n.suffixes().map(|s| s.to_string()).collect();
    /// assert_eq!(sufs, vec!["a.b.example.com", "b.example.com", "example.com", "com"]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn suffixes(&self) -> impl Iterator<Item = DomainName> + '_ {
        (1..=self.label_count())
            .rev()
            .filter_map(move |n| self.suffix(n))
    }

    /// True if any label contains `needle` as a substring. This is the
    /// paper's CNAME/NS-matching primitive (Table II "substring").
    ///
    /// ```
    /// use remnant_dns::DomainName;
    /// let ns: DomainName = "kate.ns.cloudflare.com".parse()?;
    /// assert!(ns.contains_label_substring("cloudflare"));
    /// assert!(!ns.contains_label_substring("incapdns"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn contains_label_substring(&self, needle: &str) -> bool {
        let lowered;
        let needle = if needle.bytes().any(|b| b.is_ascii_uppercase()) {
            lowered = needle.to_ascii_lowercase();
            lowered.as_str()
        } else {
            needle
        };
        self.labels().any(|l| l.contains(needle))
    }
}

impl PartialEq for DomainName {
    fn eq(&self, other: &Self) -> bool {
        // Interning makes pointer identity the common case; the content
        // fallback keeps equality correct for handles that bypassed the
        // same intern table (e.g. across future serialization paths).
        Arc::ptr_eq(&self.0, &other.0)
            || (self.0.hash == other.0.hash && self.0.name == other.0.name)
    }
}

impl Eq for DomainName {}

impl Hash for DomainName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl PartialOrd for DomainName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DomainName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.0.name.cmp(&other.0.name)
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DomainName({})", self.as_str())
    }
}

impl FromStr for DomainName {
    type Err = DnsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    #[test]
    fn parse_normalizes_case_and_trailing_dot() {
        assert_eq!(name("WWW.EXAMPLE.COM."), name("www.example.com"));
        assert_eq!(name("Example.Com").to_string(), "example.com");
    }

    #[test]
    fn parse_rejects_invalid() {
        for bad in [
            "",
            ".",
            "..",
            "a..b",
            ".example.com",
            "-bad.com",
            "bad-.com",
            "exa mple.com",
            "Ῥόδος.com",
            &("x".repeat(64) + ".com"),
            &"a.".repeat(130),
        ] {
            assert!(bad.parse::<DomainName>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_accepts_underscore_and_digits() {
        assert_eq!(name("_dmarc.example.com").label_count(), 3);
        assert_eq!(name("123.example.com").label_count(), 3);
        assert_eq!(name("a-b-c.example.com").label_count(), 3);
    }

    #[test]
    fn label_accessors() {
        let n = name("a.b.example.com");
        assert_eq!(n.label_count(), 4);
        assert_eq!(
            n.labels().collect::<Vec<_>>(),
            vec!["a", "b", "example", "com"]
        );
        assert_eq!(n.tld(), "com");
        assert_eq!(n.apex(), name("example.com"));
    }

    #[test]
    fn suffix_edges() {
        let n = name("www.example.com");
        assert_eq!(n.suffix(0), None);
        assert_eq!(n.suffix(1), Some(name("com")));
        assert_eq!(n.suffix(3), Some(n.clone()));
        assert_eq!(n.suffix(4), None);
    }

    #[test]
    fn apex_of_short_names() {
        assert_eq!(name("com").apex(), name("com"));
        assert_eq!(name("example.com").apex(), name("example.com"));
    }

    #[test]
    fn parent_walks_up() {
        let n = name("www.example.com");
        assert_eq!(n.parent(), Some(name("example.com")));
        assert_eq!(name("com").parent(), None);
    }

    #[test]
    fn subdomain_relation() {
        let apex = name("example.com");
        assert!(name("www.example.com").is_subdomain_of(&apex));
        assert!(apex.is_subdomain_of(&apex));
        assert!(!name("www.example.org").is_subdomain_of(&apex));
        // Label boundaries must be respected.
        assert!(!name("badexample.com").is_subdomain_of(&apex));
    }

    #[test]
    fn prepend_builds_subdomains() {
        assert_eq!(
            name("example.com").prepend("www").unwrap(),
            name("www.example.com")
        );
        assert!(name("example.com").prepend("").is_err());
        assert!(name("example.com").prepend("bad label").is_err());
    }

    #[test]
    fn substring_matching_is_per_label_and_case_insensitive() {
        let n = name("foo.edgekey.net");
        assert!(n.contains_label_substring("edgekey"));
        assert!(n.contains_label_substring("EDGEKEY"));
        assert!(n.contains_label_substring("dge"));
        assert!(!n.contains_label_substring("edgekeynet")); // spans a dot
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = [name("b.com"), name("a.com"), name("a.b.com")];
        v.sort();
        assert_eq!(v[0], name("a.b.com"));
    }

    #[test]
    fn interning_unifies_handles() {
        let a = name("intern-unify.example.com");
        let b = name("Intern-Unify.EXAMPLE.com.");
        assert!(Arc::ptr_eq(&a.0, &b.0), "same name interns to one payload");
        let c = a.clone();
        assert!(Arc::ptr_eq(&a.0, &c.0), "clone is a refcount bump");
    }

    #[test]
    fn suffix_handles_are_interned_too() {
        let full = name("www.intern-suffix.example.com");
        let apex = full.suffix(3).unwrap();
        let parsed = name("intern-suffix.example.com");
        assert!(Arc::ptr_eq(&apex.0, &parsed.0));
    }

    #[test]
    fn hash_is_content_based() {
        use std::collections::hash_map::DefaultHasher;
        let h = |n: &DomainName| {
            let mut hasher = DefaultHasher::new();
            n.hash(&mut hasher);
            hasher.finish()
        };
        let a = name("hash.example.com");
        let b = name("HASH.example.com");
        assert_eq!(h(&a), h(&b));
        assert_ne!(h(&a), h(&name("other.example.com")));
    }

    #[test]
    fn interned_count_grows_monotonically() {
        let before = DomainName::interned_count();
        let _ = name("interned-count-probe.example.com");
        assert!(DomainName::interned_count() > 0);
        assert!(DomainName::interned_count() >= before);
    }
}
