//! Scripted end-to-end scenarios for the residual-resolution vulnerability
//! and its countermeasures, spanning every crate.

use remnant::core::collector::{RecordCollector, Target};
use remnant::core::residual::{CloudflareScanner, FilterPipeline, IncapsulaScanner};
use remnant::core::SCANNER_SOURCE;
use remnant::dns::{DnsTransport, DomainName, Query, RecordType, RecursiveResolver};
use remnant::net::Region;
use remnant::provider::{ProviderId, ReroutingMethod, ServicePlan};
use remnant::world::{SiteState, Website, World, WorldConfig};

fn generate(seed: u64) -> World {
    World::generate(WorldConfig {
        population: 2_000,
        seed,
        warmup_days: 0,
        calibration: remnant::world::Calibration::paper(),
    })
}

fn targets(world: &World) -> Vec<Target> {
    world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect()
}

fn find_site(world: &World, pred: impl Fn(&Website) -> bool) -> Website {
    world
        .sites()
        .iter()
        .find(|s| pred(s))
        .expect("matching site exists at this scale")
        .clone()
}

fn cf_ns_active(site: &Website) -> bool {
    !site.firewalled
        && !site.dynamic_meta
        && matches!(
            site.state,
            SiteState::Dps {
                provider: ProviderId::Cloudflare,
                rerouting: ReroutingMethod::Ns,
                paused: false,
                ..
            }
        )
}

/// Harvest + scan + filter Cloudflare once; returns (hidden ranks, verified
/// ranks).
fn scan_cloudflare(world: &mut World, targets: &[Target]) -> (Vec<usize>, Vec<usize>) {
    let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
    let snapshot = collector.collect(world, targets, 0);
    let mut scanner = CloudflareScanner::new(world.clock(), "cloudflare");
    scanner.harvest_fleet(world, &snapshot);
    let raw = scanner.scan(world, targets, 0);
    let mut pipeline = FilterPipeline::new(world.clock(), Region::Ashburn, SCANNER_SOURCE);
    let report = pipeline.run(world, ProviderId::Cloudflare, 0, &raw, targets);
    (
        report.hidden.iter().map(|h| h.rank).collect(),
        report.verified.clone(),
    )
}

#[test]
fn pause_exposes_origin_through_public_resolution() {
    let mut world = generate(10);
    let site = find_site(&world, cf_ns_active);
    world.force_pause(site.id);
    world.step_hours(1);

    let mut resolver = RecursiveResolver::new(world.clock(), Region::London);
    let res = resolver
        .resolve(&mut world, &site.www, RecordType::A)
        .unwrap();
    assert_eq!(
        res.addresses(),
        vec![site.origin],
        "a paused customer's origin is publicly visible (Sec IV-C.1)"
    );

    world.force_resume(site.id);
    resolver.purge_cache();
    let res = resolver
        .resolve(&mut world, &site.www, RecordType::A)
        .unwrap();
    assert_ne!(res.addresses(), vec![site.origin], "resume hides it again");
}

#[test]
fn switch_keeping_origin_creates_verified_hidden_record() {
    let mut world = generate(11);
    let site = find_site(&world, cf_ns_active);
    world.force_switch(
        site.id,
        ProviderId::Fastly,
        ReroutingMethod::Cname,
        ServicePlan::Pro,
        true,
    );
    world.step_days(1);

    let targets = targets(&world);
    let (hidden, verified) = scan_cloudflare(&mut world, &targets);
    let rank = site.id.0 as usize;
    assert!(hidden.contains(&rank));
    assert!(verified.contains(&rank), "kept origin verifies as live");
}

#[test]
fn fake_a_record_countermeasure_defeats_verification() {
    // Sec VI-B-2: "customers may intentionally leave a fake A record before
    // they terminate the DPS service".
    let mut world = generate(12);
    let site = find_site(&world, cf_ns_active);
    let fake: std::net::Ipv4Addr = "198.18.255.254".parse().unwrap(); // nothing serves here
    world
        .provider_mut(ProviderId::Cloudflare)
        .update_origin(&site.apex, fake)
        .unwrap();
    world.force_switch(
        site.id,
        ProviderId::Fastly,
        ReroutingMethod::Cname,
        ServicePlan::Pro,
        true,
    );
    world.step_days(1);

    let targets = targets(&world);
    let (hidden, verified) = scan_cloudflare(&mut world, &targets);
    let rank = site.id.0 as usize;
    assert!(
        hidden.contains(&rank),
        "the remnant still answers — with the fake"
    );
    assert!(
        !verified.contains(&rank),
        "the fake address serves nothing, so verification fails"
    );
}

#[test]
fn origin_rotation_after_switch_neutralizes_the_leak() {
    // Sec VI-B-2: changing the origin address after adopting another DPS
    // "completely circumvent[s] residual resolution".
    let mut world = generate(13);
    let site = find_site(&world, cf_ns_active);
    world.force_switch(
        site.id,
        ProviderId::Fastly,
        ReroutingMethod::Cname,
        ServicePlan::Pro,
        true,
    );
    // The admin rotates the origin and tells only the *new* provider.
    let new_origin = world.rotate_origin(site.id);
    world.step_days(1);
    assert_ne!(new_origin, site.origin);

    let targets = targets(&world);
    let (hidden, verified) = scan_cloudflare(&mut world, &targets);
    let rank = site.id.0 as usize;
    assert!(
        hidden.contains(&rank),
        "the stale record still leaks the OLD address"
    );
    assert!(
        !verified.contains(&rank),
        "but the old address is dead, so the origin stays secret"
    );
}

#[test]
fn incapsula_remnant_lifecycle() {
    let mut world = generate(14);
    let site = find_site(&world, |s| {
        !s.firewalled
            && !s.dynamic_meta
            && matches!(
                s.state,
                SiteState::Dps {
                    provider: ProviderId::Incapsula,
                    paused: false,
                    ..
                }
            )
    });
    let targets = targets(&world);

    // Harvest the token while the customer is active.
    let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
    let snapshot = collector.collect(&mut world, &targets, 0);
    let mut scanner = IncapsulaScanner::new(world.clock(), "incapdns");
    scanner.harvest(&snapshot);

    // Switch away; the token is now a remnant.
    world.force_switch(
        site.id,
        ProviderId::Cloudflare,
        ReroutingMethod::Ns,
        ServicePlan::Free,
        true,
    );
    world.step_days(2);

    let raw = scanner.scan(&mut world);
    let mut pipeline = FilterPipeline::new(world.clock(), Region::Ashburn, SCANNER_SOURCE);
    let report = pipeline.run(&mut world, ProviderId::Incapsula, 0, &raw, &targets);
    let rank = site.id.0 as usize;
    assert!(report.hidden.iter().any(|h| h.rank == rank));
    assert!(report.verified.contains(&rank));
}

#[test]
fn direct_query_to_previous_provider_reveals_what_public_dns_hides() {
    let mut world = generate(15);
    let site = find_site(&world, cf_ns_active);
    let server = world.provider(ProviderId::Cloudflare).ns_addresses()[0];
    world.force_switch(
        site.id,
        ProviderId::Incapsula,
        ReroutingMethod::Cname,
        ServicePlan::Pro,
        true,
    );
    world.step_days(3);

    // Public resolution: the new provider's edge.
    let mut resolver = RecursiveResolver::new(world.clock(), Region::Tokyo);
    let public = resolver
        .resolve(&mut world, &site.www, RecordType::A)
        .unwrap()
        .addresses();
    assert!(!public.contains(&site.origin));

    // Direct query to the previous provider: the origin (Fig 1b ③).
    let now = world.now();
    let response = world
        .query(
            now,
            server,
            Region::Tokyo,
            &Query::new(site.www.clone(), RecordType::A),
        )
        .expect("remnant answers");
    assert_eq!(response.answer_addresses(), vec![site.origin]);
}

#[test]
fn remnant_ns_names_remain_queryable() {
    // The stale NS data itself also keeps being served, which is what keeps
    // cached delegations functional (Sec VI-A).
    let mut world = generate(16);
    let site = find_site(&world, cf_ns_active);
    let assigned: Vec<DomainName> = world
        .provider(ProviderId::Cloudflare)
        .account(&site.apex)
        .unwrap()
        .nameservers
        .clone();
    let server = world.provider(ProviderId::Cloudflare).ns_addresses()[0];
    world.force_leave(site.id, true);
    world.step_days(1);

    let now = world.now();
    let response = world
        .query(
            now,
            server,
            Region::Oregon,
            &Query::new(site.apex.clone(), RecordType::Ns),
        )
        .expect("NS remnant answers");
    let hosts: Vec<DomainName> = response
        .answers
        .iter()
        .filter_map(|rr| rr.data.as_ns().cloned())
        .collect();
    assert_eq!(hosts, assigned);
}
