//! The versioned binary snapshot codec and the on-disk spill files that
//! let collection rounds run memory-bounded.
//!
//! # Format (`v1`)
//!
//! One spill file holds one collection round, framed per shard so a single
//! block can be reloaded without touching the rest:
//!
//! ```text
//! header   "RSNP" u16=version u16=0  u64=taken_at_secs u32=day
//!          u32=block_size u64=sites u32=shard_count
//! frame*   u32=frame_len  (bytes after this field)
//!          u32=shard  u32=n_sites
//!          u32=name_count  (u16=len bytes)*            interned-name table
//!          u32=a_count     (4 bytes)*                  A column
//!          u32=cname_count (u32=name_id)*              CNAME column
//!          u32=ns_count    (u32=name_id)*              NS column
//!          (u32=a_end u32=cname_end u32=ns_end)*       per-site ends
//! footer   "RSNX" u32=entry_count (u32=shard u64=offset u32=len)*
//!          u64=footer_offset "RSNZ"
//! ```
//!
//! Each frame carries its own name table (names deduplicated within the
//! frame; process-wide deduplication happens anyway when decoded names
//! re-enter the interner), so frames are self-contained: streaming writers
//! append them one at a time, and readers load any frame from its footer
//! index entry alone. Delta rounds write only their dirty shards — clean
//! shards stay as [`SpillRef`]s into *previous* rounds' files, which is
//! the PR 4 structural-sharing idea moved onto disk.
//!
//! All decode paths return typed [`SpillError`]s; malformed input never
//! panics.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use remnant_dns::DomainName;
use remnant_sim::SimTime;

use crate::snapshot::{DnsSnapshot, RecordBlock};

const FILE_MAGIC: &[u8; 4] = b"RSNP";
const FOOTER_MAGIC: &[u8; 4] = b"RSNX";
const TRAILER_MAGIC: &[u8; 4] = b"RSNZ";
const VERSION: u16 = 1;
/// Fixed header length in bytes.
const HEADER_LEN: u64 = 4 + 2 + 2 + 8 + 4 + 4 + 8 + 4;

/// Where spilled rounds go and how much stays resident while collecting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpillConfig {
    /// Directory the per-round spill files are written to.
    pub dir: PathBuf,
    /// Upper bound on shards held in memory at once during a streaming
    /// collect (clamped to at least the engine's worker count).
    pub resident_shards: usize,
}

impl SpillConfig {
    /// Default resident-shard budget: large enough to keep 8 workers busy,
    /// small enough that the working set stays a sliver of the round.
    pub const DEFAULT_RESIDENT_SHARDS: usize = 32;

    /// A config spilling to `dir` with the default resident budget.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SpillConfig {
            dir: dir.into(),
            resident_shards: Self::DEFAULT_RESIDENT_SHARDS,
        }
    }
}

/// The fixed metadata at the head of every spill file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillMeta {
    /// When the round ran.
    pub taken_at: SimTime,
    /// Day index of the round.
    pub day: u32,
    /// Sites the round covers (across *all* shards of the plan, present
    /// in this file or not).
    pub sites: u64,
    /// The shard/block size of the plan.
    pub block_size: u32,
    /// Shards in the plan.
    pub shard_count: u32,
}

/// Why a binary snapshot or spill operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpillError {
    /// An underlying I/O operation failed.
    Io {
        /// What was being done.
        context: &'static str,
        /// The OS error text.
        error: String,
    },
    /// The file/header magic was wrong — not a spill file.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The input ended inside the named section.
    Truncated {
        /// Which section the input ended in.
        section: &'static str,
    },
    /// A name id pointed past the frame's name table.
    BadNameIndex {
        /// The offending id.
        index: u32,
        /// The table's length.
        table: u32,
    },
    /// A name-table entry was not a valid domain name.
    BadName(String),
    /// The same shard appeared twice (in a file's index or an append).
    DuplicateShardFrame {
        /// The repeated shard index.
        shard: u32,
    },
    /// A referenced shard is not present in the file.
    MissingShardFrame {
        /// The absent shard index.
        shard: u32,
    },
    /// A shard index is outside the plan recorded in the header.
    ShardOutOfRange {
        /// The offending shard index.
        shard: u32,
        /// The header's shard count.
        count: u32,
    },
    /// A frame's internal counts are inconsistent (ends not monotone, a
    /// final end disagreeing with its column, or a declared count not
    /// matching the bytes present).
    CorruptFrame {
        /// Which check failed.
        reason: &'static str,
    },
    /// The decoded site total disagrees with the header.
    CountMismatch {
        /// Sites the header declared.
        expected: u64,
        /// Sites the frames actually held.
        found: u64,
    },
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { context, error } => write!(f, "spill I/O error while {context}: {error}"),
            Self::BadMagic => write!(f, "not a remnant snapshot spill file (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported spill format version {v}"),
            Self::Truncated { section } => write!(f, "input truncated in {section}"),
            Self::BadNameIndex { index, table } => {
                write!(f, "name id {index} out of range for table of {table}")
            }
            Self::BadName(name) => write!(f, "invalid domain name in name table: {name:?}"),
            Self::DuplicateShardFrame { shard } => {
                write!(f, "duplicate frame for shard {shard}")
            }
            Self::MissingShardFrame { shard } => write!(f, "no frame for shard {shard}"),
            Self::ShardOutOfRange { shard, count } => {
                write!(f, "shard {shard} out of range for plan of {count}")
            }
            Self::CorruptFrame { reason } => write!(f, "corrupt frame: {reason}"),
            Self::CountMismatch { expected, found } => {
                write!(f, "header says {expected} sites but frames hold {found}")
            }
        }
    }
}

impl std::error::Error for SpillError {}

fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> SpillError {
    move |e| SpillError::Io {
        context,
        error: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Byte-level primitives
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, section: &'static str) -> Result<&'a [u8], SpillError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SpillError::Truncated { section })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u16(&mut self, section: &'static str) -> Result<u16, SpillError> {
        Ok(u16::from_le_bytes(
            self.take(2, section)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self, section: &'static str) -> Result<u32, SpillError> {
        Ok(u32::from_le_bytes(
            self.take(4, section)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, section: &'static str) -> Result<u64, SpillError> {
        Ok(u64::from_le_bytes(
            self.take(8, section)?.try_into().expect("8 bytes"),
        ))
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Encodes one shard's block as a self-contained frame (including the
/// leading `frame_len` word).
fn encode_frame(shard: u32, block: &RecordBlock) -> Vec<u8> {
    let (a, cnames, ns) = block.columns();

    // Per-frame interned-name table: each distinct name once, in first
    // occurrence order (deterministic — no hashing in the layout).
    fn intern_ids<'b>(
        names: &'b [DomainName],
        table: &mut Vec<&'b DomainName>,
        ids: &mut HashMap<&'b DomainName, u32>,
    ) -> Vec<u32> {
        names
            .iter()
            .map(|n| {
                *ids.entry(n).or_insert_with(|| {
                    table.push(n);
                    (table.len() - 1) as u32
                })
            })
            .collect()
    }
    let mut table: Vec<&DomainName> = Vec::new();
    let mut ids: HashMap<&DomainName, u32> = HashMap::new();
    let cname_ids = intern_ids(cnames, &mut table, &mut ids);
    let ns_ids = intern_ids(ns, &mut table, &mut ids);

    let mut body = Vec::new();
    put_u32(&mut body, shard);
    put_u32(&mut body, block.len() as u32);
    put_u32(&mut body, table.len() as u32);
    for name in &table {
        let s = name.as_str().as_bytes();
        put_u16(&mut body, s.len() as u16);
        body.extend_from_slice(s);
    }
    put_u32(&mut body, a.len() as u32);
    for addr in a {
        body.extend_from_slice(&addr.octets());
    }
    put_u32(&mut body, cname_ids.len() as u32);
    for id in &cname_ids {
        put_u32(&mut body, *id);
    }
    put_u32(&mut body, ns_ids.len() as u32);
    for id in &ns_ids {
        put_u32(&mut body, *id);
    }
    for ends in block.ends() {
        put_u32(&mut body, ends[0]);
        put_u32(&mut body, ends[1]);
        put_u32(&mut body, ends[2]);
    }

    let mut frame = Vec::with_capacity(4 + body.len());
    put_u32(&mut frame, body.len() as u32);
    frame.extend_from_slice(&body);
    frame
}

/// Decodes one frame (including its leading `frame_len` word) back into
/// `(shard, block)`.
fn decode_frame(bytes: &[u8]) -> Result<(u32, RecordBlock), SpillError> {
    let mut r = Reader::new(bytes);
    let frame_len = r.u32("frame length")? as usize;
    let body = r.take(frame_len, "frame body")?;
    let mut r = Reader::new(body);

    let shard = r.u32("frame shard index")?;
    let n_sites = r.u32("frame site count")? as usize;

    let name_count = r.u32("name table count")?;
    let mut table: Vec<DomainName> = Vec::new();
    for _ in 0..name_count {
        let len = r.u16("name table entry length")? as usize;
        let raw = r.take(len, "name table entry")?;
        let s = std::str::from_utf8(raw)
            .map_err(|_| SpillError::BadName(format!("{raw:?} (not UTF-8)")))?;
        let name: DomainName = s.parse().map_err(|_| SpillError::BadName(s.to_string()))?;
        table.push(name);
    }

    let a_count = r.u32("A column count")? as usize;
    let a_bytes = r.take(
        a_count.checked_mul(4).ok_or(SpillError::CorruptFrame {
            reason: "A count overflow",
        })?,
        "A column",
    )?;
    let a: Vec<Ipv4Addr> = a_bytes
        .chunks_exact(4)
        .map(|c| Ipv4Addr::new(c[0], c[1], c[2], c[3]))
        .collect();

    let mut name_column = |label: &'static str| -> Result<Vec<DomainName>, SpillError> {
        let count = r.u32(label)? as usize;
        let ids = r.take(
            count.checked_mul(4).ok_or(SpillError::CorruptFrame {
                reason: "name column count overflow",
            })?,
            label,
        )?;
        ids.chunks_exact(4)
            .map(|c| {
                let id = u32::from_le_bytes(c.try_into().expect("4 bytes"));
                table
                    .get(id as usize)
                    .cloned()
                    .ok_or(SpillError::BadNameIndex {
                        index: id,
                        table: table.len() as u32,
                    })
            })
            .collect()
    };
    let cnames = name_column("CNAME column")?;
    let ns = name_column("NS column")?;

    let mut ends = Vec::with_capacity(n_sites.min(body.len() / 12 + 1));
    let mut prev = [0u32; 3];
    for _ in 0..n_sites {
        let e = [
            r.u32("ends table")?,
            r.u32("ends table")?,
            r.u32("ends table")?,
        ];
        if e[0] < prev[0] || e[1] < prev[1] || e[2] < prev[2] {
            return Err(SpillError::CorruptFrame {
                reason: "ends not monotone",
            });
        }
        prev = e;
        ends.push(e);
    }
    let last = ends.last().copied().unwrap_or([0, 0, 0]);
    if last[0] as usize != a.len()
        || last[1] as usize != cnames.len()
        || last[2] as usize != ns.len()
    {
        return Err(SpillError::CorruptFrame {
            reason: "final ends disagree with columns",
        });
    }
    Ok((shard, RecordBlock::from_columns(ends, a, cnames, ns)))
}

// ---------------------------------------------------------------------------
// Whole-document binary codec
// ---------------------------------------------------------------------------

fn encode_header(out: &mut Vec<u8>, meta: &SpillMeta) {
    out.extend_from_slice(FILE_MAGIC);
    put_u16(out, VERSION);
    put_u16(out, 0);
    put_u64(out, meta.taken_at.as_secs());
    put_u32(out, meta.day);
    put_u32(out, meta.block_size);
    put_u64(out, meta.sites);
    put_u32(out, meta.shard_count);
}

fn decode_header(bytes: &[u8]) -> Result<SpillMeta, SpillError> {
    let mut r = Reader::new(bytes);
    if r.take(4, "file magic")? != FILE_MAGIC {
        return Err(SpillError::BadMagic);
    }
    let version = r.u16("version")?;
    if version != VERSION {
        return Err(SpillError::UnsupportedVersion(version));
    }
    let _reserved = r.u16("header")?;
    let taken_at = SimTime::from_secs(r.u64("header taken_at")?);
    let day = r.u32("header day")?;
    let block_size = r.u32("header block_size")?;
    let sites = r.u64("header sites")?;
    let shard_count = r.u32("header shard_count")?;
    Ok(SpillMeta {
        taken_at,
        day,
        sites,
        block_size,
        shard_count,
    })
}

fn encode_footer(out: &mut Vec<u8>, index: &[(u32, u64, u32)]) {
    let footer_offset = out.len() as u64;
    out.extend_from_slice(FOOTER_MAGIC);
    put_u32(out, index.len() as u32);
    for (shard, offset, len) in index {
        put_u32(out, *shard);
        put_u64(out, *offset);
        put_u32(out, *len);
    }
    put_u64(out, footer_offset);
    out.extend_from_slice(TRAILER_MAGIC);
}

/// Parses the footer of a complete document; returns `shard -> (offset,
/// frame_len)`.
fn decode_footer(bytes: &[u8]) -> Result<BTreeMap<u32, (u64, u32)>, SpillError> {
    if bytes.len() < HEADER_LEN as usize + 12 {
        return Err(SpillError::Truncated { section: "trailer" });
    }
    let trailer = &bytes[bytes.len() - 12..];
    if &trailer[8..] != TRAILER_MAGIC {
        return Err(SpillError::BadMagic);
    }
    let footer_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes")) as usize;
    if footer_offset >= bytes.len() {
        return Err(SpillError::Truncated { section: "footer" });
    }
    let mut r = Reader::new(&bytes[footer_offset..bytes.len() - 12]);
    if r.take(4, "footer magic")? != FOOTER_MAGIC {
        return Err(SpillError::BadMagic);
    }
    let count = r.u32("footer entry count")?;
    let mut index = BTreeMap::new();
    for _ in 0..count {
        let shard = r.u32("footer entry")?;
        let offset = r.u64("footer entry")?;
        let len = r.u32("footer entry")?;
        if index.insert(shard, (offset, len)).is_some() {
            return Err(SpillError::DuplicateShardFrame { shard });
        }
    }
    Ok(index)
}

impl DnsSnapshot {
    /// Serializes the snapshot to the versioned binary format (header,
    /// one frame per block, footer index). Spilled blocks are loaded
    /// transiently; the result is self-contained.
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let blocks: Vec<_> = self.blocks().collect();
        encode_header(
            &mut out,
            &SpillMeta {
                taken_at: self.taken_at,
                day: self.day,
                sites: self.len() as u64,
                block_size: self.block_size() as u32,
                shard_count: blocks.len() as u32,
            },
        );
        let mut index = Vec::with_capacity(blocks.len());
        for (shard, loaded) in blocks.iter().enumerate() {
            let frame = encode_frame(shard as u32, &loaded.block);
            index.push((shard as u32, out.len() as u64, frame.len() as u32));
            out.extend_from_slice(&frame);
        }
        encode_footer(&mut out, &index);
        out
    }

    /// Parses a complete binary snapshot document (every shard present).
    ///
    /// # Errors
    ///
    /// Returns a typed [`SpillError`] on truncation at any section
    /// boundary, bad magic or version, bad name-table indices, duplicate
    /// or missing shard frames, or count mismatches. Never panics on
    /// malformed input.
    pub fn decode_binary(bytes: &[u8]) -> Result<Self, SpillError> {
        let meta = decode_header(bytes)?;
        let index = decode_footer(bytes)?;
        let mut builder =
            DnsSnapshot::builder(meta.taken_at, meta.day, meta.block_size.max(1) as usize);
        let mut found = 0u64;
        for shard in 0..meta.shard_count {
            let (offset, len) = *index
                .get(&shard)
                .ok_or(SpillError::MissingShardFrame { shard })?;
            let end = (offset as usize)
                .checked_add(len as usize)
                .filter(|&e| e <= bytes.len())
                .ok_or(SpillError::Truncated { section: "frame" })?;
            let (frame_shard, block) = decode_frame(&bytes[offset as usize..end])?;
            if frame_shard != shard {
                return Err(SpillError::CorruptFrame {
                    reason: "frame shard disagrees with index",
                });
            }
            found += block.len() as u64;
            builder.push_block(Arc::new(block));
        }
        if found != meta.sites {
            return Err(SpillError::CountMismatch {
                expected: meta.sites,
                found,
            });
        }
        if index.keys().any(|&s| s >= meta.shard_count) {
            let shard = *index.keys().find(|&&s| s >= meta.shard_count).expect("any");
            return Err(SpillError::ShardOutOfRange {
                shard,
                count: meta.shard_count,
            });
        }
        Ok(builder.finish())
    }
}

// ---------------------------------------------------------------------------
// Spill files
// ---------------------------------------------------------------------------

/// An open spill file: the read-only side, shared by every [`SpillRef`]
/// into it.
pub struct SpillFile {
    path: PathBuf,
    file: Mutex<File>,
    meta: SpillMeta,
}

impl fmt::Debug for SpillFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpillFile")
            .field("path", &self.path)
            .field("meta", &self.meta)
            .finish()
    }
}

impl SpillFile {
    /// Opens a finished spill file and validates its header and trailer.
    pub fn open(path: impl AsRef<Path>) -> Result<Arc<SpillFile>, SpillError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path).map_err(io_err("opening spill file"))?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)
            .map_err(io_err("reading spill header"))?;
        let meta = decode_header(&header)?;
        Ok(Arc::new(SpillFile {
            path,
            file: Mutex::new(file),
            meta,
        }))
    }

    /// The file's fixed metadata.
    pub fn meta(&self) -> SpillMeta {
        self.meta
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The shards present in the file, from its footer index.
    pub fn index(&self) -> Result<BTreeMap<u32, (u64, u32)>, SpillError> {
        let mut file = self.file.lock().expect("spill file lock");
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))
            .and_then(|_| file.read_to_end(&mut bytes))
            .map_err(io_err("reading spill footer"))?;
        decode_footer(&bytes)
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, SpillError> {
        let mut buf = vec![0u8; len];
        let mut file = self.file.lock().expect("spill file lock");
        file.seek(SeekFrom::Start(offset))
            .and_then(|_| file.read_exact(&mut buf))
            .map_err(io_err("reading spill frame"))?;
        Ok(buf)
    }

    /// One [`SpillRef`] per frame in the file, in ascending shard order.
    ///
    /// Only each frame's preamble (shard index and site count) is read;
    /// the record columns stay on disk until [`SpillRef::load`]. This is
    /// how a reader (e.g. a snapshot store) re-chains a directory of
    /// rounds without pulling whole files into memory.
    pub fn refs(self: &Arc<Self>) -> Result<Vec<SpillRef>, SpillError> {
        let index = self.index()?;
        let mut refs = Vec::with_capacity(index.len());
        for (shard, (offset, len)) in index {
            if shard >= self.meta.shard_count {
                return Err(SpillError::ShardOutOfRange {
                    shard,
                    count: self.meta.shard_count,
                });
            }
            if len < 12 {
                return Err(SpillError::Truncated {
                    section: "frame preamble",
                });
            }
            let preamble = self.read_at(offset, 12)?;
            let mut reader = Reader::new(&preamble);
            let _frame_len = reader.u32("frame length")?;
            let frame_shard = reader.u32("frame shard index")?;
            let sites = reader.u32("frame site count")?;
            if frame_shard != shard {
                return Err(SpillError::CorruptFrame {
                    reason: "frame shard disagrees with index",
                });
            }
            refs.push(SpillRef {
                file: Arc::clone(self),
                shard,
                offset,
                len,
                sites,
            });
        }
        Ok(refs)
    }
}

/// A reference to one shard's frame inside a [`SpillFile`]: everything a
/// snapshot needs to reload the block on demand, and nothing more.
#[derive(Clone)]
pub struct SpillRef {
    file: Arc<SpillFile>,
    shard: u32,
    offset: u64,
    len: u32,
    sites: u32,
}

impl fmt::Debug for SpillRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SpillRef({} shard {} @{}+{})",
            self.file.path.display(),
            self.shard,
            self.offset,
            self.len
        )
    }
}

impl SpillRef {
    /// Sites the referenced frame covers (no I/O).
    pub fn sites(&self) -> usize {
        self.sites as usize
    }

    /// The shard index the frame was written as.
    pub fn shard(&self) -> usize {
        self.shard as usize
    }

    /// Path of the spill file holding the frame — with delta spills,
    /// refs in one round's chain can point at several earlier files.
    pub fn file_path(&self) -> &Path {
        &self.file.path
    }

    /// Process-local identity of the referenced frame: `(file identity,
    /// frame offset)`, where the file identity is the address of the
    /// shared [`SpillFile`] handle. Two refs with equal keys alias the
    /// same bytes of the same open file, so any pure function of the
    /// decoded block may be memoized under this key — delta rounds chain
    /// clean shards as clones of earlier refs, which is what makes the
    /// key hit. The key is only conservative: reopening a file yields a
    /// new handle and therefore a fresh key, never a false match.
    ///
    /// The address is only unique while the handle is alive; callers
    /// keying a cache on it must keep a clone of the ref (or another
    /// owner of the handle) alive alongside the entry.
    pub fn frame_key(&self) -> (usize, u64) {
        (Arc::as_ptr(&self.file) as usize, self.offset)
    }

    /// Reads and decodes the referenced frame.
    pub fn load(&self) -> Result<RecordBlock, SpillError> {
        let bytes = self.file.read_at(self.offset, self.len as usize)?;
        let (shard, block) = decode_frame(&bytes)?;
        if shard != self.shard {
            return Err(SpillError::CorruptFrame {
                reason: "frame shard disagrees with reference",
            });
        }
        if block.len() != self.sites as usize {
            return Err(SpillError::CorruptFrame {
                reason: "frame site count disagrees with reference",
            });
        }
        Ok(block)
    }
}

/// Streams one round's frames to disk, then finalizes the footer and
/// reopens the file for reads.
#[derive(Debug)]
pub struct SpillWriter {
    path: PathBuf,
    file: File,
    offset: u64,
    index: Vec<(u32, u64, u32)>,
    pending_refs: Vec<(u32, u64, u32, u32)>,
    meta: SpillMeta,
}

impl SpillWriter {
    /// Creates (truncating) a spill file and writes its header.
    pub fn create(path: impl AsRef<Path>, meta: SpillMeta) -> Result<Self, SpillError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path).map_err(io_err("creating spill file"))?;
        let mut header = Vec::new();
        encode_header(&mut header, &meta);
        file.write_all(&header)
            .map_err(io_err("writing spill header"))?;
        Ok(SpillWriter {
            path,
            file,
            offset: header.len() as u64,
            index: Vec::new(),
            pending_refs: Vec::new(),
            meta,
        })
    }

    /// Appends one shard's frame. Returns nothing; the matching
    /// [`SpillRef`]s come out of [`SpillWriter::finish`].
    ///
    /// # Errors
    ///
    /// [`SpillError::DuplicateShardFrame`] if the shard was already
    /// appended, [`SpillError::ShardOutOfRange`] if it exceeds the plan.
    pub fn append_block(&mut self, shard: u32, block: &RecordBlock) -> Result<(), SpillError> {
        if shard >= self.meta.shard_count {
            return Err(SpillError::ShardOutOfRange {
                shard,
                count: self.meta.shard_count,
            });
        }
        if self.index.iter().any(|(s, ..)| *s == shard) {
            return Err(SpillError::DuplicateShardFrame { shard });
        }
        let frame = encode_frame(shard, block);
        self.file
            .write_all(&frame)
            .map_err(io_err("writing spill frame"))?;
        self.index.push((shard, self.offset, frame.len() as u32));
        self.pending_refs
            .push((shard, self.offset, frame.len() as u32, block.len() as u32));
        self.offset += frame.len() as u64;
        Ok(())
    }

    /// Writes the footer, flushes, and reopens the file read-only.
    /// Returns the shared read handle plus one [`SpillRef`] per appended
    /// frame, in append order.
    pub fn finish(mut self) -> Result<(Arc<SpillFile>, Vec<SpillRef>), SpillError> {
        let mut footer = Vec::new();
        let footer_at = self.offset;
        encode_footer(&mut footer, &self.index);
        // encode_footer computed footer_offset relative to an empty buffer;
        // patch in the real file offset.
        let patch_at = footer.len() - 12;
        footer[patch_at..patch_at + 8].copy_from_slice(&footer_at.to_le_bytes());
        self.file
            .write_all(&footer)
            .map_err(io_err("writing spill footer"))?;
        self.file.flush().map_err(io_err("flushing spill file"))?;
        drop(self.file);
        let file = SpillFile::open(&self.path)?;
        let refs = self
            .pending_refs
            .iter()
            .map(|&(shard, offset, len, sites)| SpillRef {
                file: Arc::clone(&file),
                shard,
                offset,
                len,
                sites,
            })
            .collect();
        Ok((file, refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SiteRecords;

    fn sample_snapshot(block_size: usize) -> DnsSnapshot {
        let mut b = DnsSnapshot::builder(SimTime::from_secs(1234), 7, block_size);
        for i in 0..10u8 {
            b.push(SiteRecords {
                a: vec![Ipv4Addr::new(10, 0, 0, i)],
                cnames: if i % 2 == 0 {
                    vec!["edge.cdn.example.net".parse().unwrap()]
                } else {
                    vec![]
                },
                ns: vec![
                    "ns1.webhost1.net".parse().unwrap(),
                    "ns2.webhost1.net".parse().unwrap(),
                ],
            });
        }
        b.finish()
    }

    #[test]
    fn binary_round_trips() {
        let snap = sample_snapshot(4);
        let bytes = snap.encode_binary();
        let back = DnsSnapshot::decode_binary(&bytes).expect("own bytes decode");
        assert_eq!(back, snap);
        // Canonical: re-encoding is byte-identical.
        assert_eq!(back.encode_binary(), bytes);
        // And the text codec agrees on content.
        assert_eq!(back.encode(), snap.encode());
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = sample_snapshot(4).encode_binary();
        for cut in 0..bytes.len() {
            let err = DnsSnapshot::decode_binary(&bytes[..cut]).unwrap_err();
            // Typed error, not a panic; exact kind depends on the cut.
            let _ = err.to_string();
        }
    }

    #[test]
    fn bad_magic_and_version_are_named() {
        let mut bytes = sample_snapshot(4).encode_binary();
        let orig = bytes[0];
        bytes[0] = b'X';
        assert_eq!(
            DnsSnapshot::decode_binary(&bytes).unwrap_err(),
            SpillError::BadMagic
        );
        bytes[0] = orig;
        bytes[4] = 0xFF;
        assert!(matches!(
            DnsSnapshot::decode_binary(&bytes).unwrap_err(),
            SpillError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn spill_file_round_trips_per_shard() {
        let snap = sample_snapshot(3);
        let dir = std::env::temp_dir().join(format!("remnant-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round.rsnb");
        let blocks: Vec<_> = snap.blocks().collect();
        let mut writer = SpillWriter::create(
            &path,
            SpillMeta {
                taken_at: snap.taken_at,
                day: snap.day,
                sites: snap.len() as u64,
                block_size: snap.block_size() as u32,
                shard_count: blocks.len() as u32,
            },
        )
        .unwrap();
        for (i, loaded) in blocks.iter().enumerate() {
            writer.append_block(i as u32, &loaded.block).unwrap();
        }
        let (file, refs) = writer.finish().unwrap();
        assert_eq!(file.meta().sites, snap.len() as u64);
        assert_eq!(refs.len(), blocks.len());
        for (r, loaded) in refs.iter().zip(&blocks) {
            let block = r.load().unwrap();
            assert_eq!(&block, loaded.block.as_ref());
        }
        // A snapshot assembled purely from spill refs equals the original.
        let mut b = DnsSnapshot::builder(snap.taken_at, snap.day, snap.block_size());
        for r in refs {
            b.push_spilled(r);
        }
        assert_eq!(b.finish(), snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_rejects_duplicate_and_out_of_range_shards() {
        let snap = sample_snapshot(5);
        let dir = std::env::temp_dir().join(format!("remnant-spill-dup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dup.rsnb");
        let block = snap.blocks().next().unwrap().block;
        let mut writer = SpillWriter::create(
            &path,
            SpillMeta {
                taken_at: snap.taken_at,
                day: snap.day,
                sites: snap.len() as u64,
                block_size: 5,
                shard_count: 2,
            },
        )
        .unwrap();
        writer.append_block(0, &block).unwrap();
        assert_eq!(
            writer.append_block(0, &block).unwrap_err(),
            SpillError::DuplicateShardFrame { shard: 0 }
        );
        assert_eq!(
            writer.append_block(9, &block).unwrap_err(),
            SpillError::ShardOutOfRange { shard: 9, count: 2 }
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
