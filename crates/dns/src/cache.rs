//! The recursive resolver's TTL-honoring cache.
//!
//! The paper's collector "purge\[s\] the DNS cache of the resolver before
//! performing each experiment to ensure that the newly collected records are
//! independent from the previous ones" (Sec IV-B.1) — [`ResolverCache::purge`].
//! Between purges the cache obeys TTLs against the simulation clock, which
//! is what keeps stale NS records alive after a provider switch.

use std::collections::HashMap;

use remnant_sim::SimTime;

use crate::message::Rcode;
use crate::name::DomainName;
use crate::record::{empty_record_set, RecordSet, RecordType, ResourceRecord};

/// A cached entry: either records or a cached negative answer.
///
/// Records are a shared [`RecordSet`], so handing a hit back to the
/// resolver clones a refcount, not the records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    /// Cached records (empty for negative entries).
    pub records: RecordSet,
    /// The response code that produced this entry.
    pub rcode: Rcode,
    /// Absolute expiry instant.
    pub expires: SimTime,
}

/// TTL for cached negative answers (NXDOMAIN / NODATA).
const NEGATIVE_TTL_SECS: u64 = 900;

/// A (name, type)-keyed DNS cache with TTL expiry and full purge.
///
/// # Example
///
/// ```
/// use remnant_dns::{DomainName, RecordData, RecordType, ResolverCache, ResourceRecord, Ttl};
/// use remnant_sim::{SimDuration, SimTime};
///
/// let mut cache = ResolverCache::new();
/// let www: DomainName = "www.example.com".parse()?;
/// let rr = ResourceRecord::new(www.clone(), Ttl::secs(300), RecordData::A("1.2.3.4".parse()?));
/// cache.insert(SimTime::EPOCH, vec![rr]);
/// assert!(cache.get(SimTime::EPOCH + SimDuration::secs(299), &www, RecordType::A).is_some());
/// assert!(cache.get(SimTime::EPOCH + SimDuration::secs(301), &www, RecordType::A).is_none());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResolverCache {
    entries: HashMap<(DomainName, RecordType), CacheEntry>,
    hits: u64,
    misses: u64,
    expired: u64,
}

impl ResolverCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ResolverCache::default()
    }

    /// Inserts records, grouping them by (owner, type). Each group's expiry
    /// comes from the minimum TTL within the group. Empty input is a no-op.
    ///
    /// A homogeneous input (one owner/type — the common shape of an answer
    /// section) is stored as-is, sharing the caller's allocation.
    pub fn insert(&mut self, now: SimTime, records: impl Into<RecordSet>) {
        let records: RecordSet = records.into();
        let Some(first) = records.first() else {
            return;
        };
        let first_key = (first.name.clone(), first.record_type());
        if records
            .iter()
            .all(|rr| rr.record_type() == first_key.1 && rr.name == first_key.0)
        {
            let min_ttl = records
                .iter()
                .map(|rr| rr.ttl)
                .min()
                .expect("set is non-empty");
            self.entries.insert(
                first_key,
                CacheEntry {
                    records,
                    rcode: Rcode::NoError,
                    expires: min_ttl.expires_at(now),
                },
            );
            return;
        }
        let mut groups: HashMap<(DomainName, RecordType), Vec<ResourceRecord>> = HashMap::new();
        for rr in records.iter() {
            groups
                .entry((rr.name.clone(), rr.record_type()))
                .or_default()
                .push(rr.clone());
        }
        for (key, rrs) in groups {
            let min_ttl = rrs
                .iter()
                .map(|rr| rr.ttl)
                .min()
                .expect("group is non-empty by construction");
            self.entries.insert(
                key,
                CacheEntry {
                    records: rrs.into(),
                    rcode: Rcode::NoError,
                    expires: min_ttl.expires_at(now),
                },
            );
        }
    }

    /// Caches a negative answer (NXDOMAIN or NODATA) for `name`/`rtype`.
    pub fn insert_negative(
        &mut self,
        now: SimTime,
        name: DomainName,
        rtype: RecordType,
        rcode: Rcode,
    ) {
        self.entries.insert(
            (name, rtype),
            CacheEntry {
                records: empty_record_set(),
                rcode,
                expires: now + remnant_sim::SimDuration::secs(NEGATIVE_TTL_SECS),
            },
        );
    }

    /// Unexpired records for `name`/`rtype`. Negative entries return `None`
    /// here; use [`ResolverCache::get_entry`] to observe them.
    ///
    /// A hit returns a handle to the shared record set; no records are
    /// copied.
    pub fn get(&mut self, now: SimTime, name: &DomainName, rtype: RecordType) -> Option<RecordSet> {
        match self.get_entry(now, name, rtype) {
            Some(entry) if !entry.records.is_empty() => {
                let records = RecordSet::clone(&entry.records);
                self.hits += 1;
                Some(records)
            }
            Some(_) => {
                self.hits += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// The unexpired entry (positive or negative) for `name`/`rtype`.
    /// Expired entries are evicted on access (and counted as expired).
    /// Does not update hit counters.
    pub fn get_entry(
        &mut self,
        now: SimTime,
        name: &DomainName,
        rtype: RecordType,
    ) -> Option<&CacheEntry> {
        let key = (name.clone(), rtype);
        if let Some(entry) = self.entries.get(&key) {
            if entry.expires <= now {
                self.entries.remove(&key);
                self.expired += 1;
                return None;
            }
        }
        self.entries.get(&key)
    }

    /// True if a *negative* unexpired entry exists for `name`/`rtype`.
    pub fn has_negative(&mut self, now: SimTime, name: &DomainName, rtype: RecordType) -> bool {
        self.get_entry(now, name, rtype)
            .is_some_and(|e| e.records.is_empty())
    }

    /// Drops every entry — the pre-experiment purge from Sec IV-B.1.
    pub fn purge(&mut self) {
        self.entries.clear();
    }

    /// Drops only expired entries — positive and negative alike — and counts
    /// each eviction toward [`ResolverCache::expired_count`], matching the
    /// evict-on-access accounting in [`ResolverCache::get_entry`].
    pub fn evict_expired(&mut self, now: SimTime) {
        let before = self.entries.len();
        self.entries.retain(|_, entry| entry.expires > now);
        self.expired += (before - self.entries.len()) as u64;
    }

    /// Number of entries currently stored (including expired-but-unevicted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) since construction. Purging does not reset them.
    /// An expired lookup counts as a miss; see
    /// [`ResolverCache::expired_count`] for how many misses were
    /// TTL-expired entries rather than cold ones.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Entries evicted on access because their TTL had lapsed. A subset
    /// of the miss count in [`ResolverCache::stats`].
    pub fn expired_count(&self) -> u64 {
        self.expired
    }
}

/// The cache's counters through the unified reading surface.
impl remnant_obs::Instrumented for ResolverCache {
    fn component(&self) -> &'static str {
        "dns.resolver_cache"
    }

    fn counters(&self) -> Vec<(remnant_obs::MetricKey, u64)> {
        vec![
            (remnant_obs::MetricKey::named("cache.hits"), self.hits),
            (remnant_obs::MetricKey::named("cache.misses"), self.misses),
            (remnant_obs::MetricKey::named("cache.expired"), self.expired),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordData, Ttl};
    use remnant_sim::SimDuration;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    fn a(owner: &str, ttl: u32, ip: [u8; 4]) -> ResourceRecord {
        ResourceRecord::new(name(owner), Ttl::secs(ttl), RecordData::A(ip.into()))
    }

    #[test]
    fn expiry_is_exact() {
        let mut cache = ResolverCache::new();
        cache.insert(SimTime::EPOCH, vec![a("x.com", 100, [1, 1, 1, 1])]);
        let just_before = SimTime::from_secs(99);
        let at = SimTime::from_secs(100);
        assert!(cache
            .get(just_before, &name("x.com"), RecordType::A)
            .is_some());
        assert!(cache.get(at, &name("x.com"), RecordType::A).is_none());
    }

    #[test]
    fn group_uses_min_ttl() {
        let mut cache = ResolverCache::new();
        cache.insert(
            SimTime::EPOCH,
            vec![a("x.com", 50, [1, 1, 1, 1]), a("x.com", 500, [2, 2, 2, 2])],
        );
        assert!(cache
            .get(SimTime::from_secs(51), &name("x.com"), RecordType::A)
            .is_none());
    }

    #[test]
    fn mixed_types_are_cached_separately() {
        let mut cache = ResolverCache::new();
        let ns = ResourceRecord::new(
            name("x.com"),
            Ttl::days(2),
            RecordData::Ns(name("ns.x.com")),
        );
        cache.insert(SimTime::EPOCH, vec![a("x.com", 60, [1, 1, 1, 1]), ns]);
        let later = SimTime::from_secs(3600);
        assert!(cache.get(later, &name("x.com"), RecordType::A).is_none());
        assert!(cache.get(later, &name("x.com"), RecordType::Ns).is_some());
    }

    #[test]
    fn purge_clears_everything() {
        let mut cache = ResolverCache::new();
        cache.insert(SimTime::EPOCH, vec![a("x.com", 1000, [1, 1, 1, 1])]);
        cache.insert_negative(
            SimTime::EPOCH,
            name("y.com"),
            RecordType::A,
            Rcode::NxDomain,
        );
        cache.purge();
        assert!(cache.is_empty());
        assert!(cache
            .get(SimTime::EPOCH, &name("x.com"), RecordType::A)
            .is_none());
    }

    #[test]
    fn negative_entries_visible_via_entry_api() {
        let mut cache = ResolverCache::new();
        cache.insert_negative(
            SimTime::EPOCH,
            name("y.com"),
            RecordType::A,
            Rcode::NxDomain,
        );
        assert!(cache
            .get(SimTime::EPOCH, &name("y.com"), RecordType::A)
            .is_none());
        assert!(cache.has_negative(SimTime::EPOCH, &name("y.com"), RecordType::A));
        let entry = cache
            .get_entry(SimTime::EPOCH, &name("y.com"), RecordType::A)
            .unwrap();
        assert_eq!(entry.rcode, Rcode::NxDomain);
        // Negative entries expire too.
        let later = SimTime::EPOCH + SimDuration::secs(NEGATIVE_TTL_SECS + 1);
        assert!(!cache.has_negative(later, &name("y.com"), RecordType::A));
    }

    #[test]
    fn evict_expired_retains_live_entries() {
        let mut cache = ResolverCache::new();
        cache.insert(SimTime::EPOCH, vec![a("short.com", 10, [1, 1, 1, 1])]);
        cache.insert(SimTime::EPOCH, vec![a("long.com", 1000, [2, 2, 2, 2])]);
        cache.evict_expired(SimTime::from_secs(11));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evict_expired_sweeps_positive_and_negative_entries_together() {
        let mut cache = ResolverCache::new();
        // Positive entry expiring at t=10, negative at t=NEGATIVE_TTL_SECS,
        // and one long-lived survivor of each kind.
        cache.insert(SimTime::EPOCH, vec![a("short.com", 10, [1, 1, 1, 1])]);
        cache.insert(SimTime::EPOCH, vec![a("long.com", 1_000_000, [2, 2, 2, 2])]);
        cache.insert_negative(
            SimTime::EPOCH,
            name("gone.com"),
            RecordType::A,
            Rcode::NxDomain,
        );
        let late = SimTime::from_secs(NEGATIVE_TTL_SECS + 1);
        cache.insert_negative(late, name("fresh.com"), RecordType::A, Rcode::NxDomain);
        assert_eq!(cache.len(), 4);

        // One pass past both expiry horizons evicts the expired positive AND
        // the expired negative entry, and counts both as expirations.
        cache.evict_expired(late);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.expired_count(), 2);
        assert!(cache.get(late, &name("long.com"), RecordType::A).is_some());
        assert!(cache.has_negative(late, &name("fresh.com"), RecordType::A));
        assert!(!cache.has_negative(late, &name("gone.com"), RecordType::A));
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut cache = ResolverCache::new();
        cache.insert(SimTime::EPOCH, vec![a("x.com", 100, [1, 1, 1, 1])]);
        let _ = cache.get(SimTime::EPOCH, &name("x.com"), RecordType::A);
        let _ = cache.get(SimTime::EPOCH, &name("nope.com"), RecordType::A);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.expired_count(), 0);
    }

    #[test]
    fn expired_lookups_count_as_expired_misses() {
        use remnant_obs::Instrumented;

        let mut cache = ResolverCache::new();
        cache.insert(SimTime::EPOCH, vec![a("x.com", 100, [1, 1, 1, 1])]);
        let _ = cache.get(SimTime::from_secs(200), &name("x.com"), RecordType::A);
        assert_eq!(cache.stats(), (0, 1), "expired lookup is a miss");
        assert_eq!(cache.expired_count(), 1);
        let mut registry = remnant_obs::MetricsRegistry::new();
        cache.export_into(&mut registry);
        assert_eq!(
            registry.counter_labeled("cache.expired", &[("component", "dns.resolver_cache")]),
            1
        );
    }

    #[test]
    fn insert_empty_is_noop() {
        let mut cache = ResolverCache::new();
        cache.insert(SimTime::EPOCH, vec![]);
        assert!(cache.is_empty());
    }
}
