//! Serve smoke test: a real daemon on an ephemeral port, exercised with
//! real UDP and TCP sockets, answering from the simulated world through
//! the recursive resolver — including the 512-byte truncation dance.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

use remnant_dns::{
    Query, Rcode, RecordData, RecordType, RecursiveResolver, ResourceRecord, Response, Ttl,
};
use remnant_net::Region;
use remnant_wire::{
    query_id, Message, ResolverService, ServerCore, SharedTransport, WireServer, HEADER_LEN,
    MAX_UDP_PAYLOAD,
};
use remnant_world::{World, WorldConfig};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

fn udp_exchange(server: SocketAddr, frame: &[u8]) -> Vec<u8> {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("client socket");
    socket
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("timeout");
    socket.send_to(frame, server).expect("send");
    let mut buf = [0u8; 2048];
    let (len, from) = socket
        .recv_from(&mut buf)
        .expect("daemon answered over UDP");
    assert_eq!(from, server);
    buf[..len].to_vec()
}

fn tcp_exchange(server: SocketAddr, frame: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server).expect("connect");
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("timeout");
    let len = u16::try_from(frame.len()).expect("request fits a TCP frame");
    stream.write_all(&len.to_be_bytes()).expect("length prefix");
    stream.write_all(frame).expect("request body");
    let mut len_bytes = [0u8; 2];
    stream
        .read_exact(&mut len_bytes)
        .expect("daemon answered over TCP");
    let mut reply = vec![0u8; usize::from(u16::from_be_bytes(len_bytes))];
    stream.read_exact(&mut reply).expect("full reply body");
    reply
}

fn encoded_query(query: &Query) -> Vec<u8> {
    Message::query(query_id(query), query)
        .encode()
        .expect("query encodes")
}

/// What the daemon should serve for `query`: the in-process resolver's
/// resolution, mapped exactly the way `ResolverService` maps it.
fn in_process_answer(world: &Arc<World>, query: &Query) -> Response {
    let mut resolver = RecursiveResolver::new(world.clock(), Region::Oregon);
    let mut transport = SharedTransport(Arc::clone(world));
    match resolver.resolve(&mut transport, &query.name, query.rtype) {
        Ok(resolution) => Response {
            query: query.clone(),
            rcode: resolution.rcode,
            authoritative: false,
            answers: resolution.records.into(),
            authority: remnant_dns::empty_record_set(),
            additional: remnant_dns::empty_record_set(),
        },
        Err(_) => Response::empty(query.clone(), Rcode::ServFail),
    }
}

#[test]
fn daemon_matches_in_process_resolution_over_udp_and_tcp() {
    let world = Arc::new(World::generate(WorldConfig::small(11)));
    let resolver = RecursiveResolver::new(world.clock(), Region::Oregon);
    let service = ResolverService::new(resolver, SharedTransport(Arc::clone(&world)));
    let core = Arc::new(ServerCore::new(service));
    let server = WireServer::start(core, "127.0.0.1:0").expect("daemon binds");

    // Probe the first few portal names, the paper's probe set.
    for site in world.sites().iter().take(3) {
        let query = Query::new(site.www.clone(), RecordType::A);
        let frame = encoded_query(&query);

        let udp_reply = udp_exchange(server.udp_addr(), &frame);
        let message = Message::decode(&udp_reply).expect("UDP reply parses");
        assert_eq!(message.id, query_id(&query), "transaction ID echoed");
        assert!(message.flags.qr && !message.flags.tc);
        let served = message.to_response().expect("reply carries the question");

        let expected = in_process_answer(&world, &query);
        assert_eq!(served.rcode, expected.rcode, "rcode for {}", site.www);
        assert_eq!(
            served.answers, expected.answers,
            "answers for {} diverge from the in-process resolver",
            site.www
        );

        // The same frame over TCP returns byte-identical data: the
        // cached encoding is shared across both listeners.
        let tcp_reply = tcp_exchange(server.tcp_addr(), &frame);
        assert_eq!(tcp_reply, udp_reply);
    }

    server.shutdown();
}

#[test]
fn nxdomain_travels_the_wire() {
    let world = Arc::new(World::generate(WorldConfig::small(23)));
    let resolver = RecursiveResolver::new(world.clock(), Region::Oregon);
    let service = ResolverService::new(resolver, SharedTransport(Arc::clone(&world)));
    let core = Arc::new(ServerCore::new(service));
    let server = WireServer::start(core, "127.0.0.1:0").expect("daemon binds");

    let query = Query::new(
        "no-such-site-anywhere.com".parse().expect("name"),
        RecordType::A,
    );
    let expected = in_process_answer(&world, &query);
    let reply = udp_exchange(server.udp_addr(), &encoded_query(&query));
    let served = Message::decode(&reply)
        .expect("reply parses")
        .to_response()
        .expect("question echoed");
    assert_eq!(served.rcode, expected.rcode);
    assert_eq!(served.answers, expected.answers);

    server.shutdown();
}

#[test]
fn oversized_answer_truncates_on_udp_and_retries_over_tcp() {
    // A service whose answer cannot fit a 512-byte datagram.
    let big = |query: &Query| {
        (query.rtype == RecordType::Txt).then(|| {
            Response::answer(
                query.clone(),
                (0..30)
                    .map(|i| {
                        ResourceRecord::new(
                            query.name.clone(),
                            Ttl::secs(60),
                            RecordData::Txt(format!("padding-{i:04}-{}", "x".repeat(24))),
                        )
                    })
                    .collect::<Vec<_>>(),
            )
        })
    };
    let core = Arc::new(ServerCore::new(big));
    let server = WireServer::start(core, "127.0.0.1:0").expect("daemon binds");

    let query = Query::new("big.example.com".parse().expect("name"), RecordType::Txt);
    let frame = encoded_query(&query);

    // UDP: a truncation stub — TC set, question echoed, no answers.
    let udp_reply = udp_exchange(server.udp_addr(), &frame);
    assert!(udp_reply.len() <= MAX_UDP_PAYLOAD);
    assert_ne!(udp_reply[2] & 0x02, 0, "TC bit set");
    assert_eq!(
        &udp_reply[HEADER_LEN..],
        &frame[HEADER_LEN..],
        "truncation stub echoes the question"
    );

    // The client retries over TCP, as resolvers do, and gets it all.
    let tcp_reply = tcp_exchange(server.tcp_addr(), &frame);
    assert!(tcp_reply.len() > MAX_UDP_PAYLOAD);
    let message = Message::decode(&tcp_reply).expect("TCP reply parses");
    assert!(!message.flags.tc, "TCP reply is not truncated");
    assert_eq!(message.answers.len(), 30);

    server.shutdown();
}
