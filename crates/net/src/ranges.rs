//! Longest-prefix-match IP range database (RouteView substitute).
//!
//! The authors extracted each provider's announced IP ranges from the
//! RouteView BGP archive and matched collected A records against them
//! (Sec IV-B.2, "A-matching"). [`IpRangeDb`] is the same structure: a set of
//! CIDR blocks each tagged with an owner value, answering "who owns this
//! IP?" by longest-prefix match.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::cidr::Ipv4Cidr;

/// A longest-prefix-match database mapping CIDR blocks to owner values.
///
/// Lookup cost is at most 33 hash probes (one per prefix length actually
/// present), independent of database size.
///
/// # Example
///
/// ```
/// use remnant_net::IpRangeDb;
///
/// let mut db: IpRangeDb<&str> = IpRangeDb::new();
/// db.insert("10.0.0.0/8".parse()?, "coarse");
/// db.insert("10.9.0.0/16".parse()?, "fine");
/// // Longest prefix wins.
/// assert_eq!(db.lookup("10.9.1.1".parse()?), Some(&"fine"));
/// assert_eq!(db.lookup("10.1.1.1".parse()?), Some(&"coarse"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IpRangeDb<T> {
    /// One map per prefix length; `by_len[l]` maps masked network -> value.
    by_len: Vec<HashMap<u32, T>>,
    /// Prefix lengths present, sorted descending (checked first).
    lens_desc: Vec<u8>,
    len_entries: usize,
}

impl<T> IpRangeDb<T> {
    /// Creates an empty database.
    pub fn new() -> Self {
        IpRangeDb {
            by_len: (0..=32).map(|_| HashMap::new()).collect(),
            lens_desc: Vec::new(),
            len_entries: 0,
        }
    }

    /// Inserts a block with its owner value, replacing and returning any
    /// previous value for exactly the same block.
    pub fn insert(&mut self, block: Ipv4Cidr, value: T) -> Option<T> {
        let len = block.prefix_len();
        let net = u32::from(block.network());
        let prev = self.by_len[usize::from(len)].insert(net, value);
        if prev.is_none() {
            self.len_entries += 1;
            if !self.lens_desc.contains(&len) {
                self.lens_desc.push(len);
                self.lens_desc.sort_unstable_by(|a, b| b.cmp(a));
            }
        }
        prev
    }

    /// Removes a block, returning its value if it was present.
    pub fn remove(&mut self, block: &Ipv4Cidr) -> Option<T> {
        let len = usize::from(block.prefix_len());
        let removed = self.by_len[len].remove(&u32::from(block.network()));
        if removed.is_some() {
            self.len_entries -= 1;
            if self.by_len[len].is_empty() {
                self.lens_desc.retain(|l| usize::from(*l) != len);
            }
        }
        removed
    }

    /// The owner of the longest prefix containing `addr`, if any.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&T> {
        let bits = u32::from(addr);
        for &len in &self.lens_desc {
            let masked = if len == 0 {
                0
            } else {
                bits & (u32::MAX << (32 - len))
            };
            if let Some(value) = self.by_len[usize::from(len)].get(&masked) {
                return Some(value);
            }
        }
        None
    }

    /// The matched block and owner for `addr`, if any.
    pub fn lookup_block(&self, addr: Ipv4Addr) -> Option<(Ipv4Cidr, &T)> {
        let bits = u32::from(addr);
        for &len in &self.lens_desc {
            let masked = if len == 0 {
                0
            } else {
                bits & (u32::MAX << (32 - len))
            };
            if let Some(value) = self.by_len[usize::from(len)].get(&masked) {
                let block = Ipv4Cidr::new(Ipv4Addr::from(masked), len)
                    .expect("prefix length <= 32 by construction");
                return Some((block, value));
            }
        }
        None
    }

    /// True if some block contains `addr`.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.lookup(addr).is_some()
    }

    /// Number of blocks stored.
    pub fn len(&self) -> usize {
        self.len_entries
    }

    /// True if no blocks are stored.
    pub fn is_empty(&self) -> bool {
        self.len_entries == 0
    }

    /// Iterates `(block, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Cidr, &T)> {
        self.by_len.iter().enumerate().flat_map(|(len, map)| {
            map.iter().map(move |(net, value)| {
                let block = Ipv4Cidr::new(Ipv4Addr::from(*net), len as u8)
                    .expect("stored prefix lengths are <= 32");
                (block, value)
            })
        })
    }
}

impl<T> Extend<(Ipv4Cidr, T)> for IpRangeDb<T> {
    fn extend<I: IntoIterator<Item = (Ipv4Cidr, T)>>(&mut self, iter: I) {
        for (block, value) in iter {
            self.insert(block, value);
        }
    }
}

impl<T> FromIterator<(Ipv4Cidr, T)> for IpRangeDb<T> {
    fn from_iter<I: IntoIterator<Item = (Ipv4Cidr, T)>>(iter: I) -> Self {
        let mut db = IpRangeDb::new();
        db.extend(iter);
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().expect("test cidr")
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().expect("test ip")
    }

    #[test]
    fn empty_db_matches_nothing() {
        let db: IpRangeDb<u8> = IpRangeDb::new();
        assert_eq!(db.lookup(ip("1.2.3.4")), None);
        assert!(db.is_empty());
    }

    #[test]
    fn longest_prefix_wins() {
        let mut db = IpRangeDb::new();
        db.insert(cidr("10.0.0.0/8"), 8u8);
        db.insert(cidr("10.1.0.0/16"), 16u8);
        db.insert(cidr("10.1.2.0/24"), 24u8);
        assert_eq!(db.lookup(ip("10.1.2.3")), Some(&24));
        assert_eq!(db.lookup(ip("10.1.9.9")), Some(&16));
        assert_eq!(db.lookup(ip("10.9.9.9")), Some(&8));
        assert_eq!(db.lookup(ip("11.0.0.0")), None);
    }

    #[test]
    fn insert_same_block_replaces() {
        let mut db = IpRangeDb::new();
        assert_eq!(db.insert(cidr("10.0.0.0/8"), 1u8), None);
        assert_eq!(db.insert(cidr("10.0.0.0/8"), 2u8), Some(1));
        assert_eq!(db.len(), 1);
        assert_eq!(db.lookup(ip("10.0.0.1")), Some(&2));
    }

    #[test]
    fn remove_unshadows() {
        let mut db = IpRangeDb::new();
        db.insert(cidr("10.0.0.0/8"), "outer");
        db.insert(cidr("10.1.0.0/16"), "inner");
        assert_eq!(db.remove(&cidr("10.1.0.0/16")), Some("inner"));
        assert_eq!(db.lookup(ip("10.1.0.1")), Some(&"outer"));
        assert_eq!(db.remove(&cidr("10.1.0.0/16")), None);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn lookup_block_reports_matched_prefix() {
        let mut db = IpRangeDb::new();
        db.insert(cidr("104.16.0.0/12"), ());
        let (block, _) = db.lookup_block(ip("104.20.0.1")).expect("match");
        assert_eq!(block, cidr("104.16.0.0/12"));
    }

    #[test]
    fn default_route_matches_everything() {
        let mut db = IpRangeDb::new();
        db.insert(cidr("0.0.0.0/0"), "default");
        db.insert(cidr("192.0.2.0/24"), "doc");
        assert_eq!(db.lookup(ip("8.8.8.8")), Some(&"default"));
        assert_eq!(db.lookup(ip("192.0.2.55")), Some(&"doc"));
    }

    #[test]
    fn host_routes_match_exactly() {
        let mut db = IpRangeDb::new();
        db.insert(cidr("1.2.3.4/32"), ());
        assert!(db.contains(ip("1.2.3.4")));
        assert!(!db.contains(ip("1.2.3.5")));
    }

    #[test]
    fn from_iterator_collects() {
        let db: IpRangeDb<u8> = vec![(cidr("10.0.0.0/8"), 1), (cidr("11.0.0.0/8"), 2)]
            .into_iter()
            .collect();
        assert_eq!(db.len(), 2);
        assert_eq!(db.iter().count(), 2);
    }
}
