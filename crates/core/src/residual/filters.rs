//! The three-stage filtering procedure of Fig 8.
//!
//! 1. **IP-matching filter** — drop addresses inside the scanned provider's
//!    own ranges (those sites are *current* customers; nothing residual).
//! 2. **A-matching filter** — re-resolve each surviving site normally
//!    (`A_nor`) and keep `A_diff = A_IP − A_nor`: the **hidden records**
//!    only the DPS nameservers reveal.
//! 3. **HTML-verification filter** — a hidden record is only exploitable if
//!    it still points at the live origin; verify by fetching the landing
//!    page via the current public address and via the hidden address and
//!    comparing titles/meta (Sec IV-C.3).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use remnant_dns::{DnsTransport, RecordType, RecursiveResolver};
use remnant_http::HttpTransport;
use remnant_net::Region;
use remnant_obs::{Instrumented, MetricKey, MetricsRegistry};
use remnant_provider::ProviderId;
use remnant_sim::SimClock;

use crate::collector::Target;
use crate::matchers::ProviderMatcher;
use crate::residual::HiddenRecord;
use crate::verify::{HtmlVerifier, VerifyOutcome};

/// One weekly pass through the pipeline, with per-stage counts (the Fig 8
/// funnel) and the Table VI outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeeklyScanReport {
    /// Which provider was scanned.
    pub provider: ProviderId,
    /// Week index (0-based).
    pub week: u32,
    /// Sites whose direct query was answered with A records.
    pub retrieved: usize,
    /// Sites surviving the IP-matching filter.
    pub after_ip_matching: usize,
    /// Hidden records after the A-matching filter.
    pub hidden: Vec<HiddenRecord>,
    /// Ranks of hidden records verified as live origins.
    pub verified: Vec<usize>,
}

impl WeeklyScanReport {
    /// Verified fraction of hidden records, if any were found.
    pub fn verified_rate(&self) -> Option<f64> {
        (!self.hidden.is_empty()).then(|| self.verified.len() as f64 / self.hidden.len() as f64)
    }
}

/// The per-stage funnel counter names, in stage order. Each carries
/// `provider` and `week` labels, so the Fig 8 attrition table is
/// reproducible from recorded metrics alone.
pub const FUNNEL_STAGES: [&str; 4] = [
    "filter.retrieved",
    "filter.after_ip_matching",
    "filter.hidden",
    "filter.verified",
];

/// The reusable filter pipeline.
#[derive(Debug)]
pub struct FilterPipeline {
    clock: SimClock,
    matcher: ProviderMatcher,
    resolver: RecursiveResolver,
    verifier: HtmlVerifier,
    /// Per-stage funnel counters, labeled by provider and week.
    funnel: MetricsRegistry,
}

impl FilterPipeline {
    /// Creates a pipeline resolving normally from `region` and verifying
    /// from `scanner_src`.
    pub fn new(clock: SimClock, region: Region, scanner_src: Ipv4Addr) -> Self {
        FilterPipeline {
            resolver: RecursiveResolver::new(clock.clone(), region),
            clock,
            matcher: ProviderMatcher::new(),
            verifier: HtmlVerifier::new(scanner_src),
            funnel: MetricsRegistry::new(),
        }
    }

    /// The recorded funnel counters (one [`FUNNEL_STAGES`] quadruple per
    /// `(provider, week)` pass) plus the verifier's counter surface — the
    /// data behind the Fig 8 attrition table.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut metrics = self.funnel.clone();
        self.verifier.export_into(&mut metrics);
        metrics
    }

    /// Runs the full pipeline on one weekly raw scan result
    /// (`rank -> addresses retrieved from the DPS nameservers`).
    pub fn run<T: DnsTransport + HttpTransport>(
        &mut self,
        transport: &mut T,
        provider: ProviderId,
        week: u32,
        raw: &HashMap<usize, Vec<Ipv4Addr>>,
        targets: &[Target],
    ) -> WeeklyScanReport {
        // Stage 1: IP-matching filter.
        let mut survivors: Vec<(usize, Vec<Ipv4Addr>)> = raw
            .iter()
            .filter_map(|(rank, addrs)| {
                let outside: Vec<Ipv4Addr> = addrs
                    .iter()
                    .copied()
                    .filter(|a| self.matcher.a_match(*a) != Some(provider))
                    .collect();
                (!outside.is_empty()).then_some((*rank, outside))
            })
            .collect();
        survivors.sort_unstable_by_key(|(rank, _)| *rank);
        let after_ip_matching = survivors.len();

        // Stage 2: A-matching filter. One fresh resolution round.
        self.resolver.purge_cache();
        let mut hidden = Vec::new();
        for (rank, stored) in survivors {
            let (apex, www) = &targets[rank];
            let public = self
                .resolver
                .resolve(transport, www, RecordType::A)
                .map(|r| r.addresses())
                .unwrap_or_default();
            let diff: Vec<Ipv4Addr> = stored
                .iter()
                .copied()
                .filter(|a| !public.contains(a))
                .collect();
            if !diff.is_empty() {
                hidden.push(HiddenRecord {
                    rank,
                    apex: apex.clone(),
                    hidden: diff,
                    public,
                });
            }
        }

        // Stage 3: HTML verification filter.
        let now = self.clock.now();
        let mut verified = Vec::new();
        for record in &hidden {
            // The reference fetch goes through the current public
            // front-end; without one the record cannot be verified (the
            // paper's lower-bound caveat).
            let Some(reference) = record.public.last().copied() else {
                continue;
            };
            let host = targets[record.rank].1.as_str();
            let is_origin = record.hidden.iter().any(|candidate| {
                self.verifier
                    .verify(transport, now, host, reference, *candidate)
                    == VerifyOutcome::Verified
            });
            if is_origin {
                verified.push(record.rank);
            }
        }

        let report = WeeklyScanReport {
            provider,
            week,
            retrieved: raw.len(),
            after_ip_matching,
            hidden,
            verified,
        };
        self.record_funnel(&report);
        report
    }

    /// Records one pass's per-stage attrition into the funnel registry.
    fn record_funnel(&mut self, report: &WeeklyScanReport) {
        let week = report.week.to_string();
        for (stage, count) in FUNNEL_STAGES.into_iter().zip([
            report.retrieved,
            report.after_ip_matching,
            report.hidden.len(),
            report.verified.len(),
        ]) {
            self.funnel.add_key(
                MetricKey::labeled(
                    stage,
                    &[("provider", report.provider.name()), ("week", &week)],
                ),
                count as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::RecordCollector;
    use crate::residual::CloudflareScanner;
    use crate::SCANNER_SOURCE;
    use remnant_provider::{ReroutingMethod, ServicePlan};
    use remnant_world::{SiteState, World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig {
            population: 600,
            seed: 77,
            warmup_days: 0,
            calibration: remnant_world::Calibration::paper(),
        })
    }

    fn targets(world: &World) -> Vec<Target> {
        world
            .sites()
            .iter()
            .map(|s| (s.apex.clone(), s.www.clone()))
            .collect()
    }

    fn pipeline(world: &World) -> FilterPipeline {
        FilterPipeline::new(world.clock(), Region::Ashburn, SCANNER_SOURCE)
    }

    /// Scan Cloudflare and run the pipeline in a world where `mutate` was
    /// applied between harvest and scan.
    fn scan_after(
        world: &mut World,
        mutate: impl FnOnce(&mut World),
    ) -> (WeeklyScanReport, Vec<Target>) {
        let targets = targets(world);
        let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
        let snapshot = collector.collect(world, &targets, 0);
        let mut scanner = CloudflareScanner::new(world.clock(), "cloudflare");
        scanner.harvest_fleet(world, &snapshot);
        mutate(world);
        let raw = scanner.scan(world, &targets, 0);
        let report = pipeline(world).run(world, ProviderId::Cloudflare, 0, &raw, &targets);
        (report, targets)
    }

    fn cloudflare_ns_victim(w: &World, firewalled_ok: bool) -> remnant_world::Website {
        w.sites()
            .iter()
            .find(|s| {
                (firewalled_ok || (!s.firewalled && !s.dynamic_meta))
                    && matches!(
                        s.state,
                        SiteState::Dps {
                            provider: ProviderId::Cloudflare,
                            rerouting: ReroutingMethod::Ns,
                            paused: false,
                            ..
                        }
                    )
            })
            .expect("cloudflare NS customer exists")
            .clone()
    }

    #[test]
    fn steady_world_has_no_hidden_records() {
        let mut w = world();
        let (report, _) = scan_after(&mut w, |_| {});
        assert!(report.retrieved > 0, "active customers answer");
        assert_eq!(
            report.after_ip_matching, 0,
            "stage 1 removes all active customers"
        );
        assert!(report.hidden.is_empty());
        assert!(report.verified.is_empty());
        assert_eq!(report.verified_rate(), None);
    }

    #[test]
    fn switcher_with_kept_origin_is_hidden_and_verified() {
        let mut w = world();
        let victim = cloudflare_ns_victim(&w, false);
        let origin = victim.origin;
        let (report, _) = scan_after(&mut w, |w| {
            w.force_switch(
                victim.id,
                ProviderId::Fastly,
                ReroutingMethod::Cname,
                ServicePlan::Pro,
                true,
            );
            w.step_days(1);
        });
        let rank = victim.id.0 as usize;
        let record = report
            .hidden
            .iter()
            .find(|h| h.rank == rank)
            .expect("switcher's remnant is a hidden record");
        assert_eq!(record.hidden, vec![origin]);
        assert!(
            record.public.iter().all(|a| *a != origin),
            "public resolution shows the new provider"
        );
        assert!(report.verified.contains(&rank), "origin verified live");
    }

    #[test]
    fn paused_customer_is_not_hidden() {
        // Paused: the DPS answer equals the public answer (both origin), so
        // the A-matching filter removes it.
        let mut w = world();
        let victim = cloudflare_ns_victim(&w, true);
        let (report, _) = scan_after(&mut w, |w| {
            w.force_pause(victim.id);
            w.step_days(1);
        });
        assert!(
            !report.hidden.iter().any(|h| h.rank == victim.id.0 as usize),
            "pause is exposure, but not residual-hidden"
        );
    }

    #[test]
    fn leaver_self_hosting_same_origin_is_not_hidden() {
        let mut w = world();
        let victim = cloudflare_ns_victim(&w, true);
        let (report, _) = scan_after(&mut w, |w| {
            w.force_leave(victim.id, true);
            // Stale delegation NS TTL must expire for public resolution to
            // see the self-hosted zone again.
            w.step_days(3);
        });
        assert!(
            !report.hidden.iter().any(|h| h.rank == victim.id.0 as usize),
            "public A equals the stored origin, so A-matching filters it"
        );
    }

    #[test]
    fn funnel_counters_match_the_report() {
        let mut w = world();
        let victim = cloudflare_ns_victim(&w, false);
        let targets = targets(&w);
        let mut collector = RecordCollector::new(w.clock(), Region::Ashburn);
        let snapshot = collector.collect(&mut w, &targets, 0);
        let mut scanner = CloudflareScanner::new(w.clock(), "cloudflare");
        scanner.harvest_fleet(&mut w, &snapshot);
        w.force_switch(
            victim.id,
            ProviderId::Fastly,
            ReroutingMethod::Cname,
            ServicePlan::Pro,
            true,
        );
        w.step_days(1);
        let raw = scanner.scan(&mut w, &targets, 0);
        let mut p = pipeline(&w);
        let report = p.run(&mut w, ProviderId::Cloudflare, 0, &raw, &targets);

        // The Fig 8 funnel is reproducible from the recorded metrics alone.
        let metrics = p.metrics();
        let provider = ProviderId::Cloudflare.name();
        let stage = |name: &'static str| {
            metrics.counter_key(&remnant_obs::MetricKey::labeled(
                name,
                &[("provider", provider), ("week", "0")],
            ))
        };
        assert_eq!(stage("filter.retrieved"), report.retrieved as u64);
        assert_eq!(
            stage("filter.after_ip_matching"),
            report.after_ip_matching as u64
        );
        assert_eq!(stage("filter.hidden"), report.hidden.len() as u64);
        assert_eq!(stage("filter.verified"), report.verified.len() as u64);
        assert!(stage("filter.verified") > 0, "the switcher verifies");
        // The verifier's counters ride along under its component label.
        let attempts = metrics.counter_key(
            &remnant_obs::MetricKey::named("verify.attempts")
                .with_label("component", "core.html_verifier"),
        );
        assert!(attempts > 0);
    }

    #[test]
    fn verified_is_a_subset_of_hidden() {
        let mut w = world();
        let victim = cloudflare_ns_victim(&w, true);
        let (report, _) = scan_after(&mut w, |w| {
            w.force_switch(
                victim.id,
                ProviderId::Incapsula,
                ReroutingMethod::Cname,
                ServicePlan::Pro,
                true,
            );
            w.step_days(1);
        });
        let hidden_ranks: Vec<usize> = report.hidden.iter().map(|h| h.rank).collect();
        for rank in &report.verified {
            assert!(hidden_ranks.contains(rank));
        }
        assert!(report.after_ip_matching >= report.hidden.len());
        assert!(report.retrieved >= report.after_ip_matching);
    }
}
