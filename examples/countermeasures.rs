//! The countermeasures of Sec VI-B, measured: rerun the residual scan
//! under (a) the observed vulnerable policy, (b) the strict "never answer
//! after termination" fix, and (c) the continuity-preserving
//! revalidate-against-public-DNS fix, plus (d) the customer-side fake-A
//! trick.
//!
//! Run with:
//! ```text
//! cargo run --release --example countermeasures
//! ```

use remnant::core::collector::{RecordCollector, Target};
use remnant::core::report::TextTable;
use remnant::core::residual::{CloudflareScanner, FilterPipeline};
use remnant::core::SCANNER_SOURCE;
use remnant::dns::{RecordType, RecursiveResolver};
use remnant::net::Region;
use remnant::provider::{ProviderId, ResidualPolicy};
use remnant::world::{World, WorldConfig};

/// Runs a week of churn plus one scan and returns (hidden, verified).
fn scan_once(world: &mut World) -> (usize, usize) {
    let targets: Vec<Target> = world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect();
    let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
    let snapshot = collector.collect(world, &targets, 0);
    let mut scanner = CloudflareScanner::new(world.clock(), "cloudflare");
    scanner.harvest_fleet(world, &snapshot);

    world.step_days(7);

    // For the revalidation policy, the provider periodically re-resolves
    // its recently terminated customers (Sec VI-B-1).
    let clock = world.clock();
    let mut lookups: Vec<(remnant::dns::DomainName, Vec<std::net::Ipv4Addr>)> = Vec::new();
    {
        // Gather current public answers for all residual hosts first (the
        // provider cannot borrow the world while being mutated).
        let hosts: Vec<remnant::dns::DomainName> = world
            .sites()
            .iter()
            .filter_map(|s| {
                world
                    .provider(ProviderId::Cloudflare)
                    .residual(&s.apex)
                    .map(|_| s.www.clone())
            })
            .collect();
        let mut resolver = RecursiveResolver::new(clock, Region::Ashburn);
        for host in hosts {
            let addrs = resolver
                .resolve(world, &host, RecordType::A)
                .map(|r| r.addresses())
                .unwrap_or_default();
            lookups.push((host, addrs));
        }
    }
    world
        .provider_mut(ProviderId::Cloudflare)
        .revalidate_residuals(|host| {
            lookups
                .iter()
                .find(|(h, _)| h == host)
                .map(|(_, a)| a.clone())
                .unwrap_or_default()
        });

    let raw = scanner.scan(world, &targets, 1);
    let mut pipeline = FilterPipeline::new(world.clock(), Region::Ashburn, SCANNER_SOURCE);
    let report = pipeline.run(world, ProviderId::Cloudflare, 1, &raw, &targets);
    (report.hidden.len(), report.verified.len())
}

fn world_with_policy(policy: ResidualPolicy) -> World {
    let mut world = World::generate(WorldConfig::new(15_000, 2024));
    world
        .provider_mut(ProviderId::Cloudflare)
        .set_policy(policy);
    // Let the new policy govern a fresh round of churn.
    world.step_days(14);
    world
}

fn main() {
    let mut table = TextTable::new(["Policy (Sec VI-B)", "Hidden records", "Verified origins"]);

    let (hidden, verified) =
        scan_once(&mut world_with_policy(ResidualPolicy::cloudflare_observed()));
    table.row([
        "observed (vulnerable)".to_owned(),
        hidden.to_string(),
        verified.to_string(),
    ]);

    let (hidden, verified) = scan_once(&mut world_with_policy(ResidualPolicy::deny()));
    table.row([
        "never answer after termination".to_owned(),
        hidden.to_string(),
        verified.to_string(),
    ]);

    let (hidden, verified) = scan_once(&mut world_with_policy(
        ResidualPolicy::countermeasure_revalidate(ResidualPolicy::cloudflare_observed()),
    ));
    table.row([
        "revalidate against public DNS".to_owned(),
        hidden.to_string(),
        verified.to_string(),
    ]);

    println!("Cloudflare-style provider under three residual policies");
    println!("(new remnants accumulate over 3 weeks of churn, then one scan)\n");
    print!("{table}");
    println!(
        "\nThe vulnerable policy leaks origins; both provider-side fixes\n\
         eliminate verified exposures, as argued in Sec VI-B-1."
    );
}
