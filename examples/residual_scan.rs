//! The residual-resolution scanner, step by step (Sec V / Fig 8).
//!
//! Demonstrates the raw primitives without the study driver: harvest the
//! Cloudflare nameserver fleet, let the world churn so remnants appear,
//! scan directly, and walk the filter pipeline stage by stage.
//!
//! Run with:
//! ```text
//! cargo run --release --example residual_scan
//! ```

use remnant::core::collector::{RecordCollector, Target};
use remnant::core::report::{percent, TextTable};
use remnant::core::residual::{CloudflareScanner, FilterPipeline, IncapsulaScanner};
use remnant::core::SCANNER_SOURCE;
use remnant::net::Region;
use remnant::obs::{Instrumented, TRANSPORT_ANSWERED, TRANSPORT_SENT};
use remnant::provider::ProviderId;
use remnant::world::{World, WorldConfig};

fn main() {
    let mut world = World::generate(WorldConfig::new(15_000, 7));
    let targets: Vec<Target> = world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect();

    // --- Harvest phase (the attacker's reconnaissance). ---
    let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
    let snapshot = collector.collect(&mut world, &targets, 0);
    let mut cf = CloudflareScanner::new(world.clock(), "cloudflare");
    cf.harvest_fleet(&mut world, &snapshot);
    let mut inc = IncapsulaScanner::new(world.clock(), "incapdns");
    inc.harvest(&snapshot);
    println!(
        "harvested {} cloudflare nameservers and {} incapsula CNAME tokens",
        cf.fleet_size(),
        inc.harvested_count()
    );

    // --- Let a week of churn create fresh remnants. ---
    world.step_days(7);

    // --- Direct scans + the Fig 8 pipeline. ---
    let mut pipeline = FilterPipeline::new(world.clock(), Region::Ashburn, SCANNER_SOURCE);

    let raw = cf.scan(&mut world, &targets, 1);
    let cf_report = pipeline.run(&mut world, ProviderId::Cloudflare, 1, &raw, &targets);
    let raw = inc.scan(&mut world);
    let inc_report = pipeline.run(&mut world, ProviderId::Incapsula, 1, &raw, &targets);

    println!("\n== Fig 8 funnel ==");
    let mut table = TextTable::new([
        "Provider",
        "Retrieved",
        "After IP-matching",
        "Hidden (A-matching)",
        "Verified origins",
    ]);
    for report in [&cf_report, &inc_report] {
        table.row([
            report.provider.to_string(),
            report.retrieved.to_string(),
            report.after_ip_matching.to_string(),
            report.hidden.len().to_string(),
            format!(
                "{} ({})",
                report.verified.len(),
                percent(report.verified_rate().unwrap_or(0.0))
            ),
        ]);
    }
    print!("{table}");

    println!("\n== Exposed origins (first 10) ==");
    for record in cf_report.hidden.iter().take(10) {
        let verified = cf_report.verified.contains(&record.rank);
        println!(
            "  {:<28} hidden {:?} public {:?} {}",
            record.apex.to_string(),
            record.hidden,
            record.public,
            if verified { "<- VERIFIED ORIGIN" } else { "" }
        );
    }
    let counters = cf.counters();
    let read = |name: &str| {
        counters
            .iter()
            .find(|(key, _)| key.name == name)
            .map_or(0, |(_, value)| *value)
    };
    let (sent, answered) = (read(TRANSPORT_SENT), read(TRANSPORT_ANSWERED));
    println!(
        "\nscan traffic: {sent} direct queries, {answered} answered ({} ignored)",
        sent - answered
    );
}
