//! Error type for the measurement toolkit.

use std::error::Error;
use std::fmt;

/// Errors produced by the measurement toolkit.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying DNS operation failed irrecoverably.
    Dns(remnant_dns::DnsError),
    /// A study was configured inconsistently.
    Config(String),
    /// A scan prerequisite is missing (e.g. no harvested nameservers).
    MissingPrerequisite(String),
}

/// The workspace's named configuration-validation failure.
///
/// Defined in `remnant-engine` (the bottom of the dependency graph) and
/// re-exported here so `StudyConfig`, `ReproConfig`, and `EngineConfig`
/// builders all reject fields with one type and one rendering.
pub use remnant_engine::ConfigFieldError;

impl From<ConfigFieldError> for CoreError {
    fn from(e: ConfigFieldError) -> Self {
        CoreError::Config(e.to_string())
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dns(e) => write!(f, "dns failure: {e}"),
            CoreError::Config(msg) => write!(f, "invalid study configuration: {msg}"),
            CoreError::MissingPrerequisite(msg) => write!(f, "missing prerequisite: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Dns(e) => Some(e),
            _ => None,
        }
    }
}

impl From<remnant_dns::DnsError> for CoreError {
    fn from(e: remnant_dns::DnsError) -> Self {
        CoreError::Dns(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_dns_errors_with_source() {
        let inner = remnant_dns::DnsError::Timeout {
            name: "x.com".into(),
        };
        let err = CoreError::from(inner.clone());
        assert!(err.to_string().contains("x.com"));
        assert!(err.source().is_some());
        assert_eq!(err, CoreError::Dns(inner));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
