//! Traffic delivery: DPS absorption vs. direct origin floods.

use std::fmt;
use std::net::Ipv4Addr;

use remnant_provider::ProviderId;
use remnant_world::World;

use crate::botnet::Botnet;

/// Typical origin server uplink in Gbps — the asymmetry that makes DPS
/// necessary and origin exposure fatal.
pub const ORIGIN_UPLINK_GBPS: f64 = 1.0;

/// The result of delivering a flood at one address.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackOutcome {
    /// The address attacked.
    pub target: Ipv4Addr,
    /// True if the address belonged to a DPS edge (flood was scrubbed).
    pub hit_dps_edge: Option<ProviderId>,
    /// Malicious Gbps that reached the origin server.
    pub malicious_at_origin: f64,
    /// Legitimate Gbps still being delivered.
    pub legit_delivered: f64,
    /// Legitimate Gbps offered.
    pub legit_offered: f64,
}

impl AttackOutcome {
    /// True if the victim's service survived: most legitimate traffic is
    /// delivered and the origin uplink is not saturated by attack traffic.
    pub fn service_survives(&self) -> bool {
        let legit_ok =
            self.legit_offered <= 0.0 || self.legit_delivered / self.legit_offered >= 0.9;
        legit_ok && self.malicious_at_origin < ORIGIN_UPLINK_GBPS
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attack on {}: {} ({:.1} Gbps malicious at origin)",
            self.target,
            if self.service_survives() {
                "mitigated"
            } else {
                "SERVICE DOWN"
            },
            self.malicious_at_origin
        )
    }
}

/// A volumetric DDoS attack against one address.
#[derive(Clone, Copy, Debug)]
pub struct DdosAttack {
    botnet: Botnet,
    /// Legitimate background traffic of the victim (Gbps).
    legit_gbps: f64,
}

impl DdosAttack {
    /// Creates an attack by `botnet` against a victim serving
    /// `legit_gbps` of real traffic.
    pub fn new(botnet: Botnet, legit_gbps: f64) -> Self {
        DdosAttack { botnet, legit_gbps }
    }

    /// The attacking botnet.
    pub fn botnet(&self) -> &Botnet {
        &self.botnet
    }

    /// Delivers the flood at `target` in `world`.
    ///
    /// * A DPS edge address: anycast spreads the flood across every PoP of
    ///   the provider; each PoP's scrubbing center filters its share
    ///   (Sec II-A.1 — this is why "the total capacity of such networks ...
    ///   is sufficient to absorb the world's largest DDoS attack").
    /// * Any other address: the raw flood meets the origin uplink.
    pub fn launch(&self, world: &World, target: Ipv4Addr) -> AttackOutcome {
        let malicious = self.botnet.total_gbps();
        let provider = remnant_provider::ProviderId::ALL
            .into_iter()
            .find(|p| world.provider(*p).is_edge_address(target));
        match provider {
            Some(provider_id) => {
                let dps = world.provider(provider_id);
                let pops = dps.pops();
                let share = 1.0 / pops.len() as f64;
                let mut malicious_through = 0.0;
                let mut legit_through = 0.0;
                for pop in pops {
                    let outcome = dps
                        .scrub_at(pop.id(), malicious * share, self.legit_gbps * share)
                        .expect("every pop has a scrubbing center");
                    malicious_through += outcome.malicious_passed;
                    legit_through += outcome.legit_passed;
                }
                AttackOutcome {
                    target,
                    hit_dps_edge: Some(provider_id),
                    malicious_at_origin: malicious_through,
                    legit_delivered: legit_through,
                    legit_offered: self.legit_gbps,
                }
            }
            None => {
                // Direct at the origin: whatever exceeds the uplink starves
                // legitimate traffic out entirely.
                let total = malicious + self.legit_gbps;
                let legit_delivered = if total <= ORIGIN_UPLINK_GBPS {
                    self.legit_gbps
                } else {
                    self.legit_gbps * (ORIGIN_UPLINK_GBPS / total)
                };
                AttackOutcome {
                    target,
                    hit_dps_edge: None,
                    malicious_at_origin: malicious,
                    legit_delivered,
                    legit_offered: self.legit_gbps,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remnant_world::{SiteState, World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig {
            population: 300,
            seed: 99,
            warmup_days: 0,
            calibration: remnant_world::Calibration::paper(),
        })
    }

    #[test]
    fn dps_edge_absorbs_mirai_class_flood() {
        let w = world();
        let protected = w
            .sites()
            .iter()
            .find(|s| s.state.is_protected())
            .unwrap()
            .clone();
        let provider = protected.state.provider().unwrap();
        let edge = w.provider(provider).account(&protected.apex).unwrap().edge;
        let attack = DdosAttack::new(Botnet::mirai_class(), 0.5);
        let outcome = attack.launch(&w, edge);
        assert_eq!(outcome.hit_dps_edge, Some(provider));
        assert!(outcome.service_survives(), "{outcome}");
        assert!(outcome.malicious_at_origin < 1e-6);
    }

    #[test]
    fn direct_origin_flood_takes_service_down() {
        let w = world();
        let site = w
            .sites()
            .iter()
            .find(|s| s.state == SiteState::SelfHosted)
            .unwrap();
        let attack = DdosAttack::new(Botnet::booter(), 0.5);
        let outcome = attack.launch(&w, site.origin);
        assert_eq!(outcome.hit_dps_edge, None);
        assert!(!outcome.service_survives(), "{outcome}");
    }

    #[test]
    fn tiny_flood_below_uplink_is_survivable() {
        let w = world();
        let site = &w.sites()[0];
        let attack = DdosAttack::new(Botnet::new(10, 1.0), 0.1); // 0.01 Gbps
        let outcome = attack.launch(&w, site.origin);
        assert!(outcome.service_survives());
        assert_eq!(outcome.legit_delivered, 0.1);
    }

    #[test]
    fn outcome_display_reads_well() {
        let outcome = AttackOutcome {
            target: Ipv4Addr::new(1, 2, 3, 4),
            hit_dps_edge: None,
            malicious_at_origin: 12.0,
            legit_delivered: 0.0,
            legit_offered: 1.0,
        };
        assert!(outcome.to_string().contains("SERVICE DOWN"));
    }
}
