//! Time-indexed snapshot store and columnar query layer over persisted
//! collection rounds.
//!
//! A spill-mode campaign leaves its full history on disk: one RSNP v1
//! file per round, full or delta. This crate reopens that directory as a
//! [`SnapshotStore`] — a generation-aware, lazily-loaded sequence of
//! rounds — and layers a small query API on top:
//!
//! - **Filter**: [`RoundsQuery`] narrows by round number, day, or week
//!   without touching record data.
//! - **Project**: [`RoundsQuery::project`] folds one record column
//!   (A/CNAME/NS) into counts, a per-round series, and a per-site ECDF.
//! - **Join**: [`RoundsQuery::joined`] pairs consecutive rounds for
//!   diff-style analyses.
//! - **Diff generations**: [`RoundsQuery::generation_diff`] reads each
//!   round's dirty/clean shard split from metadata alone.
//! - **Plan**: [`QueryPlan`]s replay the paper's analyses (adoption,
//!   behavior, pauses, unchanged candidates, the Fig 8 funnel, the
//!   residual-scan timeline) over the store, byte-identical to the live
//!   study's reports.
//! - **Classify once**: [`PlanContext`] / [`ClassifiedStore`] classify
//!   each round's shards exactly once through the delta-aware
//!   classification cache and build per-provider posting lists, so every
//!   plan of a run shares one classified scan — see [`classified`].
//!
//! Determinism: rounds are visited in collection order and sites in rank
//! order, and the store reconstructs every snapshot byte-identically to
//! what the collector wrote (the per-shard frames round-trip exactly), so
//! every query output is reproducible across runs, worker counts, and
//! full/delta/spill campaign modes.
//!
//! # Example
//!
//! ```no_run
//! use remnant_query::{PassesPlan, QueryPlan, SnapshotStore};
//!
//! let store = SnapshotStore::open("campaign-spill/")?;
//! let aggregates = PassesPlan.execute(&store);
//! println!("overall adoption {:.2}%", aggregates.adoption.overall_rate * 100.0);
//! let ns = store.query().week(0).project(remnant_query::RecordClass::Ns);
//! println!("NS records in week 1: {}", ns.total);
//! # Ok::<(), remnant_query::StoreError>(())
//! ```

pub mod classified;
pub mod plans;
pub mod query;
pub mod store;

pub use classified::{ClassifiedRound, ClassifiedStore, PlanContext, ProviderIndex};
pub use plans::{
    funnel_rows, AdoptionPlan, BehaviorPlan, FunnelRow, PassesPlan, PausePlan,
    ProviderResidualScan, QueryPlan, ResidualScanPlan, ResidualScanReport, ResidualScanWeek,
    UnchangedCandidatesPlan, RESIDUAL_PROVIDERS,
};
pub use query::{
    ClassifiedQuery, GenerationDiff, JoinedRounds, Projection, RecordClass, RoundSnapshot,
    RoundsQuery,
};
// The exposure timeline (Fig 9) is already a fold over journaled weekly
// reports; re-export it so query-side consumers need only this crate.
pub use remnant_core::residual::ExposureTracker;
pub use store::{RoundKind, RoundMeta, SnapshotStore, StoreError};
