//! The DPS provider: infrastructure, control plane, and DNS answer policy.
//!
//! A [`DpsProvider`] owns:
//!
//! * **infrastructure** — PoPs across regions, anycast edge addresses with
//!   reverse proxies, an anycast nameserver fleet (Cloudflare's 391
//!   `*.ns.cloudflare.com` hosts, Sec V-A.1), and per-PoP scrubbing centers;
//! * **control plane** — customer accounts with
//!   enroll / pause / resume / update-origin / terminate transitions;
//! * **answer policy** — the authoritative DNS behavior, including the
//!   residual-resolution misconfiguration: after an *informed* termination,
//!   Cloudflare- and Incapsula-configured providers keep answering with the
//!   stored **origin** address until the record is purged; after an
//!   *uninformed* leave the configuration is simply untouched and queries
//!   keep returning the **edge** address (footnote 9).

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

use remnant_dns::{
    Authoritative, DomainName, Query, Rcode, RecordData, RecordType, ResourceRecord, Response, Ttl,
};
use remnant_http::{HttpRequest, HttpResponse, HttpTransport, ReverseProxy};
use remnant_net::{AnycastMap, IpAllocator, Ipv4Cidr, Pop, PopId, Region};
use remnant_sim::{SeedSeq, SimDuration, SimTime};

use crate::account::{CustomerAccount, ServiceStatus};
use crate::catalog::{ProviderId, ProviderInfo};
use crate::error::ProviderError;
use crate::plan::ServicePlan;
use crate::rerouting::{assign_ns_pair, mint_cname_token, nameserver_fleet, ReroutingMethod};
use crate::residual::ResidualPolicy;
use crate::scrub::{ScrubOutcome, ScrubbingCenter};

/// TTL of customer A records served by providers (short, as the paper notes
/// in footnote 13).
const CUSTOMER_A_TTL: Ttl = Ttl::secs(300);
/// TTL of the NS records a provider serves for NS-based customers.
const CUSTOMER_NS_TTL: Ttl = Ttl::days(1);
/// How long an uninformed leaver's untouched configuration survives before
/// the provider notices (billing lapse) and removes it.
const UNINFORMED_GRACE: SimDuration = SimDuration::weeks(5);

/// What the provider hands the customer at enrollment, to be applied to the
/// customer's own DNS configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Enrollment {
    /// NS-based: delegate the apex to these nameservers (name + glue).
    NsBased {
        /// Assigned nameserver pair with glue addresses.
        nameservers: Vec<(DomainName, Ipv4Addr)>,
    },
    /// CNAME-based: point the host's CNAME at this token.
    CnameBased {
        /// The minted canonical name.
        token: DomainName,
    },
    /// A-based: point the host's A record at this edge address.
    ABased {
        /// The assigned edge address.
        edge: Ipv4Addr,
    },
}

impl Enrollment {
    /// Assigned nameservers (empty unless NS-based).
    pub fn nameservers(&self) -> &[(DomainName, Ipv4Addr)] {
        match self {
            Enrollment::NsBased { nameservers } => nameservers,
            _ => &[],
        }
    }

    /// The CNAME token (None unless CNAME-based).
    pub fn cname_token(&self) -> Option<&DomainName> {
        match self {
            Enrollment::CnameBased { token } => Some(token),
            _ => None,
        }
    }

    /// The assigned edge address (None unless A-based).
    pub fn edge_address(&self) -> Option<Ipv4Addr> {
        match self {
            Enrollment::ABased { edge } => Some(*edge),
            _ => None,
        }
    }
}

/// A terminated customer's frozen state — the *remnant* of the title.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResidualRecord {
    /// The account as it was at termination.
    pub account: CustomerAccount,
    /// True if the customer told the provider it was leaving. Informed
    /// terminations flip the answer to the origin address; uninformed ones
    /// leave the edge answer in place.
    pub informed: bool,
    /// When the customer left.
    pub terminated_at: SimTime,
    /// When the provider purges the record (`None` = never).
    pub purge_at: Option<SimTime>,
    /// Set by the revalidation countermeasure when the stale answer no
    /// longer matches public DNS.
    pub disabled: bool,
}

impl ResidualRecord {
    /// True if the record still answers at `now`.
    pub fn is_live(&self, now: SimTime) -> bool {
        !self.disabled && self.purge_at.is_none_or(|purge| now < purge)
    }

    /// The address this record answers with while live.
    pub fn answer_address(&self) -> Ipv4Addr {
        if self.informed {
            self.account.origin
        } else {
            self.account.edge
        }
    }
}

/// Sizing knobs for a provider's simulated infrastructure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InfraConfig {
    /// Number of PoPs (Cloudflare: "over 100", Sec V-A.1).
    pub pops: usize,
    /// Number of anycast edge addresses.
    pub edge_ips: usize,
    /// Number of nameserver hosts (Cloudflare: 391 extracted in the paper).
    pub nameservers: usize,
    /// Per-PoP scrubbing capacity in Gbps.
    pub scrub_capacity_gbps: f64,
}

impl InfraConfig {
    /// Default sizing per provider, scaled to the paper's descriptions.
    pub fn for_provider(id: ProviderId) -> Self {
        match id {
            ProviderId::Cloudflare => InfraConfig {
                pops: 120,
                edge_ips: 32,
                nameservers: 391,
                scrub_capacity_gbps: 150.0,
            },
            ProviderId::Akamai => InfraConfig {
                pops: 60,
                edge_ips: 24,
                nameservers: 12,
                scrub_capacity_gbps: 120.0,
            },
            ProviderId::Incapsula => InfraConfig {
                pops: 32,
                edge_ips: 12,
                nameservers: 8,
                scrub_capacity_gbps: 100.0,
            },
            ProviderId::Cloudfront | ProviderId::Fastly => InfraConfig {
                pops: 40,
                edge_ips: 16,
                nameservers: 8,
                scrub_capacity_gbps: 80.0,
            },
            _ => InfraConfig {
                pops: 16,
                edge_ips: 8,
                nameservers: 4,
                scrub_capacity_gbps: 60.0,
            },
        }
    }
}

/// A monotonically increasing event counter, bumpable through `&self` so
/// the shared-read answer path (scan workers querying in parallel) can
/// keep stats. Cloning snapshots the current value.
#[derive(Default)]
struct Counter(AtomicU64);

impl Counter {
    fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Counter(AtomicU64::new(self.get()))
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.get().fmt(f)
    }
}

/// One simulated DPS/CDN provider (see module docs).
#[derive(Clone, Debug)]
pub struct DpsProvider {
    info: &'static ProviderInfo,
    seed: u64,
    policy: ResidualPolicy,
    // Infrastructure.
    pops: Vec<Pop>,
    anycast: AnycastMap,
    edge_ips: Vec<Ipv4Addr>,
    edges: HashMap<Ipv4Addr, ReverseProxy>,
    ns_hosts: Vec<DomainName>,
    ns_ips: Vec<Ipv4Addr>,
    ns_ip_set: HashSet<Ipv4Addr>,
    ns_glue: HashMap<DomainName, Ipv4Addr>,
    scrubbers: HashMap<PopId, ScrubbingCenter>,
    infra_apexes: Vec<DomainName>,
    // Control plane.
    accounts: HashMap<DomainName, CustomerAccount>,
    /// Query-name (www host or CNAME token) -> apex, for enrolled customers.
    name_index: HashMap<DomainName, DomainName>,
    residuals: HashMap<DomainName, ResidualRecord>,
    /// Query-name -> apex, for residual records.
    residual_index: HashMap<DomainName, DomainName>,
    generations: HashMap<DomainName, u32>,
    // Stats.
    queries_answered: Counter,
    queries_ignored: Counter,
}

impl DpsProvider {
    /// Builds a provider with its observed residual policy and default
    /// infrastructure sizing.
    pub fn build(id: ProviderId, seed: u64) -> Self {
        let policy = match id {
            ProviderId::Cloudflare => ResidualPolicy::cloudflare_observed(),
            ProviderId::Incapsula => ResidualPolicy::incapsula_observed(),
            _ => ResidualPolicy::deny(),
        };
        Self::build_with(id, seed, InfraConfig::for_provider(id), policy)
    }

    /// Builds a provider with explicit sizing and residual policy (used by
    /// the countermeasure experiments).
    ///
    /// # Panics
    ///
    /// Panics if the provider's catalog IP blocks cannot supply the
    /// requested number of addresses (catalog blocks are far larger than
    /// any realistic config).
    pub fn build_with(
        id: ProviderId,
        seed: u64,
        config: InfraConfig,
        policy: ResidualPolicy,
    ) -> Self {
        let info = id.info();
        let blocks: Vec<Ipv4Cidr> = info
            .ip_blocks
            .iter()
            .map(|s| s.parse().expect("catalog blocks are valid"))
            .collect();
        let mut allocator = IpAllocator::new(info.name, blocks);

        // PoPs spread round-robin over all regions.
        let pops: Vec<Pop> = (0..config.pops)
            .map(|i| {
                let region = Region::ALL[i % Region::ALL.len()];
                Pop::new(
                    PopId(i as u32),
                    region,
                    format!(
                        "{}-{}-{}",
                        info.name.to_lowercase(),
                        region.name().to_lowercase().replace(' ', ""),
                        i
                    ),
                )
            })
            .collect();
        let scrubbers = pops
            .iter()
            .map(|p| {
                (
                    p.id(),
                    ScrubbingCenter::new(config.scrub_capacity_gbps, 1.0),
                )
            })
            .collect();

        // Nameserver fleet, then edges, from the provider's blocks.
        let ns_hosts = nameserver_fleet(info.ns_domain, config.nameservers);
        let ns_ips = allocator
            .allocate_n(config.nameservers)
            .expect("catalog blocks cover the fleet");
        let edge_ips = allocator
            .allocate_n(config.edge_ips)
            .expect("catalog blocks cover the edges");

        // Announce every service address from one PoP per region.
        let seq = SeedSeq::new(seed).child(info.name);
        let mut anycast = AnycastMap::new();
        let mut pops_by_region: HashMap<Region, Vec<PopId>> = HashMap::new();
        for pop in &pops {
            pops_by_region
                .entry(pop.region())
                .or_default()
                .push(pop.id());
        }
        for (i, addr) in ns_ips.iter().chain(edge_ips.iter()).enumerate() {
            for (region, region_pops) in &pops_by_region {
                let pick = seq.derive_indexed("announce", (i as u64) << 8 | region.index() as u64);
                let pop = region_pops[(pick % region_pops.len() as u64) as usize];
                anycast.announce(*addr, *region, pop);
            }
        }

        let edges = edge_ips
            .iter()
            .map(|addr| (*addr, ReverseProxy::new(*addr)))
            .collect();
        let ns_glue = ns_hosts
            .iter()
            .cloned()
            .zip(ns_ips.iter().copied())
            .collect();

        let mut infra_apexes: Vec<DomainName> = Vec::new();
        for domain in [info.cname_domain, info.ns_domain] {
            if !domain.is_empty() {
                let apex = DomainName::parse(domain)
                    .expect("catalog domains are valid")
                    .apex();
                if !infra_apexes.contains(&apex) {
                    infra_apexes.push(apex);
                }
            }
        }

        DpsProvider {
            info,
            seed,
            policy,
            pops,
            anycast,
            edge_ips,
            edges,
            ns_hosts,
            ns_ip_set: ns_ips.iter().copied().collect(),
            ns_ips,
            ns_glue,
            scrubbers,
            infra_apexes,
            accounts: HashMap::new(),
            name_index: HashMap::new(),
            residuals: HashMap::new(),
            residual_index: HashMap::new(),
            generations: HashMap::new(),
            queries_answered: Counter::default(),
            queries_ignored: Counter::default(),
        }
    }

    /// The provider's identity.
    pub fn id(&self) -> ProviderId {
        self.info.id
    }

    /// The provider's Table II fingerprint data.
    pub fn info(&self) -> &'static ProviderInfo {
        self.info
    }

    /// The active residual policy.
    pub fn policy(&self) -> &ResidualPolicy {
        &self.policy
    }

    /// Replaces the residual policy (countermeasure experiments).
    pub fn set_policy(&mut self, policy: ResidualPolicy) {
        self.policy = policy;
    }

    /// Nameserver fleet as (hostname, address) pairs.
    pub fn nameservers(&self) -> impl Iterator<Item = (&DomainName, Ipv4Addr)> {
        self.ns_hosts.iter().zip(self.ns_ips.iter().copied())
    }

    /// Addresses of the nameserver fleet.
    pub fn ns_addresses(&self) -> &[Ipv4Addr] {
        &self.ns_ips
    }

    /// Anycast edge addresses.
    pub fn edge_addresses(&self) -> &[Ipv4Addr] {
        &self.edge_ips
    }

    /// True if `addr` is one of this provider's nameservers.
    pub fn is_ns_address(&self, addr: Ipv4Addr) -> bool {
        self.ns_ip_set.contains(&addr)
    }

    /// True if `addr` is one of this provider's edges.
    pub fn is_edge_address(&self, addr: Ipv4Addr) -> bool {
        self.edges.contains_key(&addr)
    }

    /// The provider's announced CIDR blocks.
    pub fn ip_blocks(&self) -> Vec<Ipv4Cidr> {
        self.info
            .ip_blocks
            .iter()
            .map(|s| s.parse().expect("catalog blocks are valid"))
            .collect()
    }

    /// The PoPs of this provider.
    pub fn pops(&self) -> &[Pop] {
        &self.pops
    }

    /// Which PoP serves a query for anycast address `addr` from `region`
    /// (Fig 7's vantage-point catchment).
    pub fn pop_for(&self, addr: Ipv4Addr, region: Region) -> Option<&Pop> {
        let id = self.anycast.catchment(addr, region).ok()?;
        self.pops.iter().find(|p| p.id() == id)
    }

    /// Scrubs attack traffic arriving at `pop`.
    pub fn scrub_at(
        &self,
        pop: PopId,
        malicious_gbps: f64,
        legit_gbps: f64,
    ) -> Option<ScrubOutcome> {
        self.scrubbers
            .get(&pop)
            .map(|s| s.scrub(malicious_gbps, legit_gbps))
    }

    /// Aggregate scrubbing capacity across PoPs (Gbps).
    pub fn total_capacity_gbps(&self) -> f64 {
        self.scrubbers.values().map(|s| s.capacity_gbps()).sum()
    }

    /// (answered, ignored) query counts.
    pub fn query_stats(&self) -> (u64, u64) {
        (self.queries_answered.get(), self.queries_ignored.get())
    }

    // ------------------------------------------------------------------
    // Control plane.
    // ------------------------------------------------------------------

    /// Enrolls `domain` with the given origin, plan and rerouting method.
    ///
    /// # Errors
    ///
    /// * [`ProviderError::AlreadyEnrolled`] if the domain has an account;
    /// * [`ProviderError::ReroutingUnavailable`] if the method is not
    ///   offered, or gated by plan (Cloudflare CNAME needs business+);
    /// * [`ProviderError::Provisioning`] on name-minting failures.
    pub fn enroll(
        &mut self,
        now: SimTime,
        domain: &DomainName,
        origin: Ipv4Addr,
        plan: ServicePlan,
        rerouting: ReroutingMethod,
    ) -> Result<Enrollment, ProviderError> {
        if self.accounts.contains_key(domain) {
            return Err(ProviderError::AlreadyEnrolled {
                domain: domain.to_string(),
            });
        }
        if !self.info.supports(rerouting) {
            return Err(ProviderError::ReroutingUnavailable {
                provider: self.info.name.to_owned(),
                method: rerouting.to_string(),
                reason: "not offered".to_owned(),
            });
        }
        if self.info.id == ProviderId::Cloudflare
            && rerouting == ReroutingMethod::Cname
            && !plan.allows_cname_setup()
        {
            return Err(ProviderError::ReroutingUnavailable {
                provider: self.info.name.to_owned(),
                method: rerouting.to_string(),
                reason: "requires business or enterprise plan".to_owned(),
            });
        }

        let host = domain
            .prepend("www")
            .map_err(|e| ProviderError::Provisioning {
                domain: domain.to_string(),
                reason: e.to_string(),
            })?;
        let generation = *self.generations.entry(domain.clone()).or_insert(0);
        *self.generations.get_mut(domain).expect("just inserted") += 1;

        let seq = SeedSeq::new(self.seed).child(domain.as_str());
        let edge = self.edge_ips[(seq.derive("edge") % self.edge_ips.len() as u64) as usize];

        let mut account = CustomerAccount {
            domain: domain.clone(),
            host: host.clone(),
            origin,
            plan,
            rerouting,
            status: ServiceStatus::Active,
            edge,
            cname_token: None,
            nameservers: Vec::new(),
            enrolled_at: now,
            generation,
            dns_only_a: Vec::new(),
            mx_exchange: None,
        };

        // A fresh enrollment supersedes any residual state for the domain.
        self.drop_residual(domain);

        let enrollment = match rerouting {
            ReroutingMethod::Ns => {
                let pair: Vec<DomainName> = assign_ns_pair(self.seed, &self.ns_hosts, domain)
                    .into_iter()
                    .cloned()
                    .collect();
                let with_glue: Vec<(DomainName, Ipv4Addr)> =
                    pair.iter().map(|h| (h.clone(), self.ns_glue[h])).collect();
                account.nameservers = pair;
                self.name_index.insert(host.clone(), domain.clone());
                Enrollment::NsBased {
                    nameservers: with_glue,
                }
            }
            ReroutingMethod::Cname => {
                let token =
                    mint_cname_token(self.seed, self.info.cname_domain, domain, generation)?;
                account.cname_token = Some(token.clone());
                self.name_index.insert(token.clone(), domain.clone());
                Enrollment::CnameBased { token }
            }
            ReroutingMethod::A => Enrollment::ABased { edge },
        };

        self.edges
            .get_mut(&edge)
            .expect("edge addresses all have proxies")
            .route(host.as_str(), origin);
        self.accounts.insert(domain.clone(), account);
        Ok(enrollment)
    }

    /// Pauses protection: resolution starts returning the origin address
    /// (the Cloudflare/Incapsula pause behavior, Sec IV-C.1).
    ///
    /// # Errors
    ///
    /// Returns [`ProviderError::NotEnrolled`] for unknown domains.
    pub fn pause(&mut self, domain: &DomainName) -> Result<(), ProviderError> {
        self.account_mut(domain)?.status = ServiceStatus::Paused;
        Ok(())
    }

    /// Resumes paused protection.
    ///
    /// # Errors
    ///
    /// Returns [`ProviderError::NotEnrolled`] for unknown domains.
    pub fn resume(&mut self, domain: &DomainName) -> Result<(), ProviderError> {
        self.account_mut(domain)?.status = ServiceStatus::Active;
        Ok(())
    }

    /// Adds a DNS-only ("gray cloud") A record to an NS-based customer's
    /// provider-hosted zone: the name resolves to `addr` directly, without
    /// edge proxying. This is how unprotected subdomains and co-located
    /// mail hosts leak origins (Table I's "Subdomains" / "DNS Records"
    /// vectors).
    ///
    /// # Errors
    ///
    /// * [`ProviderError::NotEnrolled`] for unknown domains;
    /// * [`ProviderError::ReroutingUnavailable`] for non-NS-based accounts
    ///   (their zones live in the customer's own DNS).
    pub fn add_dns_only_record(
        &mut self,
        domain: &DomainName,
        name: DomainName,
        addr: Ipv4Addr,
    ) -> Result<(), ProviderError> {
        let account = self.account_mut(domain)?;
        if account.rerouting != ReroutingMethod::Ns {
            return Err(ProviderError::ReroutingUnavailable {
                provider: account.rerouting.to_string(),
                method: "DNS-only record".to_owned(),
                reason: "provider only hosts zones for NS-based customers".to_owned(),
            });
        }
        account.dns_only_a.push((name.clone(), addr));
        self.name_index.insert(name, domain.clone());
        Ok(())
    }

    /// Sets the apex MX exchange host for an NS-based customer.
    ///
    /// # Errors
    ///
    /// As for [`DpsProvider::add_dns_only_record`].
    pub fn set_mx(
        &mut self,
        domain: &DomainName,
        exchange: DomainName,
    ) -> Result<(), ProviderError> {
        let account = self.account_mut(domain)?;
        if account.rerouting != ReroutingMethod::Ns {
            return Err(ProviderError::ReroutingUnavailable {
                provider: account.rerouting.to_string(),
                method: "MX record".to_owned(),
                reason: "provider only hosts zones for NS-based customers".to_owned(),
            });
        }
        account.mx_exchange = Some(exchange);
        Ok(())
    }

    /// The customer notifies the provider of a new origin address (the best
    /// practice of Sec IV-C.3 \[19\]\[20\]). DNS-only records co-located with
    /// the old origin move with it.
    ///
    /// # Errors
    ///
    /// Returns [`ProviderError::NotEnrolled`] for unknown domains.
    pub fn update_origin(
        &mut self,
        domain: &DomainName,
        new_origin: Ipv4Addr,
    ) -> Result<(), ProviderError> {
        let (host, edge) = {
            let account = self.account_mut(domain)?;
            let old_origin = account.origin;
            account.origin = new_origin;
            for (_, addr) in &mut account.dns_only_a {
                if *addr == old_origin {
                    *addr = new_origin;
                }
            }
            (account.host.clone(), account.edge)
        };
        self.edges
            .get_mut(&edge)
            .expect("edge addresses all have proxies")
            .route(host.as_str(), new_origin);
        Ok(())
    }

    /// Terminates the account. `informed == true` models the customer
    /// explicitly leaving via the portal (footnote 10) — the provider then
    /// flips the record to the origin address for "service continuity"
    /// (the residual-resolution vulnerability). `informed == false` leaves
    /// the configuration untouched until a billing-lapse grace expires.
    ///
    /// # Errors
    ///
    /// Returns [`ProviderError::NotEnrolled`] for unknown domains.
    pub fn terminate(
        &mut self,
        now: SimTime,
        domain: &DomainName,
        informed: bool,
    ) -> Result<(), ProviderError> {
        let account = self
            .accounts
            .remove(domain)
            .ok_or_else(|| ProviderError::NotEnrolled {
                domain: domain.to_string(),
            })?;
        // Remove live indexes.
        self.name_index.remove(&account.host);
        if let Some(token) = &account.cname_token {
            self.name_index.remove(token);
        }
        for (name, _) in &account.dns_only_a {
            self.name_index.remove(name);
        }

        let keeps_answering = if informed {
            self.policy.answer_after_termination
        } else {
            true // unaware, so nothing changes yet
        };
        if keeps_answering && account.delegates_resolution() {
            let purge_at = if informed {
                self.policy
                    .purge_after(account.plan)
                    .map(|delay| now + delay)
            } else {
                Some(now + UNINFORMED_GRACE)
            };
            let record = ResidualRecord {
                informed,
                terminated_at: now,
                purge_at,
                disabled: false,
                account: account.clone(),
            };
            self.residual_index
                .insert(account.host.clone(), domain.clone());
            if let Some(token) = &account.cname_token {
                self.residual_index.insert(token.clone(), domain.clone());
            }
            self.residuals.insert(domain.clone(), record);
        }
        if informed {
            // Service stops: the edge no longer proxies for this host.
            self.edges
                .get_mut(&account.edge)
                .expect("edge addresses all have proxies")
                .unroute(account.host.as_str());
        }
        Ok(())
    }

    /// The account for `domain`, if enrolled.
    pub fn account(&self, domain: &DomainName) -> Option<&CustomerAccount> {
        self.accounts.get(domain)
    }

    /// Iterates enrolled accounts in unspecified order.
    pub fn accounts(&self) -> impl Iterator<Item = &CustomerAccount> {
        self.accounts.values()
    }

    /// Number of enrolled customers.
    pub fn customer_count(&self) -> usize {
        self.accounts.len()
    }

    /// The residual record for `domain`, if any.
    pub fn residual(&self, domain: &DomainName) -> Option<&ResidualRecord> {
        self.residuals.get(domain)
    }

    /// Number of residual records (live or not).
    pub fn residual_count(&self) -> usize {
        self.residuals.len()
    }

    /// Runs the revalidation countermeasure (Sec VI-B-1): for every residual
    /// record, `public_lookup` performs a normal resolution of the record's
    /// host; a mismatch with the stored answer disables the record.
    ///
    /// No-op unless the policy enables revalidation.
    pub fn revalidate_residuals<F>(&mut self, mut public_lookup: F)
    where
        F: FnMut(&DomainName) -> Vec<Ipv4Addr>,
    {
        if !self.policy.revalidate_against_public_dns {
            return;
        }
        for record in self.residuals.values_mut() {
            if record.disabled {
                continue;
            }
            let current = public_lookup(&record.account.host);
            if !current.contains(&record.answer_address()) {
                record.disabled = true;
            }
        }
    }

    /// Serves an HTTP request arriving at edge address `edge`, fetching
    /// misses from the customer origin via `upstream`.
    pub fn serve_http<T: HttpTransport>(
        &mut self,
        now: SimTime,
        upstream: &mut T,
        edge: Ipv4Addr,
        request: &HttpRequest,
    ) -> Option<HttpResponse> {
        self.edges
            .get_mut(&edge)
            .map(|proxy| proxy.handle(now, upstream, request))
    }

    fn account_mut(&mut self, domain: &DomainName) -> Result<&mut CustomerAccount, ProviderError> {
        self.accounts
            .get_mut(domain)
            .ok_or_else(|| ProviderError::NotEnrolled {
                domain: domain.to_string(),
            })
    }

    fn drop_residual(&mut self, domain: &DomainName) {
        if let Some(record) = self.residuals.remove(domain) {
            self.residual_index.remove(&record.account.host);
            if let Some(token) = &record.account.cname_token {
                self.residual_index.remove(token);
            }
        }
    }

    // ------------------------------------------------------------------
    // DNS answering.
    // ------------------------------------------------------------------

    fn answer_for_account(&self, account: &CustomerAccount, query: &Query) -> Option<Response> {
        let serving = account.serving_address();
        match account.rerouting {
            ReroutingMethod::Ns => {
                // The provider hosts the whole zone, including any
                // DNS-only (unproxied) records the customer configured.
                if let Some((name, addr)) = account
                    .dns_only_a
                    .iter()
                    .find(|(name, _)| *name == query.name)
                {
                    return Some(match query.rtype {
                        RecordType::A => Response::answer(
                            query.clone(),
                            vec![ResourceRecord::new(
                                name.clone(),
                                CUSTOMER_A_TTL,
                                RecordData::A(*addr),
                            )],
                        ),
                        _ => Response::empty(query.clone(), Rcode::NoError),
                    });
                }
                if query.name == account.host || query.name == account.domain {
                    match query.rtype {
                        RecordType::A => Some(Response::answer(
                            query.clone(),
                            vec![ResourceRecord::new(
                                query.name.clone(),
                                CUSTOMER_A_TTL,
                                RecordData::A(serving),
                            )],
                        )),
                        RecordType::Ns if query.name == account.domain => Some(Response::answer(
                            query.clone(),
                            account
                                .nameservers
                                .iter()
                                .map(|h| {
                                    ResourceRecord::new(
                                        account.domain.clone(),
                                        CUSTOMER_NS_TTL,
                                        RecordData::Ns(h.clone()),
                                    )
                                })
                                .collect::<Vec<_>>(),
                        )),
                        RecordType::Mx if query.name == account.domain => {
                            match &account.mx_exchange {
                                Some(exchange) => Some(Response::answer(
                                    query.clone(),
                                    vec![ResourceRecord::new(
                                        account.domain.clone(),
                                        CUSTOMER_NS_TTL,
                                        RecordData::Mx {
                                            preference: 10,
                                            exchange: exchange.clone(),
                                        },
                                    )],
                                )),
                                None => Some(Response::empty(query.clone(), Rcode::NoError)),
                            }
                        }
                        _ => Some(Response::empty(query.clone(), Rcode::NoError)),
                    }
                } else if query.name.is_subdomain_of(&account.domain) {
                    Some(Response::empty(query.clone(), Rcode::NxDomain))
                } else {
                    None
                }
            }
            ReroutingMethod::Cname => {
                // The provider only answers for the token.
                let token = account.cname_token.as_ref()?;
                if query.name == *token {
                    match query.rtype {
                        RecordType::A => Some(Response::answer(
                            query.clone(),
                            vec![ResourceRecord::new(
                                token.clone(),
                                CUSTOMER_A_TTL,
                                RecordData::A(serving),
                            )],
                        )),
                        _ => Some(Response::empty(query.clone(), Rcode::NoError)),
                    }
                } else {
                    None
                }
            }
            ReroutingMethod::A => None,
        }
    }

    fn answer_for_residual(
        &self,
        record: &ResidualRecord,
        now: SimTime,
        query: &Query,
    ) -> Option<Response> {
        if !record.is_live(now) {
            return None;
        }
        // Policy is enforced at answer time as well: deploying the
        // "never answer after termination" countermeasure silences even
        // remnants created before the deployment.
        if record.informed && !self.policy.answer_after_termination {
            return None;
        }
        let queried_name_matches = query.name == record.account.host
            || query.name == record.account.domain
            || record.account.cname_token.as_ref() == Some(&query.name);
        if !queried_name_matches {
            return None;
        }
        match query.rtype {
            RecordType::A => Some(Response::answer(
                query.clone(),
                vec![ResourceRecord::new(
                    query.name.clone(),
                    CUSTOMER_A_TTL,
                    RecordData::A(record.answer_address()),
                )],
            )),
            // Stale NS data also keeps being served for NS-based remnants.
            RecordType::Ns if query.name == record.account.domain => Some(Response::answer(
                query.clone(),
                record
                    .account
                    .nameservers
                    .iter()
                    .map(|h| {
                        ResourceRecord::new(
                            record.account.domain.clone(),
                            CUSTOMER_NS_TTL,
                            RecordData::Ns(h.clone()),
                        )
                    })
                    .collect::<Vec<_>>(),
            )),
            _ => Some(Response::empty(query.clone(), Rcode::NoError)),
        }
    }

    /// Answers infrastructure queries: the provider's own nameserver host
    /// addresses and NXDOMAIN within its own service domains.
    fn answer_infra(&self, query: &Query) -> Option<Response> {
        if let Some(addr) = self.ns_glue.get(&query.name) {
            return Some(match query.rtype {
                RecordType::A => Response::answer(
                    query.clone(),
                    vec![ResourceRecord::new(
                        query.name.clone(),
                        CUSTOMER_NS_TTL,
                        RecordData::A(*addr),
                    )],
                ),
                _ => Response::empty(query.clone(), Rcode::NoError),
            });
        }
        if self
            .infra_apexes
            .iter()
            .any(|apex| query.name.is_subdomain_of(apex))
        {
            // An unknown (e.g. purged or never-minted) token.
            return Some(Response::empty(query.clone(), Rcode::NxDomain));
        }
        None
    }
}

impl Authoritative for DpsProvider {
    /// The provider's nameserver answer policy. Unknown names are silently
    /// ignored — the behavior the paper observed from Cloudflare's fleet
    /// (Sec V-A.2).
    fn answer(&mut self, now: SimTime, query: &Query) -> Option<Response> {
        // Lazy structural purge of the queried residual, if expired. The
        // shared path below never answers from an expired record either
        // (`is_live` checks `purge_at`), so skipping this drop does not
        // change any response — it only compacts the residual maps.
        if let Some(apex) = self.residual_index.get(&query.name).cloned() {
            let expired = self
                .residuals
                .get(&apex)
                .is_some_and(|r| r.purge_at.is_some_and(|p| now >= p));
            if expired {
                self.drop_residual(&apex);
                // Purge also retires any lingering uninformed edge route.
                // (Informed terminations unrouted at termination time.)
            }
        }
        self.answer_shared(now, query)
    }
}

impl DpsProvider {
    /// Answers a query through a shared reference: the same policy as
    /// [`Authoritative::answer`], but without the structural purge of
    /// expired residuals, so concurrent scan workers can all query one
    /// provider. Stats move through atomic counters.
    pub fn answer_shared(&self, now: SimTime, query: &Query) -> Option<Response> {
        let response = self
            .name_index
            .get(&query.name)
            .or_else(|| {
                // Apex queries for NS-based customers index via the host.
                self.name_index.get(&query.name.apex().prepend("www").ok()?)
            })
            .and_then(|apex| self.accounts.get(apex))
            .and_then(|account| self.answer_for_account(account, query))
            .or_else(|| {
                self.residual_index
                    .get(&query.name)
                    .or_else(|| {
                        self.residual_index
                            .get(&query.name.apex().prepend("www").ok()?)
                    })
                    .and_then(|apex| self.residuals.get(apex))
                    .and_then(|record| self.answer_for_residual(record, now, query))
            })
            .or_else(|| self.answer_infra(query));

        match response {
            Some(r) => {
                self.queries_answered.bump();
                Some(r)
            }
            None => {
                self.queries_ignored.bump();
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    const ORIGIN: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

    fn cloudflare() -> DpsProvider {
        DpsProvider::build(ProviderId::Cloudflare, 42)
    }

    fn incapsula() -> DpsProvider {
        DpsProvider::build(ProviderId::Incapsula, 42)
    }

    fn ask(p: &mut DpsProvider, now: SimTime, qname: &str, rtype: RecordType) -> Option<Response> {
        p.answer(now, &Query::new(name(qname), rtype))
    }

    #[test]
    fn build_sizes_match_config() {
        let cf = cloudflare();
        assert_eq!(cf.ns_addresses().len(), 391);
        assert_eq!(cf.edge_addresses().len(), 32);
        assert_eq!(cf.pops().len(), 120);
        assert!(cf.total_capacity_gbps() > 1000.0, "Tbps-scale network");
    }

    #[test]
    fn ns_enrollment_serves_edge_address() {
        let mut cf = cloudflare();
        let enrollment = cf
            .enroll(
                SimTime::EPOCH,
                &name("example.com"),
                ORIGIN,
                ServicePlan::Free,
                ReroutingMethod::Ns,
            )
            .unwrap();
        assert_eq!(enrollment.nameservers().len(), 2);
        let resp = ask(&mut cf, SimTime::EPOCH, "www.example.com", RecordType::A).unwrap();
        let addr = resp.answer_addresses()[0];
        assert!(cf.is_edge_address(addr));
        assert_ne!(addr, ORIGIN);
        // The apex NS query returns the assigned pair.
        let ns = ask(&mut cf, SimTime::EPOCH, "example.com", RecordType::Ns).unwrap();
        assert_eq!(ns.answers.len(), 2);
    }

    #[test]
    fn cname_enrollment_mints_fingerprinted_token() {
        let mut inc = incapsula();
        let enrollment = inc
            .enroll(
                SimTime::EPOCH,
                &name("example.com"),
                ORIGIN,
                ServicePlan::Pro,
                ReroutingMethod::Cname,
            )
            .unwrap();
        let token = enrollment.cname_token().unwrap().clone();
        assert!(token.contains_label_substring("incapdns"));
        let resp = ask(&mut inc, SimTime::EPOCH, token.as_str(), RecordType::A).unwrap();
        assert!(inc.is_edge_address(resp.answer_addresses()[0]));
    }

    #[test]
    fn cloudflare_cname_gated_by_plan() {
        let mut cf = cloudflare();
        let err = cf
            .enroll(
                SimTime::EPOCH,
                &name("example.com"),
                ORIGIN,
                ServicePlan::Free,
                ReroutingMethod::Cname,
            )
            .unwrap_err();
        assert!(matches!(err, ProviderError::ReroutingUnavailable { .. }));
        assert!(cf
            .enroll(
                SimTime::EPOCH,
                &name("example.com"),
                ORIGIN,
                ServicePlan::Business,
                ReroutingMethod::Cname
            )
            .is_ok());
    }

    #[test]
    fn unsupported_rerouting_rejected() {
        let mut inc = incapsula();
        assert!(inc
            .enroll(
                SimTime::EPOCH,
                &name("x.com"),
                ORIGIN,
                ServicePlan::Free,
                ReroutingMethod::Ns
            )
            .is_err());
        let mut dos = DpsProvider::build(ProviderId::DosArrest, 1);
        assert!(dos
            .enroll(
                SimTime::EPOCH,
                &name("x.com"),
                ORIGIN,
                ServicePlan::Free,
                ReroutingMethod::Cname
            )
            .is_err());
        let e = dos
            .enroll(
                SimTime::EPOCH,
                &name("x.com"),
                ORIGIN,
                ServicePlan::Free,
                ReroutingMethod::A,
            )
            .unwrap();
        assert!(e.edge_address().is_some());
    }

    #[test]
    fn double_enrollment_rejected() {
        let mut cf = cloudflare();
        cf.enroll(
            SimTime::EPOCH,
            &name("x.com"),
            ORIGIN,
            ServicePlan::Free,
            ReroutingMethod::Ns,
        )
        .unwrap();
        assert!(matches!(
            cf.enroll(
                SimTime::EPOCH,
                &name("x.com"),
                ORIGIN,
                ServicePlan::Free,
                ReroutingMethod::Ns
            ),
            Err(ProviderError::AlreadyEnrolled { .. })
        ));
    }

    #[test]
    fn pause_exposes_origin_resume_hides_it() {
        let mut cf = cloudflare();
        cf.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Free,
            ReroutingMethod::Ns,
        )
        .unwrap();
        cf.pause(&name("example.com")).unwrap();
        let resp = ask(&mut cf, SimTime::EPOCH, "www.example.com", RecordType::A).unwrap();
        assert_eq!(
            resp.answer_addresses(),
            vec![ORIGIN],
            "pause leaks the origin"
        );
        cf.resume(&name("example.com")).unwrap();
        let resp = ask(&mut cf, SimTime::EPOCH, "www.example.com", RecordType::A).unwrap();
        assert!(cf.is_edge_address(resp.answer_addresses()[0]));
    }

    #[test]
    fn informed_termination_leaves_origin_answering_remnant() {
        let mut cf = cloudflare();
        cf.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Free,
            ReroutingMethod::Ns,
        )
        .unwrap();
        cf.terminate(SimTime::from_days(10), &name("example.com"), true)
            .unwrap();
        assert_eq!(cf.customer_count(), 0);
        assert_eq!(cf.residual_count(), 1);
        let resp = ask(
            &mut cf,
            SimTime::from_days(11),
            "www.example.com",
            RecordType::A,
        )
        .unwrap();
        assert_eq!(resp.answer_addresses(), vec![ORIGIN], "residual resolution");
    }

    #[test]
    fn free_plan_remnant_purges_at_four_weeks() {
        let mut cf = cloudflare();
        cf.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Free,
            ReroutingMethod::Ns,
        )
        .unwrap();
        cf.terminate(SimTime::EPOCH, &name("example.com"), true)
            .unwrap();
        // Week 3: still answering.
        assert!(ask(
            &mut cf,
            SimTime::from_days(27),
            "www.example.com",
            RecordType::A
        )
        .is_some());
        // Week 4+: purged, queries are ignored.
        assert!(ask(
            &mut cf,
            SimTime::from_days(28),
            "www.example.com",
            RecordType::A
        )
        .is_none());
        assert_eq!(cf.residual_count(), 0, "purge removes the record");
    }

    #[test]
    fn enterprise_remnant_never_purges() {
        let mut cf = cloudflare();
        cf.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Enterprise,
            ReroutingMethod::Ns,
        )
        .unwrap();
        cf.terminate(SimTime::EPOCH, &name("example.com"), true)
            .unwrap();
        assert!(ask(
            &mut cf,
            SimTime::from_days(365),
            "www.example.com",
            RecordType::A
        )
        .is_some());
    }

    #[test]
    fn uninformed_leave_keeps_answering_edge() {
        let mut cf = cloudflare();
        cf.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Free,
            ReroutingMethod::Ns,
        )
        .unwrap();
        cf.terminate(SimTime::EPOCH, &name("example.com"), false)
            .unwrap();
        let resp = ask(
            &mut cf,
            SimTime::from_days(7),
            "www.example.com",
            RecordType::A,
        )
        .unwrap();
        let addr = resp.answer_addresses()[0];
        assert!(
            cf.is_edge_address(addr),
            "footnote 9: config untouched, edge answered"
        );
        // After the grace window the provider notices and purges.
        assert!(ask(
            &mut cf,
            SimTime::from_days(36),
            "www.example.com",
            RecordType::A
        )
        .is_none());
    }

    #[test]
    fn deny_policy_provider_goes_silent_after_informed_termination() {
        let mut fastly = DpsProvider::build(ProviderId::Fastly, 1);
        let e = fastly
            .enroll(
                SimTime::EPOCH,
                &name("example.com"),
                ORIGIN,
                ServicePlan::Pro,
                ReroutingMethod::Cname,
            )
            .unwrap();
        let token = e.cname_token().unwrap().clone();
        fastly
            .terminate(SimTime::EPOCH, &name("example.com"), true)
            .unwrap();
        let resp = ask(
            &mut fastly,
            SimTime::from_days(1),
            token.as_str(),
            RecordType::A,
        );
        // Fastly's own infra apex covers the token, so it answers NXDOMAIN
        // rather than leaking anything.
        assert!(matches!(resp, Some(r) if r.rcode == Rcode::NxDomain && r.answers.is_empty()));
        assert_eq!(fastly.residual_count(), 0);
    }

    #[test]
    fn incapsula_remnant_token_keeps_resolving_to_origin() {
        let mut inc = incapsula();
        let e = inc
            .enroll(
                SimTime::EPOCH,
                &name("example.com"),
                ORIGIN,
                ServicePlan::Pro,
                ReroutingMethod::Cname,
            )
            .unwrap();
        let token = e.cname_token().unwrap().clone();
        inc.terminate(SimTime::from_days(5), &name("example.com"), true)
            .unwrap();
        let resp = ask(
            &mut inc,
            SimTime::from_days(20),
            token.as_str(),
            RecordType::A,
        )
        .unwrap();
        assert_eq!(resp.answer_addresses(), vec![ORIGIN]);
    }

    #[test]
    fn reenrollment_rotates_token_and_clears_remnant() {
        let mut inc = incapsula();
        let e1 = inc
            .enroll(
                SimTime::EPOCH,
                &name("example.com"),
                ORIGIN,
                ServicePlan::Pro,
                ReroutingMethod::Cname,
            )
            .unwrap();
        let t1 = e1.cname_token().unwrap().clone();
        inc.terminate(SimTime::from_days(1), &name("example.com"), true)
            .unwrap();
        let e2 = inc
            .enroll(
                SimTime::from_days(2),
                &name("example.com"),
                ORIGIN,
                ServicePlan::Pro,
                ReroutingMethod::Cname,
            )
            .unwrap();
        let t2 = e2.cname_token().unwrap().clone();
        assert_ne!(t1, t2);
        assert_eq!(inc.residual_count(), 0);
        // The old token is dead (NXDOMAIN within infra apex).
        let resp = ask(&mut inc, SimTime::from_days(3), t1.as_str(), RecordType::A).unwrap();
        assert_eq!(resp.rcode, Rcode::NxDomain);
    }

    #[test]
    fn update_origin_changes_answer_while_paused() {
        let mut cf = cloudflare();
        cf.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Free,
            ReroutingMethod::Ns,
        )
        .unwrap();
        let new_origin = Ipv4Addr::new(198, 51, 100, 77);
        cf.update_origin(&name("example.com"), new_origin).unwrap();
        cf.pause(&name("example.com")).unwrap();
        let resp = ask(&mut cf, SimTime::EPOCH, "www.example.com", RecordType::A).unwrap();
        assert_eq!(resp.answer_addresses(), vec![new_origin]);
    }

    #[test]
    fn revalidation_countermeasure_disables_mismatched_remnants() {
        let mut cf = DpsProvider::build_with(
            ProviderId::Cloudflare,
            42,
            InfraConfig::for_provider(ProviderId::Cloudflare),
            ResidualPolicy::countermeasure_revalidate(ResidualPolicy::cloudflare_observed()),
        );
        cf.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Free,
            ReroutingMethod::Ns,
        )
        .unwrap();
        cf.terminate(SimTime::EPOCH, &name("example.com"), true)
            .unwrap();
        // Public DNS now points at a *different* provider's edge.
        cf.revalidate_residuals(|_| vec![Ipv4Addr::new(151, 101, 4, 4)]);
        assert!(
            ask(
                &mut cf,
                SimTime::from_days(1),
                "www.example.com",
                RecordType::A
            )
            .is_none(),
            "mismatch disables the stale answer"
        );
    }

    #[test]
    fn revalidation_keeps_matching_remnants() {
        let mut cf = DpsProvider::build_with(
            ProviderId::Cloudflare,
            42,
            InfraConfig::for_provider(ProviderId::Cloudflare),
            ResidualPolicy::countermeasure_revalidate(ResidualPolicy::cloudflare_observed()),
        );
        cf.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Free,
            ReroutingMethod::Ns,
        )
        .unwrap();
        cf.terminate(SimTime::EPOCH, &name("example.com"), true)
            .unwrap();
        // The site now self-hosts on the same origin: continuity is safe.
        cf.revalidate_residuals(|_| vec![ORIGIN]);
        assert!(ask(
            &mut cf,
            SimTime::from_days(1),
            "www.example.com",
            RecordType::A
        )
        .is_some());
    }

    #[test]
    fn unknown_names_are_ignored_silently() {
        let mut cf = cloudflare();
        assert!(ask(&mut cf, SimTime::EPOCH, "www.stranger.org", RecordType::A).is_none());
        let (_, ignored) = cf.query_stats();
        assert_eq!(ignored, 1);
    }

    #[test]
    fn ns_host_glue_is_answerable() {
        let mut cf = cloudflare();
        let (host, addr) = {
            let (h, a) = cf.nameservers().next().unwrap();
            (h.clone(), a)
        };
        let resp = ask(&mut cf, SimTime::EPOCH, host.as_str(), RecordType::A).unwrap();
        assert_eq!(resp.answer_addresses(), vec![addr]);
    }

    #[test]
    fn anycast_catchment_reaches_all_vantage_points() {
        let cf = cloudflare();
        let ns = cf.ns_addresses()[0];
        for region in Region::VANTAGE_POINTS {
            assert!(cf.pop_for(ns, region).is_some(), "{region}");
        }
    }

    #[test]
    fn edge_ips_fall_inside_announced_blocks() {
        let cf = cloudflare();
        let blocks = cf.ip_blocks();
        for addr in cf.edge_addresses() {
            assert!(blocks.iter().any(|b| b.contains(*addr)), "{addr}");
        }
        for addr in cf.ns_addresses() {
            assert!(blocks.iter().any(|b| b.contains(*addr)), "{addr}");
        }
    }

    #[test]
    fn dns_only_records_leak_their_literal_address() {
        let mut cf = cloudflare();
        cf.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Free,
            ReroutingMethod::Ns,
        )
        .unwrap();
        cf.add_dns_only_record(&name("example.com"), name("dev.example.com"), ORIGIN)
            .unwrap();
        // The proxied host answers with an edge...
        let www = ask(&mut cf, SimTime::EPOCH, "www.example.com", RecordType::A).unwrap();
        assert!(cf.is_edge_address(www.answer_addresses()[0]));
        // ...but the gray record answers with the origin itself.
        let dev = ask(&mut cf, SimTime::EPOCH, "dev.example.com", RecordType::A).unwrap();
        assert_eq!(dev.answer_addresses(), vec![ORIGIN]);
    }

    #[test]
    fn mx_record_is_served_for_ns_customers() {
        let mut cf = cloudflare();
        cf.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Free,
            ReroutingMethod::Ns,
        )
        .unwrap();
        cf.set_mx(&name("example.com"), name("mail.example.com"))
            .unwrap();
        cf.add_dns_only_record(&name("example.com"), name("mail.example.com"), ORIGIN)
            .unwrap();
        let mx = ask(&mut cf, SimTime::EPOCH, "example.com", RecordType::Mx).unwrap();
        let exchange = mx.answers[0].data.clone();
        assert!(
            matches!(exchange, RecordData::Mx { exchange, .. } if exchange == name("mail.example.com"))
        );
        let mail = ask(&mut cf, SimTime::EPOCH, "mail.example.com", RecordType::A).unwrap();
        assert_eq!(mail.answer_addresses(), vec![ORIGIN]);
    }

    #[test]
    fn gray_records_rejected_for_cname_customers() {
        let mut inc = incapsula();
        inc.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Pro,
            ReroutingMethod::Cname,
        )
        .unwrap();
        assert!(inc
            .add_dns_only_record(&name("example.com"), name("dev.example.com"), ORIGIN)
            .is_err());
        assert!(inc
            .set_mx(&name("example.com"), name("mail.example.com"))
            .is_err());
    }

    #[test]
    fn update_origin_moves_colocated_gray_records() {
        let mut cf = cloudflare();
        cf.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Free,
            ReroutingMethod::Ns,
        )
        .unwrap();
        let elsewhere = Ipv4Addr::new(198, 18, 7, 7);
        cf.add_dns_only_record(&name("example.com"), name("dev.example.com"), ORIGIN)
            .unwrap();
        cf.add_dns_only_record(&name("example.com"), name("mail.example.com"), elsewhere)
            .unwrap();
        let new_origin = Ipv4Addr::new(198, 51, 100, 99);
        cf.update_origin(&name("example.com"), new_origin).unwrap();
        let dev = ask(&mut cf, SimTime::EPOCH, "dev.example.com", RecordType::A).unwrap();
        assert_eq!(
            dev.answer_addresses(),
            vec![new_origin],
            "co-located record moved"
        );
        let mail = ask(&mut cf, SimTime::EPOCH, "mail.example.com", RecordType::A).unwrap();
        assert_eq!(
            mail.answer_addresses(),
            vec![elsewhere],
            "separate host untouched"
        );
    }

    #[test]
    fn gray_records_die_with_the_account() {
        let mut cf = cloudflare();
        cf.enroll(
            SimTime::EPOCH,
            &name("example.com"),
            ORIGIN,
            ServicePlan::Free,
            ReroutingMethod::Ns,
        )
        .unwrap();
        cf.add_dns_only_record(&name("example.com"), name("dev.example.com"), ORIGIN)
            .unwrap();
        cf.terminate(SimTime::EPOCH, &name("example.com"), true)
            .unwrap();
        // The remnant answers for www, but the gray subdomain is gone.
        assert!(ask(
            &mut cf,
            SimTime::from_days(1),
            "www.example.com",
            RecordType::A
        )
        .is_some());
        let dev = ask(
            &mut cf,
            SimTime::from_days(1),
            "dev.example.com",
            RecordType::A,
        );
        assert!(
            dev.is_none(),
            "gray subdomain queries are ignored after termination"
        );
    }

    #[test]
    fn scrubbing_is_available_at_every_pop() {
        let cf = cloudflare();
        for pop in cf.pops() {
            let outcome = cf.scrub_at(pop.id(), 10.0, 1.0).unwrap();
            assert!(outcome.attack_mitigated());
        }
    }
}
