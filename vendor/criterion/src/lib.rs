//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use: `Criterion`,
//! benchmark groups with `sample_size`/`throughput`, `Bencher::iter` /
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Statistics are deliberately simple — each benchmark is calibrated to a
//! small time budget, run `sample_size` times, and reported as
//! `[min mean max]` per iteration. Good enough to compare configurations
//! (e.g. 1-vs-N workers) on one machine; not a criterion replacement for
//! rigorous regression detection.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration time budget used to pick the iteration count.
const CALIBRATION_TARGET: Duration = Duration::from_millis(20);
/// Upper bound on the total time spent in one benchmark function.
const BENCH_BUDGET: Duration = Duration::from_secs(3);

/// How batched inputs are grouped. Ignored by this stand-in; every batch
/// holds exactly one input.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures one routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, run back-to-back `iters` times.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-creating its input with `setup` outside
    /// the measured region.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_once(f: &mut dyn FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos() as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} us", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn run_benchmark(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate: grow the iteration count until one sample costs enough
    // to time reliably, within the overall budget.
    let mut iters = 1u64;
    let mut probe = run_once(&mut f, iters);
    while probe < CALIBRATION_TARGET && probe * 8 < BENCH_BUDGET {
        iters *= 2;
        probe = run_once(&mut f, iters);
    }
    let per_iter_probe = probe / iters.max(1) as u32;
    let affordable = if per_iter_probe.is_zero() {
        sample_size
    } else {
        (BENCH_BUDGET.as_nanos() / probe.as_nanos().max(1)) as usize
    };
    let samples = sample_size.min(affordable).max(1);

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let elapsed = run_once(&mut f, iters);
        times.push(elapsed.as_secs_f64() / iters as f64);
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let fmt = |secs: f64| format_duration(Duration::from_secs_f64(secs));
    let mut line = format!("{id:<40} time: [{} {} {}]", fmt(min), fmt(mean), fmt(max));
    if let Some(tp) = throughput {
        let (units, label) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        if mean > 0.0 {
            line.push_str(&format!("  thrpt: {:.0} {label}", units as f64 / mean));
        }
    }
    println!("{line}");
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(id, 10, None, f);
        self
    }
}

/// A set of benchmarks sharing configuration and a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups (CLI arguments from
/// `cargo bench` are accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
