//! Usage-behavior detection by diffing consecutive snapshots (Sec IV-B.3,
//! Table IV).

use std::fmt;

use remnant_provider::ProviderId;
use remnant_world::BehaviorKind;

use crate::adoption::{Adoption, DpsStatus};
use crate::matchers::ProviderMatcher;
use crate::snapshot::DnsSnapshot;

/// One behavior inferred from two consecutive observations of a site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObservedBehavior {
    /// Site rank in the target list.
    pub rank: usize,
    /// Which behavior.
    pub kind: BehaviorKind,
    /// The provider before the transition (LEAVE/PAUSE/RESUME/SWITCH).
    pub from: Option<ProviderId>,
    /// The provider after the transition (JOIN/PAUSE/RESUME/SWITCH).
    pub to: Option<ProviderId>,
}

impl fmt::Display for ObservedBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site {} {}", self.rank, self.kind)
    }
}

/// Diffs snapshot pairs into Table IV behaviors.
///
/// The detector holds the matcher so repeated daily diffs share the
/// fingerprint tables.
#[derive(Clone, Debug, Default)]
pub struct BehaviorDetector {
    matcher: ProviderMatcher,
}

impl BehaviorDetector {
    /// Creates a detector over the standard catalog.
    pub fn new() -> Self {
        BehaviorDetector {
            matcher: ProviderMatcher::new(),
        }
    }

    /// The matcher in use.
    pub fn matcher(&self) -> &ProviderMatcher {
        &self.matcher
    }

    /// Classifies every site of a snapshot, block by block (spilled blocks
    /// are loaded transiently, so memory stays bounded by one block).
    pub fn classify_snapshot(&self, snapshot: &DnsSnapshot) -> Vec<Adoption> {
        let mut out = Vec::with_capacity(snapshot.len());
        for loaded in snapshot.blocks() {
            let (classes, _) = self.classify_block(&loaded.block);
            out.extend(classes);
        }
        out
    }

    /// Classifies one block's sites in a single pass, returning the
    /// per-site adoption column together with the block-local indices of
    /// sites whose records show a multi-CDN front-end (the Sec IV-B.3
    /// exclusion). Classification is a pure function of the block's
    /// bytes, which is what lets the per-shard classification cache
    /// memoize this call under a [`crate::snapshot::BlockKey`].
    pub fn classify_block(
        &self,
        block: &crate::snapshot::RecordBlock,
    ) -> (Vec<Adoption>, Vec<u32>) {
        let mut classes = Vec::with_capacity(block.len());
        let mut multi_cdn = Vec::new();
        for (i, site) in block.sites().enumerate() {
            if is_multi_cdn_view(site) {
                multi_cdn.push(i as u32);
            }
            classes.push(Adoption::classify_view(&self.matcher, site));
        }
        (classes, multi_cdn)
    }

    /// Diffs two days of classifications into observed behaviors
    /// (Table IV). `prev` and `curr` must be over the same target list.
    ///
    /// # Panics
    ///
    /// Panics if the classification vectors have different lengths.
    pub fn diff(&self, prev: &[Adoption], curr: &[Adoption]) -> Vec<ObservedBehavior> {
        assert_eq!(prev.len(), curr.len(), "snapshots cover the same targets");
        let mut behaviors = Vec::new();
        for (rank, (before, after)) in prev.iter().zip(curr.iter()).enumerate() {
            if let Some(kind) = transition(before, after) {
                behaviors.push(ObservedBehavior {
                    rank,
                    kind,
                    from: before.provider,
                    to: after.provider,
                });
            }
        }
        behaviors
    }
}

/// True if a site's collected records show a multi-CDN front-end
/// (Cedexis-style). The paper excludes such sites from behavior
/// identification because the balancer's dynamic CDN selection makes
/// usage behaviors unidentifiable (Sec IV-B.3).
///
/// The analysis passes walk snapshots column-wise and use
/// [`is_multi_cdn_view`] directly; this owned-records variant remains as
/// a shim for callers holding a materialized [`crate::SiteRecords`].
#[deprecated(
    since = "0.7.0",
    note = "use `is_multi_cdn_view` over borrowed columns"
)]
pub fn is_multi_cdn(records: &crate::snapshot::SiteRecords) -> bool {
    is_multi_cdn_view(records.view())
}

/// `is_multi_cdn` over borrowed snapshot columns: the multi-CDN filter
/// applied by the shared snapshot fold (Sec IV-B.3).
pub fn is_multi_cdn_view(site: crate::snapshot::SiteView<'_>) -> bool {
    site.cnames
        .iter()
        .any(|c| c.contains_label_substring("cedexis"))
}

/// The Table IV transition rules.
fn transition(before: &Adoption, after: &Adoption) -> Option<BehaviorKind> {
    use DpsStatus::{None as SNone, Off, On};
    match (before.status, after.status) {
        // Provider change at either status: SWITCH.
        (On | Off, On | Off)
            if before.provider != after.provider
                && before.provider.is_some()
                && after.provider.is_some() =>
        {
            Some(BehaviorKind::Switch)
        }
        (SNone, On | Off) => Some(BehaviorKind::Join),
        (On | Off, SNone) => Some(BehaviorKind::Leave),
        (On, Off) => Some(BehaviorKind::Pause),
        (Off, On) => Some(BehaviorKind::Resume),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remnant_provider::ReroutingMethod;

    fn on(p: ProviderId) -> Adoption {
        Adoption {
            provider: Some(p),
            status: DpsStatus::On,
            rerouting: Some(ReroutingMethod::Ns),
        }
    }

    fn off(p: ProviderId) -> Adoption {
        Adoption {
            provider: Some(p),
            status: DpsStatus::Off,
            rerouting: Some(ReroutingMethod::Ns),
        }
    }

    fn detect(before: Adoption, after: Adoption) -> Option<BehaviorKind> {
        let detector = BehaviorDetector::new();
        detector.diff(&[before], &[after]).first().map(|b| b.kind)
    }

    #[test]
    fn table4_transitions() {
        let cf = ProviderId::Cloudflare;
        let inc = ProviderId::Incapsula;
        assert_eq!(detect(Adoption::NONE, on(cf)), Some(BehaviorKind::Join));
        assert_eq!(detect(on(cf), Adoption::NONE), Some(BehaviorKind::Leave));
        assert_eq!(detect(off(cf), Adoption::NONE), Some(BehaviorKind::Leave));
        assert_eq!(detect(on(cf), off(cf)), Some(BehaviorKind::Pause));
        assert_eq!(detect(off(cf), on(cf)), Some(BehaviorKind::Resume));
        assert_eq!(detect(on(cf), on(inc)), Some(BehaviorKind::Switch));
        assert_eq!(detect(off(cf), on(inc)), Some(BehaviorKind::Switch));
    }

    #[test]
    fn null_transitions_produce_nothing() {
        let cf = ProviderId::Cloudflare;
        assert_eq!(detect(on(cf), on(cf)), None);
        assert_eq!(detect(off(cf), off(cf)), None);
        assert_eq!(detect(Adoption::NONE, Adoption::NONE), None);
    }

    #[test]
    fn join_straight_to_off_counts_as_join() {
        // A site that joined and paused between two observations.
        let cf = ProviderId::Cloudflare;
        assert_eq!(detect(Adoption::NONE, off(cf)), Some(BehaviorKind::Join));
    }

    #[test]
    fn diff_reports_site_ranks_and_providers() {
        let cf = ProviderId::Cloudflare;
        let inc = ProviderId::Incapsula;
        let detector = BehaviorDetector::new();
        let prev = vec![on(cf), Adoption::NONE, on(cf)];
        let curr = vec![on(cf), on(inc), on(inc)];
        let behaviors = detector.diff(&prev, &curr);
        assert_eq!(behaviors.len(), 2);
        assert_eq!(behaviors[0].rank, 1);
        assert_eq!(behaviors[0].kind, BehaviorKind::Join);
        assert_eq!(behaviors[0].to, Some(inc));
        assert_eq!(behaviors[1].rank, 2);
        assert_eq!(behaviors[1].kind, BehaviorKind::Switch);
        assert_eq!(behaviors[1].from, Some(cf));
        assert_eq!(behaviors[1].to, Some(inc));
    }

    #[test]
    #[allow(deprecated)]
    fn multi_cdn_fingerprint_detection() {
        use crate::snapshot::SiteRecords;
        let balanced = SiteRecords {
            a: vec!["13.32.0.9".parse().unwrap()],
            cnames: vec![
                "b0000abcd.cdx.cedexis.net".parse().unwrap(),
                "d123.cloudfront.net".parse().unwrap(),
            ],
            ns: vec!["ns1.webhost1.net".parse().unwrap()],
        };
        assert!(is_multi_cdn(&balanced));
        let plain = SiteRecords {
            a: vec!["13.32.0.9".parse().unwrap()],
            cnames: vec!["d123.cloudfront.net".parse().unwrap()],
            ns: vec!["ns1.webhost1.net".parse().unwrap()],
        };
        assert!(!is_multi_cdn(&plain));
        assert!(!is_multi_cdn(&SiteRecords::default()));
    }

    #[test]
    #[should_panic(expected = "same targets")]
    fn mismatched_lengths_panic() {
        let detector = BehaviorDetector::new();
        let _ = detector.diff(&[Adoption::NONE], &[]);
    }
}
