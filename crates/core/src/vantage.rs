//! Vantage points (Sec V-A.1, Fig 7).
//!
//! "we set up five geographically distributed vantage points ... (Oregon,
//! London, Sydney, Singapore, and Tokyo) to distribute the total traffic
//! load to five PoPs of Cloudflare."

use remnant_net::Region;

/// The rotating set of measurement vantage points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VantagePoints {
    regions: Vec<Region>,
    cursor: usize,
    issued: u64,
}

impl Default for VantagePoints {
    fn default() -> Self {
        Self::paper()
    }
}

impl VantagePoints {
    /// The paper's five vantage points.
    pub fn paper() -> Self {
        VantagePoints {
            regions: Region::VANTAGE_POINTS.to_vec(),
            cursor: 0,
            issued: 0,
        }
    }

    /// A custom vantage set.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty.
    pub fn new(regions: Vec<Region>) -> Self {
        assert!(!regions.is_empty(), "at least one vantage point required");
        VantagePoints {
            regions,
            cursor: 0,
            issued: 0,
        }
    }

    /// The configured regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The next vantage point, round-robin — each consecutive query leaves
    /// from a different region, spreading load over distinct PoPs.
    pub fn next_region(&mut self) -> Region {
        let region = self.regions[self.cursor];
        self.cursor = (self.cursor + 1) % self.regions.len();
        self.issued += 1;
        region
    }

    /// The vantage point for the `rank`-th query of a sweep — the same
    /// round-robin rotation as [`next_region`](Self::next_region), but as a
    /// pure function of the query's rank. Sharded scans use this so the
    /// region assignment is independent of the order shards execute in.
    pub fn region_for(&self, rank: u64) -> Region {
        self.regions[(rank % self.regions.len() as u64) as usize]
    }

    /// Records `n` queries issued through [`region_for`](Self::region_for)
    /// (which cannot bump the counter itself), keeping
    /// [`issued`](Self::issued) and [`load_split`](Self::load_split)
    /// accurate for sharded scans.
    pub fn note_issued(&mut self, n: u64) {
        self.issued += n;
    }

    /// Queries issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Per-region share of issued queries so far (approximately equal by
    /// construction).
    pub fn load_split(&self) -> Vec<(Region, u64)> {
        let n = self.regions.len() as u64;
        let base = self.issued / n;
        let extra = (self.issued % n) as usize;
        self.regions
            .iter()
            .enumerate()
            .map(|(i, r)| (*r, base + u64::from(i < extra)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_matches_fig7() {
        let vp = VantagePoints::paper();
        assert_eq!(vp.regions().len(), 5);
        assert_eq!(vp.regions()[0], Region::Oregon);
        assert_eq!(vp.regions()[4], Region::Tokyo);
    }

    #[test]
    fn rotation_is_fair() {
        let mut vp = VantagePoints::paper();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..5 * 7 {
            *counts.entry(vp.next_region()).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 5);
        assert!(counts.values().all(|c| *c == 7));
        assert_eq!(vp.issued(), 35);
    }

    #[test]
    fn load_split_accounts_for_remainders() {
        let mut vp = VantagePoints::paper();
        for _ in 0..7 {
            vp.next_region();
        }
        let split = vp.load_split();
        let total: u64 = split.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 7);
        assert_eq!(split[0].1, 2);
        assert_eq!(split[4].1, 1);
    }

    #[test]
    #[should_panic(expected = "at least one vantage point")]
    fn empty_set_is_rejected() {
        let _ = VantagePoints::new(vec![]);
    }

    #[test]
    fn region_for_matches_rotation() {
        let mut vp = VantagePoints::paper();
        let pure: Vec<Region> = (0..12).map(|rank| vp.region_for(rank)).collect();
        let rotated: Vec<Region> = (0..12).map(|_| vp.next_region()).collect();
        assert_eq!(pure, rotated);
    }

    #[test]
    fn note_issued_feeds_load_split() {
        let mut vp = VantagePoints::paper();
        vp.note_issued(10);
        assert_eq!(vp.issued(), 10);
        let total: u64 = vp.load_split().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 10);
    }
}
