//! Rerouting mechanisms and provisioning name generation.
//!
//! Sec II-A.2 describes the three DNS-based rerouting mechanisms; this
//! module also mints the provider-side names they need:
//!
//! * CNAME-based: an unpredictable per-customer token under the provider's
//!   CNAME domain ("CDNs typically assign a CNAME in a random or
//!   unpredictable manner", Sec III-B);
//! * NS-based (Cloudflare): per-customer nameserver pairs drawn from the
//!   fleet of `[girl/boy's name].ns.cloudflare.com` hosts — the paper
//!   extracted 391 such nameservers (Sec V-A.1, footnote 12).

use std::fmt;
use std::str::FromStr;

use remnant_dns::DomainName;
use remnant_sim::SeedSeq;

use crate::error::ProviderError;

/// A DNS-based traffic rerouting mechanism (Sec II-A.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReroutingMethod {
    /// Customer points its A record at a provider-assigned edge address.
    /// No delegation — and therefore *no residual-resolution risk*
    /// (Sec III-B).
    A,
    /// Customer CNAMEs its host to a provider-minted canonical name.
    Cname,
    /// Customer delegates its whole zone to provider nameservers.
    Ns,
}

impl ReroutingMethod {
    /// All methods, in Table II column order.
    pub const ALL: [ReroutingMethod; 3] = [
        ReroutingMethod::A,
        ReroutingMethod::Cname,
        ReroutingMethod::Ns,
    ];
}

impl fmt::Display for ReroutingMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReroutingMethod::A => "A",
            ReroutingMethod::Cname => "CNAME",
            ReroutingMethod::Ns => "NS",
        };
        f.write_str(s)
    }
}

impl FromStr for ReroutingMethod {
    type Err = ProviderError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "A" => Ok(ReroutingMethod::A),
            "CNAME" => Ok(ReroutingMethod::Cname),
            "NS" => Ok(ReroutingMethod::Ns),
            _ => Err(ProviderError::UnknownRerouting(s.to_owned())),
        }
    }
}

/// Mints the unpredictable CNAME token for `domain`'s `generation`-th
/// enrollment under `cname_domain` (tokens change when a customer re-joins,
/// so a stale harvested token goes dark — Sec III-B: "the CNAME will be
/// updated or deleted if the website terminates its DPS").
///
/// # Errors
///
/// Returns [`ProviderError::Provisioning`] if `cname_domain` is not a valid
/// domain name (e.g. empty, for providers without CNAME rerouting).
pub fn mint_cname_token(
    seed: u64,
    cname_domain: &str,
    domain: &DomainName,
    generation: u32,
) -> Result<DomainName, ProviderError> {
    if cname_domain.is_empty() {
        return Err(ProviderError::Provisioning {
            domain: domain.to_string(),
            reason: "provider has no cname domain".to_owned(),
        });
    }
    let token = SeedSeq::new(seed)
        .child(domain.as_str())
        .derive_indexed("cname-token", u64::from(generation));
    let name = format!("x{token:016x}.{cname_domain}");
    DomainName::parse(&name).map_err(|_| ProviderError::Provisioning {
        domain: domain.to_string(),
        reason: format!("invalid cname domain {cname_domain:?}"),
    })
}

/// First names used for Cloudflare-style nameserver hostnames
/// (footnote 12: "`[girl/boy's name].ns.cloudflare.com`").
const NS_FIRST_NAMES: [&str; 40] = [
    "ada", "amir", "anna", "beth", "carl", "chad", "cora", "dana", "dina", "duke", "elle", "eric",
    "faye", "fred", "gina", "glen", "hana", "hugo", "iris", "ivan", "jane", "joel", "kate", "kurt",
    "lana", "liam", "mara", "mike", "nina", "noel", "olga", "omar", "pam", "pete", "rita", "rob",
    "sara", "seth", "tara", "todd",
];

/// Generates `count` distinct nameserver hostnames under `ns_domain` in the
/// Cloudflare naming style. The first 40 are bare first names; later ones
/// gain a numeric suffix (`kate2.ns.cloudflare.com`).
///
/// # Panics
///
/// Panics if `ns_domain` is not a valid domain name (catalog domains are).
pub fn nameserver_fleet(ns_domain: &str, count: usize) -> Vec<DomainName> {
    (0..count)
        .map(|i| {
            let first = NS_FIRST_NAMES[i % NS_FIRST_NAMES.len()];
            let round = i / NS_FIRST_NAMES.len();
            let host = if round == 0 {
                format!("{first}.{ns_domain}")
            } else {
                format!("{first}{}.{ns_domain}", round + 1)
            };
            DomainName::parse(&host).expect("catalog ns domains are valid")
        })
        .collect()
}

/// Deterministically assigns a pair of fleet nameservers to `domain`.
/// Different customers get different pairs (the two members are always
/// distinct when the fleet has at least two entries).
pub fn assign_ns_pair<'a>(
    seed: u64,
    fleet: &'a [DomainName],
    domain: &DomainName,
) -> Vec<&'a DomainName> {
    assert!(!fleet.is_empty(), "fleet must be non-empty");
    let seq = SeedSeq::new(seed).child(domain.as_str());
    let first = (seq.derive("ns-a") % fleet.len() as u64) as usize;
    if fleet.len() == 1 {
        return vec![&fleet[first]];
    }
    let offset = 1 + (seq.derive("ns-b") % (fleet.len() as u64 - 1)) as usize;
    let second = (first + offset) % fleet.len();
    vec![&fleet[first], &fleet[second]]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().expect("test name")
    }

    #[test]
    fn method_parse_round_trips() {
        for m in ReroutingMethod::ALL {
            assert_eq!(m.to_string().parse::<ReroutingMethod>().unwrap(), m);
        }
        assert!("BGP".parse::<ReroutingMethod>().is_err());
    }

    #[test]
    fn tokens_are_deterministic_and_domain_scoped() {
        let a = mint_cname_token(1, "incapdns.net", &name("example.com"), 0).unwrap();
        let b = mint_cname_token(1, "incapdns.net", &name("example.com"), 0).unwrap();
        let c = mint_cname_token(1, "incapdns.net", &name("other.com"), 0).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_str().ends_with(".incapdns.net"));
    }

    #[test]
    fn tokens_rotate_per_generation() {
        let g0 = mint_cname_token(1, "incapdns.net", &name("example.com"), 0).unwrap();
        let g1 = mint_cname_token(1, "incapdns.net", &name("example.com"), 1).unwrap();
        assert_ne!(g0, g1, "re-enrollment mints a fresh token");
    }

    #[test]
    fn token_rejects_invalid_cname_domain() {
        assert!(mint_cname_token(1, "", &name("example.com"), 0).is_err());
    }

    #[test]
    fn fleet_generates_requested_count_of_unique_names() {
        let fleet = nameserver_fleet("ns.cloudflare.com", 391);
        assert_eq!(fleet.len(), 391);
        let unique: std::collections::BTreeSet<_> = fleet.iter().collect();
        assert_eq!(unique.len(), 391);
        assert!(fleet[0].as_str().ends_with(".ns.cloudflare.com"));
        // Every fleet member carries the provider's NS fingerprint.
        assert!(fleet
            .iter()
            .all(|n| n.contains_label_substring("cloudflare")));
    }

    #[test]
    fn fleet_suffixing_kicks_in_after_name_list() {
        let fleet = nameserver_fleet("ns.cloudflare.com", 45);
        assert_eq!(fleet[0].as_str(), "ada.ns.cloudflare.com");
        assert_eq!(fleet[40].as_str(), "ada2.ns.cloudflare.com");
    }

    #[test]
    fn ns_pair_assignment_is_stable_and_distinct() {
        let fleet = nameserver_fleet("ns.cloudflare.com", 391);
        let pair1 = assign_ns_pair(7, &fleet, &name("example.com"));
        let pair2 = assign_ns_pair(7, &fleet, &name("example.com"));
        assert_eq!(pair1, pair2);
        assert_eq!(pair1.len(), 2);
        assert_ne!(pair1[0], pair1[1]);
    }

    #[test]
    fn ns_pair_single_member_fleet() {
        let fleet = nameserver_fleet("ns.cloudflare.com", 1);
        let pair = assign_ns_pair(7, &fleet, &name("example.com"));
        assert_eq!(pair.len(), 1);
    }

    #[test]
    fn different_customers_usually_get_different_pairs() {
        let fleet = nameserver_fleet("ns.cloudflare.com", 391);
        let distinct: std::collections::BTreeSet<String> = (0..50)
            .map(|i| {
                assign_ns_pair(7, &fleet, &name(&format!("site{i}.com")))
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        assert!(distinct.len() > 40, "pairs spread over the fleet");
    }
}
