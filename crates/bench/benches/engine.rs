//! Scan-engine benchmarks: the same collection sweep at 1 worker vs all
//! available cores. The outputs are bit-identical (the engine's
//! determinism contract); only wall time differs, which is exactly what
//! this bench measures.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use remnant::core::collector::{RecordCollector, Target};
use remnant::engine::{EngineConfig, ScanEngine};
use remnant::net::Region;
use remnant::world::{World, WorldConfig};

/// Population for the sweep benchmarks. Override with
/// `ENGINE_BENCH_POPULATION` (e.g. 1000000 for a full-scale measurement).
fn population() -> usize {
    std::env::var("ENGINE_BENCH_POPULATION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

fn bench_engine(c: &mut Criterion) {
    let population = population();
    let world = World::generate(WorldConfig {
        population,
        seed: 7,
        warmup_days: 0,
        calibration: remnant::world::Calibration::paper(),
    });
    let targets: Vec<Target> = world
        .sites()
        .iter()
        .map(|s| (s.apex.clone(), s.www.clone()))
        .collect();
    let mut collector = RecordCollector::new(world.clock(), Region::Ashburn);
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());

    let mut worker_counts = vec![1, 2, cores];
    worker_counts.sort_unstable();
    worker_counts.dedup();

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(population as u64));
    for workers in worker_counts {
        let engine = ScanEngine::new(
            EngineConfig::with_workers(workers, 7).expect("worker count validated above"),
        );
        group.bench_function(format!("collect_{population}_workers_{workers}"), |b| {
            b.iter(|| collector.collect_with(&engine, &world, &targets, 0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
