//! HTTP transport abstraction and message types.

use std::fmt;
use std::net::Ipv4Addr;

use remnant_sim::SimTime;

use crate::page::HtmlDocument;

/// HTTP status codes used in the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum HttpStatus {
    /// 200.
    Ok,
    /// 403 — origin firewall rejected the client.
    Forbidden,
    /// 404 — host or path not served here.
    NotFound,
    /// 502 — an edge could not reach its configured origin.
    BadGateway,
}

impl HttpStatus {
    /// The numeric code.
    pub const fn code(self) -> u16 {
        match self {
            HttpStatus::Ok => 200,
            HttpStatus::Forbidden => 403,
            HttpStatus::NotFound => 404,
            HttpStatus::BadGateway => 502,
        }
    }
}

impl fmt::Display for HttpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A GET request: source address, virtual host, and path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// The client's source address (origin firewalls filter on this).
    pub src: Ipv4Addr,
    /// The `Host:` header.
    pub host: String,
    /// The request path (the study only fetches landing pages, `/`).
    pub path: String,
}

impl HttpRequest {
    /// A landing-page request from `src` for `host`.
    pub fn landing(src: Ipv4Addr, host: impl Into<String>) -> Self {
        HttpRequest {
            src,
            host: host.into(),
            path: "/".to_owned(),
        }
    }
}

impl fmt::Display for HttpRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GET {} Host:{} (from {})",
            self.path, self.host, self.src
        )
    }
}

/// A response: status, optional document, and the address that served it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: HttpStatus,
    /// Rendered page on 200, `None` otherwise.
    pub document: Option<HtmlDocument>,
    /// The address of the server that produced the response.
    pub served_by: Ipv4Addr,
}

impl HttpResponse {
    /// A 200 response with `document` served by `served_by`.
    pub fn ok(document: HtmlDocument, served_by: Ipv4Addr) -> Self {
        HttpResponse {
            status: HttpStatus::Ok,
            document: Some(document),
            served_by,
        }
    }

    /// An empty non-200 response.
    pub fn status(status: HttpStatus, served_by: Ipv4Addr) -> Self {
        HttpResponse {
            status,
            document: None,
            served_by,
        }
    }

    /// True if the response carries a document.
    pub fn is_ok(&self) -> bool {
        self.status == HttpStatus::Ok && self.document.is_some()
    }
}

/// Delivers HTTP GETs to servers by IP address.
///
/// `None` models a connection that never completes (dropped SYN, firewall
/// DROP) — distinct from an explicit error status.
pub trait HttpTransport {
    /// Sends `request` to the server at `dst` at virtual time `now`.
    fn get(&mut self, now: SimTime, dst: Ipv4Addr, request: &HttpRequest) -> Option<HttpResponse>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageTemplate;

    #[test]
    fn status_codes() {
        assert_eq!(HttpStatus::Ok.code(), 200);
        assert_eq!(HttpStatus::Forbidden.code(), 403);
        assert_eq!(HttpStatus::NotFound.code(), 404);
        assert_eq!(HttpStatus::BadGateway.code(), 502);
        assert_eq!(HttpStatus::Ok.to_string(), "200");
    }

    #[test]
    fn landing_request_defaults_to_root_path() {
        let req = HttpRequest::landing(Ipv4Addr::new(1, 2, 3, 4), "www.example.com");
        assert_eq!(req.path, "/");
        assert_eq!(req.host, "www.example.com");
    }

    #[test]
    fn ok_response_carries_document() {
        let doc = PageTemplate::generate("example.com", 1).render(0);
        let resp = HttpResponse::ok(doc, Ipv4Addr::new(5, 5, 5, 5));
        assert!(resp.is_ok());
        assert_eq!(resp.served_by, Ipv4Addr::new(5, 5, 5, 5));
    }

    #[test]
    fn error_response_has_no_document() {
        let resp = HttpResponse::status(HttpStatus::NotFound, Ipv4Addr::new(5, 5, 5, 5));
        assert!(!resp.is_ok());
        assert!(resp.document.is_none());
    }
}
